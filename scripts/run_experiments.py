#!/usr/bin/env python3
"""Run every experiment on one workload and dump the rendered reports.

This is the script behind EXPERIMENTS.md: it executes the full experiment
matrix (Section 3 analyses, Table 2 baselines, refinement, validation,
origin split, model-size distribution, ablations, scaling, extension) and
writes the plain-text tables to stdout or a file.

    python scripts/run_experiments.py --workload default --out results.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    DEFAULT,
    LARGE,
    SMALL,
    ablations,
    deflection,
    fig2,
    fig3,
    fig8,
    prepare,
    scaling,
    table1,
    table2,
    table3,
    table4,
    table5,
)

WORKLOADS = {"small": SMALL, "default": DEFAULT, "large": LARGE}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="default", choices=sorted(WORKLOADS))
    parser.add_argument("--out", help="write reports here instead of stdout")
    parser.add_argument(
        "--skip-ablations", action="store_true",
        help="skip the (expensive) ablation sweeps",
    )
    args = parser.parse_args(argv)
    workload = WORKLOADS[args.workload]
    out = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout

    def emit(text: str) -> None:
        out.write(text + "\n\n")
        out.flush()

    started = time.perf_counter()
    prepared = prepare(workload)
    emit(f"workload: {workload.name}")
    emit(f"dataset: {prepared.dataset.summary()}")
    emit(f"pruned dataset: {prepared.model_dataset.summary()}")

    experiments = [
        ("FIG2", lambda: fig2.run(prepared)),
        ("TAB1", lambda: table1.run(prepared)),
        ("FIG3", lambda: fig3.run(prepared)),
        ("TAB2", lambda: table2.run(prepared)),
        ("TAB3", lambda: table3.run(prepared)),
        ("TAB4", lambda: table4.run(prepared)),
        ("TAB5", lambda: table5.run(prepared)),
        ("FIG8", lambda: fig8.run(prepared)),
        ("EXT1", lambda: deflection.run(prepared)),
    ]
    if not args.skip_ablations:
        experiments.append(
            ("ABL1", lambda: ablations.observation_points(prepared))
        )
        experiments.append(
            ("ABL2", lambda: ablations.policy_mechanisms(prepared))
        )
    experiments.append(("SCAL", lambda: scaling.run(workload)))

    for name, runner in experiments:
        t0 = time.perf_counter()
        result = runner()
        emit(result.render())
        emit(f"[{name} took {time.perf_counter() - t0:.1f}s]")

    emit(f"total: {time.perf_counter() - started:.1f}s")
    if args.out:
        out.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
