#!/usr/bin/env python3
"""Assert the dirty-fixture ingest report matches its known composition.

CI runs ``repro ingest tests/fixtures/dirty_feed.dump --report <json>``
and then this script against the JSON report.  The fixture is built with
an exact mix of damage (see the fixture's comment header); any drift in
the parser or sanitization passes that changes how a line is classified
fails this check with a field-by-field diff.

    python scripts/check_ingest_fixture.py ingest-report.json
"""

from __future__ import annotations

import json
import sys

EXPECTED = {
    "lines": 23,
    "accepted": 10,
    "quarantined": {
        "as-set": 2,
        "bad-path": 1,
        "bad-peer-as": 1,
        "bad-prefix": 1,
        "bogon-asn": 2,
        "malformed-fields": 2,
        "martian-prefix": 1,
        "path-loop": 1,
        "peer-mismatch": 1,
        "undecodable-bytes": 1,
    },
    "modified": {"prepend-collapse": 2},
}


def check(report: dict) -> list[str]:
    """Return a list of mismatch descriptions (empty = pass)."""
    problems: list[str] = []
    for key, expected in EXPECTED.items():
        actual = report.get(key)
        if actual != expected:
            problems.append(f"{key}: expected {expected!r}, got {actual!r}")
    total = report.get("accepted", 0) + report.get("total_quarantined", 0)
    if report.get("lines") != total:
        problems.append(
            f"accounting broken: lines={report.get('lines')} != "
            f"accepted + quarantined = {total}"
        )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} <ingest-report.json>", file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as handle:
        report = json.load(handle)
    problems = check(report)
    if problems:
        print("ingest fixture report does not match expectations:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"ingest fixture ok: {report['lines']} lines, "
        f"{report['accepted']} accepted, "
        f"{report['total_quarantined']} quarantined"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
