#!/usr/bin/env python3
"""What-if analysis: de-peering two core ASes (the paper's motivating use).

"What if a certain peering link was removed?" — the question Section 1
says an accurate AS-routing model should answer.  This script refines a
model from observed feeds, picks the busiest inferred tier-1 peering,
removes it, and reports which (observer, origin) pairs change paths and
which lose reachability.
"""

import argparse
from collections import Counter

from repro.core import Refiner, build_initial_model, depeer
from repro.experiments import SMALL, prepare


def busiest_peering(prepared, model) -> tuple[int, int]:
    """The level-1 adjacency crossed by the most observed paths."""
    level1 = prepared.level1
    usage: Counter = Counter()
    for route in prepared.model_dataset:
        for a, b in route.path.edges():
            if a in level1 and b in level1 and model.graph.has_edge(a, b):
                usage[(min(a, b), max(a, b))] += 1
    if not usage:
        raise SystemExit("no observed level-1 peering to remove")
    return usage.most_common(1)[0][0]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-a", type=int, help="first AS of the link to remove")
    parser.add_argument("--as-b", type=int, help="second AS of the link to remove")
    args = parser.parse_args()

    prepared = prepare(SMALL)
    model = build_initial_model(prepared.model_dataset, prepared.model_graph.copy())
    refinement = Refiner(model, prepared.training).run()
    print(
        f"refined model ({refinement.iteration_count} iterations, "
        f"converged={refinement.converged}): {model}"
    )

    if args.as_a and args.as_b:
        link = (args.as_a, args.as_b)
    else:
        link = busiest_peering(prepared, model)
    print(f"\nremoving adjacency AS{link[0]} -- AS{link[1]} ...")

    observers = sorted(prepared.model_dataset.observer_asns())
    report = depeer(model, link[0], link[1], observers=observers)
    print(f"what-if: {report.description}")
    print(
        f"  examined {report.origins_examined} origins x "
        f"{report.observers_examined} observers"
    )
    print(f"  path changes: {report.affected_pairs} (observer, origin) pairs")
    print(f"  lost reachability: {report.unreachable_pairs} pairs")

    for change in report.changes[:8]:
        print(f"\n  AS{change.observer_asn} -> AS{change.origin_asn}")
        for path in sorted(change.before):
            print(f"    before: {' '.join(map(str, path))}")
        for path in sorted(change.after) or []:
            print(f"    after:  {' '.join(map(str, path))}")
        if not change.after:
            print("    after:  (unreachable)")
    if len(report.changes) > 8:
        print(f"\n  ... and {len(report.changes) - 8} more changed pairs")


if __name__ == "__main__":
    main()
