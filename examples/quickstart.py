#!/usr/bin/env python3
"""Quickstart: build, refine and query an AS-routing model in ~30 seconds.

The script walks the paper's whole pipeline on a tiny synthetic Internet:

1. generate a ground-truth Internet and simulate BGP on it,
2. collect RIB dumps at a handful of observation points,
3. clean the dataset, split it into training and validation feeds,
4. build the initial one-quasi-router-per-AS model and refine it,
5. predict paths the model never saw and grade the predictions.
"""

from repro.bgp import simulate
from repro.core import (
    Refiner,
    build_initial_model,
    evaluate_model,
    predict_paths,
    split_by_observation_points,
)
from repro.data import (
    SyntheticConfig,
    collect_dataset,
    select_observation_points,
    synthesize_internet,
)


def main() -> None:
    print("== 1. synthesize ground-truth Internet ==")
    config = SyntheticConfig(seed=3, n_level1=4, n_level2=6, n_other=10, n_stub=20)
    internet = synthesize_internet(config)
    print(f"  {internet.network}")

    print("== 2. simulate ground truth and collect RIB dumps ==")
    simulate(internet.network)
    points = select_observation_points(internet, 14, seed=9, multi_point_fraction=0.5)
    dataset = collect_dataset(internet.network, points).cleaned()
    print(f"  {dataset}")

    print("== 3. split feeds ==")
    training, validation = split_by_observation_points(dataset, 0.5, seed=1)
    print(f"  training: {len(training)} routes, validation: {len(validation)} routes")

    print("== 4. build + refine the quasi-router model ==")
    model = build_initial_model(dataset)
    refinement = Refiner(model, training).run()
    print(
        f"  converged={refinement.converged} after {refinement.iteration_count} "
        f"iterations; model: {model}"
    )

    print("== 5. predict and grade ==")
    report = evaluate_model(model, validation)
    print(f"  validation RIB-Out match rate:      {report.rib_out_rate:.1%}")
    print(f"  matched down to the tie-break:      {report.tie_break_or_better_rate:.1%}")
    print(f"  RIB-In upper bound:                 {report.rib_in_or_better_rate:.1%}")

    origin = min(internet.prefixes_by_as)
    observer = max(asn for asn in internet.levels if asn in model.network.ases)
    paths = predict_paths(model, origin, observer)
    print(f"  predicted paths AS{observer} -> AS{origin}:")
    for path in sorted(paths):
        print("   ", " -> ".join(map(str, path)))


if __name__ == "__main__":
    main()
