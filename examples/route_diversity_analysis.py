#!/usr/bin/env python3
"""Route-diversity analysis of a BGP dataset (Section 3 of the paper).

Generates a synthetic Internet, collects RIB dumps, writes/reads them in
the bgpdump text format (the same code path a real RouteViews dump would
take), and reproduces the Section 3 measurements: the Figure 2 histogram,
the Table 1 quantiles, the AS classification counts, and a Figure 3-style
worst-case diversity example.

Point ``--dump`` at a real ``bgpdump -m`` file to analyse real data
instead.
"""

import argparse
import io

from repro.bgp import simulate
from repro.data import (
    SyntheticConfig,
    collect_dataset,
    read_table_dump,
    select_observation_points,
    synthesize_internet,
    write_table_dump,
)
from repro.topology import (
    ASGraph,
    classify_ases,
    infer_level1_clique,
    prune_single_homed_stubs,
    route_diversity_report,
)
from repro.topology.diversity import TABLE1_PERCENTILES


def build_synthetic_dump() -> tuple[str, list[int]]:
    """Simulate a synthetic Internet and return its dump text + tier-1 seeds."""
    config = SyntheticConfig(seed=11, n_level1=5, n_level2=10, n_other=22, n_stub=55)
    internet = synthesize_internet(config)
    simulate(internet.network)
    points = select_observation_points(internet, 30, seed=2, multi_point_fraction=0.5)
    dataset = collect_dataset(internet.network, points)
    buffer = io.StringIO()
    write_table_dump(dataset, buffer)
    return buffer.getvalue(), internet.level1_asns[:3]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dump", help="bgpdump -m file to analyse (default: synthetic)")
    parser.add_argument(
        "--seeds", type=int, nargs="*", help="known tier-1 seed ASNs for the dump"
    )
    args = parser.parse_args()

    if args.dump:
        parsed = read_table_dump(args.dump)
        seeds = args.seeds or []
    else:
        text, seeds = build_synthetic_dump()
        parsed = read_table_dump(io.StringIO(text))
    print(
        f"parsed {parsed.lines} dump lines "
        f"({parsed.skipped_as_set} AS_SET, {parsed.skipped_malformed} malformed skipped)"
    )
    dataset = parsed.dataset.cleaned()
    print("dataset:", dataset.summary())

    graph = ASGraph.from_dataset(dataset)
    if seeds:
        level1 = infer_level1_clique(graph, seeds)
        print(f"inferred level-1 clique: {sorted(level1)}")
        classification = classify_ases(dataset, graph, level1)
        print("classification:", classification.summary())
        pruned = prune_single_homed_stubs(dataset, graph, classification)
        print(
            f"pruned {len(pruned.pruned_asns)} single-homed stubs "
            f"({pruned.transferred_routes} routes transferred); graph now "
            f"{pruned.graph.num_ases()} nodes / {pruned.graph.num_edges()} edges"
        )

    report = route_diversity_report(dataset)
    print("\nFigure 2 — distinct AS-paths per (origin, observer) pair:")
    for paths in sorted(report.pair_histogram):
        print(f"  {paths:>3} paths: {report.pair_histogram[paths]} pairs")
    print(f"  multipath fraction: {report.fraction_pairs_multipath:.1%}")

    print("\nTable 1 — per-AS max route diversity quantiles:")
    for point, value in report.table1().items():
        print(f"  p{point:>5.1f}: {value}")
    if TABLE1_PERCENTILES:
        diverse = max(report.max_paths_per_as.items(), key=lambda kv: kv[1])
        print(
            f"\nFigure 3-style example: AS {diverse[0]} relays up to "
            f"{diverse[1]} distinct routes for a single destination"
        )


if __name__ == "__main__":
    main()
