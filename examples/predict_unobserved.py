#!/usr/bin/env python3
"""End-to-end prediction study: train on half the feeds, grade on the rest.

Reproduces the paper's central experiment (Sections 4-5) on a
medium-sized synthetic Internet and prints the full metric suite for both
split strategies:

* split by observation point (predicting routes for *unobserved vantage
  points*), and
* split by origin AS (predicting routes for *unobserved prefixes*).
"""

import argparse
import time

from repro.core import (
    Refiner,
    build_initial_model,
    evaluate_model,
    split_by_origin,
)
from repro.core.metrics import MatchKind
from repro.experiments import DEFAULT, SMALL, prepare


def show(label: str, report) -> None:
    print(f"  {label}:")
    print(f"    cases                      {report.total}")
    print(f"    RIB-Out match              {report.rib_out_rate:.1%}")
    print(
        f"    potential RIB-Out match    {report.rate(MatchKind.POTENTIAL_RIB_OUT):.1%}"
    )
    print(f"    matched down to tie-break  {report.tie_break_or_better_rate:.1%}")
    print(f"    RIB-In upper bound         {report.rib_in_or_better_rate:.1%}")
    coverage = report.coverage_summary()
    print(
        "    origins >=50/>=90/100%     "
        f"{coverage['>=50%']:.0%} / {coverage['>=90%']:.0%} / {coverage['100%']:.0%}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the quick workload")
    args = parser.parse_args()
    workload = SMALL if args.small else DEFAULT

    print(f"preparing workload {workload.name!r} ...")
    prepared = prepare(workload)
    print(f"  dataset: {prepared.model_dataset.summary()}")

    print("\n== split by observation point ==")
    model = build_initial_model(prepared.model_dataset, prepared.model_graph.copy())
    started = time.perf_counter()
    refinement = Refiner(model, prepared.training).run()
    print(
        f"  refinement: {refinement.iteration_count} iterations, "
        f"converged={refinement.converged}, {time.perf_counter() - started:.1f}s"
    )
    print(f"  model: {model}")
    show("training", evaluate_model(model, prepared.training))
    show("validation (unobserved vantage points)", evaluate_model(model, prepared.validation))

    print("\n== split by origin AS ==")
    training, validation = split_by_origin(prepared.model_dataset, 0.5, seed=4)
    model2 = build_initial_model(prepared.model_dataset, prepared.model_graph.copy())
    refinement2 = Refiner(model2, training).run()
    print(
        f"  refinement: {refinement2.iteration_count} iterations, "
        f"converged={refinement2.converged}"
    )
    show("training origins", evaluate_model(model2, training))
    show("validation origins (unobserved prefixes)", evaluate_model(model2, validation))


if __name__ == "__main__":
    main()
