#!/usr/bin/env python3
"""The serving flow in one process: compile, round-trip, query, HTTP.

Walks the full `repro.serve` pipeline on a small synthetic Internet:

1. build + refine a model (the expensive, one-time part),
2. compile it into a checksummed prediction artifact,
3. reload the artifact from disk and answer paths / diversity / lookup
   queries through the cached engine (no simulator involved),
4. start the HTTP API on an ephemeral port, hit it with urllib, and
   drain it gracefully — exactly what `repro serve` + curl do.
"""

import argparse
import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.core import Refiner, build_initial_model
from repro.experiments import SMALL, prepare
from repro.serve import (
    PredictionArtifact,
    PredictionServer,
    QueryEngine,
    compile_artifact,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--keep", metavar="PATH",
        help="also write the artifact here (default: temp dir)",
    )
    args = parser.parse_args()

    print(f"preparing workload {SMALL.name!r} ...")
    prepared = prepare(SMALL)
    model = build_initial_model(
        prepared.model_dataset, prepared.model_graph.copy()
    )
    refinement = Refiner(model, prepared.training).run()
    print(
        f"  refined: {refinement.iteration_count} iterations, "
        f"converged={refinement.converged}"
    )

    print("\n== compile ==")
    started = time.perf_counter()
    artifact, report = compile_artifact(model)
    print(
        f"  {report.prefixes} prefixes simulated once, {report.pairs} "
        f"(origin, observer) pairs frozen in "
        f"{time.perf_counter() - started:.1f}s"
    )

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(args.keep) if args.keep else Path(scratch) / "pred.artifact"
        size = artifact.save(path)
        print(f"  wrote {size} bytes to {path}")

        print("\n== query (from the reloaded artifact) ==")
        engine = QueryEngine(PredictionArtifact.load(path))
        origin, observer = max(
            ((o, obs) for (o, obs) in artifact.paths),
            key=lambda pair: len(artifact.paths[pair]),
        )
        answer = engine.paths(origin, observer)
        print(f"  paths AS{observer} -> AS{origin}:")
        for as_path in answer.paths:
            print(f"    {' '.join(map(str, as_path))}")
        diversity = engine.diversity(origin, observer)
        print(
            f"  diversity: {diversity.path_count} path(s), "
            f"next hops {list(diversity.next_hops)}, "
            f"multipath={diversity.multipath}"
        )
        target = str(artifact.origins[origin]).split("/")[0]
        lookup = engine.lookup(target, observer)
        print(
            f"  lookup {target}: matched {lookup.matched_prefix} "
            f"(origin AS{lookup.origin})"
        )
        print(f"  cache: {engine.cache_stats()}")

        print("\n== serve over HTTP ==")
        server = PredictionServer(engine, host="127.0.0.1", port=0)
        loop = threading.Thread(target=server.serve_forever, daemon=True)
        loop.start()
        base = f"http://{server.address}"
        print(f"  listening on {base}")
        for route in (
            f"/paths?origin={origin}&observer={observer}",
            f"/lookup?target={target}&observer={observer}",
            "/healthz",
        ):
            with urllib.request.urlopen(base + route, timeout=10) as response:
                body = json.load(response)
            print(f"  GET {route} -> {response.status}")
            print(f"    {json.dumps(body, sort_keys=True)[:120]} ...")
        server.drain()
        loop.join(timeout=10)
        print("  drained cleanly")


if __name__ == "__main__":
    main()
