"""The worker process entrypoint of the supervised pool.

A worker unpickles its own private copy of the network once at startup,
then loops: receive a prefix task, run the escalating-budget retry
simulation on the private copy, capture the prefix's converged RIB slice,
and send it back with the outcome, engine stats and a raw metrics dump.

Generic tasks (campaign scenarios) take the other branch: the payload is
an object with a ``key`` and a ``run(network, context, config, policy)``
method, executed on a *fresh* unpickled network copy per task — scenario
simulations mutate topology, and isolation beats the cost of unpickling.
The shared ``context`` (e.g. baseline paths) is unpickled once at
startup and treated as read-only.

A daemon thread heartbeats over the same connection while the main thread
simulates, so the supervisor can tell a *busy* worker from a *wedged* one.
All sends share one lock (``multiprocessing`` connections are not
thread-safe).

Workers deliberately run with a :class:`~repro.obs.trace.NullTracer` and
a private metrics registry: engine metrics travel home inside each
result, and only the supervisor emits trace events (the supervision
events of the run).  Unexpected task exceptions are reported as
``MSG_ERROR`` and the worker keeps serving; anything that kills the
process outright (segfault, OOM, ``os._exit``) is the supervisor's
problem, by design.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time

from repro.net.prefix import Prefix
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import set_tracer
from repro.parallel.protocol import (
    CRASH_EXIT_CODE,
    GenericTaskResult,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_READY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    TaskResult,
    WorkerFaults,
    capture_prefix_state,
)
from repro.resilience.retry import simulate_prefix_with_retry


def worker_main(
    conn,
    network_blob: bytes,
    decision_config,
    retry_policy,
    faults: WorkerFaults | None,
    heartbeat_interval: float,
    context_blob: bytes | None = None,
) -> None:
    """Run the worker loop on ``conn`` until shutdown or EOF."""
    # The supervisor coordinates interruption: a terminal Ctrl-C reaches
    # the whole process group, and a worker that died to SIGINT would
    # turn every graceful drain into a spray of crash events.  SIGTERM
    # keeps its default handler so the supervisor's kill always works.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    set_tracer(None)
    set_registry(MetricsRegistry())

    network = pickle.loads(network_blob)
    context = pickle.loads(context_blob) if context_blob is not None else None
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(message: tuple) -> bool:
        with send_lock:
            try:
                conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                return False

    def heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            if not send((MSG_HEARTBEAT, os.getpid())):
                return

    beater = threading.Thread(target=heartbeat, daemon=True)
    beater.start()
    send((MSG_READY, os.getpid()))

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == MSG_SHUTDOWN:
                break
            if message[0] != MSG_TASK:  # pragma: no cover - protocol guard
                continue
            _, task_id, payload = message
            is_prefix = isinstance(payload, Prefix)
            _inject_faults(str(payload) if is_prefix else payload.key, faults)
            registry = MetricsRegistry()
            set_registry(registry)
            try:
                if is_prefix:
                    stats, outcome = simulate_prefix_with_retry(
                        network, payload, decision_config, retry_policy
                    )
                    result: object = TaskResult(
                        prefix=payload,
                        outcome=outcome,
                        stats=stats,
                        state=capture_prefix_state(network, payload),
                        metrics=registry.dump_raw(),
                    )
                else:
                    # Generic task: run on a *fresh* unpickled network so a
                    # scenario's topology mutations never leak into the
                    # next task dispatched to this worker.
                    scratch = pickle.loads(network_blob)
                    value = payload.run(
                        scratch, context, decision_config, retry_policy
                    )
                    result = GenericTaskResult(
                        key=payload.key,
                        value=value,
                        metrics=registry.dump_raw(),
                    )
            except BaseException as error:  # noqa: BLE001 - reported, not hidden
                if not send((MSG_ERROR, task_id, repr(error))):
                    break
                continue
            if not send((MSG_RESULT, task_id, result)):
                break
    finally:
        stop.set()
        conn.close()


def _inject_faults(name: str, faults: WorkerFaults | None) -> None:
    """Apply configured crash/hang sabotage for task ``name`` (chaos/tests)."""
    if not faults:
        return
    if name in faults.crash_prefixes:
        # Mimic a segfault/OOM kill: vanish without a goodbye message.
        os._exit(CRASH_EXIT_CODE)
    if name in faults.hang_prefixes:
        time.sleep(faults.hang_seconds)
