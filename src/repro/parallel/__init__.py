"""Supervised parallel simulation executor.

Per-prefix BGP simulation is embarrassingly parallel (Section 4.2 of the
paper: routing decisions are made independently per prefix), so this
package fans prefixes out to a crash-isolated pool of worker processes
supervised by watchdogs, with poison-prefix quarantine and graceful
signal-driven shutdown.  ``workers=1`` keeps the sequential path.

The pool also runs *generic* tasks (objects with a ``key`` and a
``run(network, context, config, policy)`` method) via
:meth:`SupervisedPool.run_tasks` — the campaign engine uses this to fan
whole perturbed-scenario simulations out with the same crash isolation,
watchdogs and poison quarantine as per-prefix work.
"""

from repro.parallel.protocol import (
    GenericTaskResult,
    PrefixState,
    TaskFailure,
    TaskResult,
    WorkerFaults,
    apply_prefix_state,
    capture_prefix_state,
)
from repro.parallel.supervisor import (
    GenericRunStats,
    ParallelConfig,
    SupervisedPool,
    simulate_network_supervised,
)

__all__ = [
    "GenericRunStats",
    "GenericTaskResult",
    "ParallelConfig",
    "PrefixState",
    "SupervisedPool",
    "TaskFailure",
    "TaskResult",
    "WorkerFaults",
    "apply_prefix_state",
    "capture_prefix_state",
    "simulate_network_supervised",
]
