"""Supervised parallel simulation executor.

Per-prefix BGP simulation is embarrassingly parallel (Section 4.2 of the
paper: routing decisions are made independently per prefix), so this
package fans prefixes out to a crash-isolated pool of worker processes
supervised by watchdogs, with poison-prefix quarantine and graceful
signal-driven shutdown.  ``workers=1`` keeps the sequential path.
"""

from repro.parallel.protocol import (
    PrefixState,
    TaskResult,
    WorkerFaults,
    apply_prefix_state,
    capture_prefix_state,
)
from repro.parallel.supervisor import (
    ParallelConfig,
    SupervisedPool,
    simulate_network_supervised,
)

__all__ = [
    "ParallelConfig",
    "PrefixState",
    "SupervisedPool",
    "TaskResult",
    "WorkerFaults",
    "apply_prefix_state",
    "capture_prefix_state",
    "simulate_network_supervised",
]
