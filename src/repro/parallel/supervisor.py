"""The supervised process pool for per-prefix simulation.

:class:`SupervisedPool` owns the complete worker lifecycle so that
parallelism never makes the run more fragile than the sequential path:

* **Crash isolation** — each worker simulates on its own unpickled copy
  of the network; a segfault, OOM kill or unexpected exception costs the
  supervisor one worker and (at worst) one prefix, never the run.
* **Watchdogs** — every dispatched task has a wall-clock deadline
  (``task_timeout``), and every worker heartbeats from a side thread;
  missing either gets the worker killed and replaced.
* **Poison-prefix detection** — a failed task is resubmitted to a fresh
  worker at most ``max_resubmits`` times, then classified as a ``poison``
  (crashes) or ``timeout`` (watchdog expiries) outcome, quarantined
  exactly like a diverged prefix.
* **Deterministic merge** — results are reduced in prefix-sorted order
  (RIB slices, engine stats, metrics dumps), so the final network, stats
  and reports are identical regardless of completion order and match the
  sequential path bit-for-bit on healthy inputs.
* **Graceful shutdown** — SIGINT/SIGTERM stops dispatching, gives
  in-flight tasks a bounded grace period, merges what completed, and
  raises :class:`~repro.errors.ShutdownRequested` carrying the partial
  stats so callers can checkpoint before exiting.

Every supervision event (spawn, death, restart, timeout, resubmit,
poison classification, drain) emits through the tracer and the metrics
registry.
"""

from __future__ import annotations

import logging
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import Iterable

from repro.bgp.decision import DecisionConfig
from repro.bgp.network import Network
from repro.errors import ShutdownRequested
from repro.net.prefix import Prefix
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    EVENT_DRAIN,
    EVENT_POISON_PREFIX,
    EVENT_TASK_RESUBMIT,
    EVENT_TASK_TIMEOUT,
    EVENT_WORKER_DEATH,
    EVENT_WORKER_SPAWN,
    get_tracer,
)
from repro.parallel.protocol import (
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_READY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    TaskFailure,
    WorkerFaults,
    apply_prefix_state,
    dump_network,
)
from repro.parallel.worker import worker_main
from repro.resilience.retry import (
    POISON,
    TIMEOUT,
    PrefixOutcome,
    ResilienceStats,
    RetryPolicy,
)

logger = logging.getLogger(__name__)

FAIL_CRASH = "crash"
FAIL_TIMEOUT = "timeout"
FAIL_STALLED = "stalled"
FAIL_ERROR = "error"

_TICK_SECONDS = 0.05
"""Upper bound on how long the event loop blocks waiting for messages."""


class SupervisionLedger:
    """Spawn/death/restart accounting shared by every supervisor.

    Both the simulation pool (this module) and the serve-worker
    supervisor (:mod:`repro.serve.supervisor`) restart dead processes;
    the ledger gives them one implementation of the bookkeeping —
    metric counters under ``{prefix}.workers_spawned`` /
    ``{prefix}.worker_restarts`` / ``{prefix}.worker_deaths``, tracer
    events, and the ``supervision`` summary dict health reports embed.
    """

    def __init__(self, prefix: str, workers: int) -> None:
        self.prefix = prefix
        self.workers = workers
        self.spawned = 0
        self.deaths = 0

    @property
    def restarts(self) -> int:
        return max(0, self.spawned - self.workers)

    def record_spawn(self, index: int, pid: int | None) -> tuple[int, bool]:
        """Account one (re)spawn; returns ``(generation, is_restart)``."""
        self.spawned += 1
        generation = self.spawned
        restart = generation > self.workers
        get_registry().counter(f"{self.prefix}.workers_spawned").inc()
        if restart:
            get_registry().counter(f"{self.prefix}.worker_restarts").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                EVENT_WORKER_SPAWN,
                worker=index,
                pid=pid,
                generation=generation,
                restart=restart,
            )
        logger.debug(
            "%s %s worker %d (pid %s, generation %d)",
            "restarted" if restart else "spawned",
            self.prefix, index, pid, generation,
        )
        return generation, restart

    def record_death(
        self,
        index: int,
        pid: int | None,
        generation: int,
        reason: str,
        task: str | None = None,
    ) -> None:
        """Account one worker loss (crash, stall, or watchdog kill)."""
        self.deaths += 1
        get_registry().counter(f"{self.prefix}.worker_deaths").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                EVENT_WORKER_DEATH,
                worker=index,
                pid=pid,
                generation=generation,
                reason=reason,
                task=task,
            )
        logger.warning(
            "%s worker %d (pid %s) lost: %s", self.prefix, index, pid, reason
        )

    def summary(self) -> dict:
        """The base supervision dict (callers may extend it)."""
        return {
            "workers": self.workers,
            "spawned": self.spawned,
            "deaths": self.deaths,
            "restarts": self.restarts,
        }


@dataclass(frozen=True)
class ParallelConfig:
    """How the supervised pool runs.

    ``workers=1`` (the default) disables the pool entirely — callers fall
    back to the sequential path, bit-for-bit.  ``task_timeout`` is the
    per-dispatch wall-clock watchdog (None disables it; the retry
    policy's own ``deadline_seconds`` still bounds healthy tasks).
    ``max_resubmits`` is how many *fresh* workers a failing prefix gets
    before being classified poison.  ``drain_grace`` bounds how long a
    graceful shutdown waits for in-flight tasks.  ``start_method`` picks
    the multiprocessing start method (default: ``fork`` where available,
    else ``spawn``).
    """

    workers: int = 1
    task_timeout: float | None = 60.0
    heartbeat_interval: float = 0.2
    heartbeat_grace: float = 15.0
    max_resubmits: int = 2
    drain_grace: float = 5.0
    start_method: str | None = None
    faults: WorkerFaults | None = None

    @property
    def enabled(self) -> bool:
        """True when the pool should actually be used."""
        return self.workers > 1


@dataclass
class _Task:
    """Supervisor-side bookkeeping for one task (prefix or generic).

    ``key`` is the human-readable task identity used in logs, trace
    events and fault injection; for prefix tasks it is ``str(prefix)``,
    for generic tasks the payload's own ``key``.  Task ids are assigned
    in sorted order (prefix order / key order), so sorting by id
    reproduces the deterministic merge order.
    """

    task_id: int
    key: str
    payload: object
    failures: list[str] = field(default_factory=list)
    first_dispatched: float | None = None


@dataclass(frozen=True)
class _Failure:
    """A task the pool gave up on, before caller-specific conversion."""

    status: str
    resubmits: int
    elapsed: float


@dataclass
class GenericRunStats:
    """What :meth:`SupervisedPool.run_tasks` hands back.

    ``results`` maps each completed task's key to the value its ``run``
    returned; ``failed`` maps quarantined keys to their
    :class:`~repro.parallel.protocol.TaskFailure`; ``supervision`` is the
    same ledger summary :class:`~repro.resilience.retry.ResilienceStats`
    carries for prefix runs.
    """

    results: dict[str, object] = field(default_factory=dict)
    failed: dict[str, TaskFailure] = field(default_factory=dict)
    supervision: dict = field(default_factory=dict)


@dataclass
class _Worker:
    """One supervised worker process."""

    index: int
    generation: int
    process: object
    conn: object
    pid: int
    task_id: int | None = None
    dispatched_at: float = 0.0
    last_beat: float = 0.0


class SupervisedPool:
    """Crash-isolated worker pool for per-prefix simulation.

    Use as a context manager or call :meth:`close` explicitly; a pool is
    single-use (one :meth:`run`), matching how the refiner and the chaos
    pipeline consume it.
    """

    def __init__(
        self,
        network: Network,
        config: DecisionConfig = DecisionConfig(),
        policy: RetryPolicy = RetryPolicy(),
        parallel: ParallelConfig = ParallelConfig(),
        context: object | None = None,
    ) -> None:
        if parallel.workers < 2:
            raise ValueError(
                f"SupervisedPool needs workers >= 2, got {parallel.workers}; "
                "use the sequential path for workers=1"
            )
        self.network = network
        self.config = config
        self.policy = policy
        self.parallel = parallel
        start_method = parallel.start_method
        if start_method is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = get_context(start_method)
        self._blob = dump_network(network)
        self._context_blob = (
            pickle.dumps(context) if context is not None else None
        )
        self._workers: list[_Worker | None] = [None] * parallel.workers
        self._ledger = SupervisionLedger("parallel", parallel.workers)
        self._timeouts = 0
        self._resubmits = 0
        self._drain_signum: int | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(self, prefixes: Iterable[Prefix] | None = None) -> ResilienceStats:
        """Simulate every prefix through the pool; returns merged stats.

        Raises :class:`~repro.errors.ShutdownRequested` after a graceful
        drain if SIGINT/SIGTERM arrives mid-run (partial stats attached).
        """
        targets = (
            sorted(prefixes) if prefixes is not None else self.network.prefixes()
        )
        tasks = {
            task_id: _Task(task_id, str(prefix), prefix)
            for task_id, prefix in enumerate(targets)
        }
        results, failed = self._run_loop(tasks)

        stats = self._merge(tasks, results, failed)
        if self._drain_signum is not None:
            unfinished = sorted(
                task.payload
                for task in tasks.values()
                if task.task_id not in results and task.task_id not in failed
            )
            raise ShutdownRequested(self._drain_signum, stats, unfinished)
        return stats

    def run_tasks(self, items: Iterable[object]) -> GenericRunStats:
        """Run generic tasks (``.key`` + ``.run(...)``) through the pool.

        Each item executes crash-isolated on a fresh copy of the network
        inside a worker; per-task metrics are folded into the parent
        registry in key-sorted order, so the outcome is deterministic
        regardless of completion order.  Raises
        :class:`~repro.errors.ShutdownRequested` after a graceful drain
        with the partial :class:`GenericRunStats` attached and the
        unfinished keys as ``pending``.
        """
        ordered = sorted(items, key=lambda item: item.key)  # type: ignore[attr-defined]
        tasks = {
            task_id: _Task(task_id, item.key, item)  # type: ignore[attr-defined]
            for task_id, item in enumerate(ordered)
        }
        results, failed = self._run_loop(tasks)

        stats = GenericRunStats()
        registry = get_registry()
        for task_id in sorted(results):
            result = results[task_id]
            registry.merge_raw(result.metrics)
            stats.results[tasks[task_id].key] = result.value
        for task_id in sorted(failed):
            task = tasks[task_id]
            record = failed[task_id]
            stats.failed[task.key] = TaskFailure(
                key=task.key,
                status=record.status,
                resubmits=record.resubmits,
                elapsed=record.elapsed,
                failures=tuple(task.failures),
            )
        stats.supervision = self._supervision_summary()
        if self._drain_signum is not None:
            unfinished = sorted(
                task.key
                for task in tasks.values()
                if task.task_id not in results and task.task_id not in failed
            )
            raise ShutdownRequested(self._drain_signum, stats, unfinished)
        return stats

    def _run_loop(
        self, tasks: dict[int, _Task]
    ) -> tuple[dict[int, object], dict[int, _Failure]]:
        """Drive the shared dispatch/pump/watchdog loop to completion."""
        pending: deque[int] = deque(sorted(tasks))
        results: dict[int, object] = {}
        failed: dict[int, _Failure] = {}

        previous_handlers = self._install_signal_handlers()
        drain_announced = False
        drain_deadline: float | None = None
        try:
            for index in range(self.parallel.workers):
                self._workers[index] = self._spawn(index)
            while True:
                now = time.monotonic()
                if self._drain_signum is not None and not drain_announced:
                    drain_announced = True
                    drain_deadline = now + self.parallel.drain_grace
                    self._emit_drain(len(pending))
                inflight = [w for w in self._live_workers() if w.task_id is not None]
                if self._drain_signum is None:
                    if not pending and not inflight:
                        break
                    self._dispatch(pending, tasks)
                else:
                    if not inflight or (
                        drain_deadline is not None and now >= drain_deadline
                    ):
                        break
                self._pump_messages(tasks, pending, results, failed)
                self._check_watchdogs(tasks, pending, results, failed)
        finally:
            self._restore_signal_handlers(previous_handlers)
            self.close()
        return results, failed

    def close(self) -> None:
        """Tear down every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._live_workers():
            try:
                worker.conn.send((MSG_SHUTDOWN,))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 1.0
        for worker in self._live_workers():
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
            worker.conn.close()
        self._workers = [None] * self.parallel.workers

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _live_workers(self) -> list[_Worker]:
        return [w for w in self._workers if w is not None]

    def _spawn(self, index: int) -> _Worker:
        """Start worker ``index`` (initial spawn or restart)."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                self._blob,
                self.config,
                self.policy,
                self.parallel.faults,
                self.parallel.heartbeat_interval,
                self._context_blob,
            ),
            name=f"repro-sim-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        generation, _ = self._ledger.record_spawn(index, process.pid)
        now = time.monotonic()
        return _Worker(
            index=index,
            generation=generation,
            process=process,
            conn=parent_conn,
            pid=process.pid,
            last_beat=now,
        )

    def _kill_worker(self, worker: _Worker) -> None:
        """Forcibly remove ``worker`` from the pool (SIGKILL, no goodbye)."""
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(2.0)
        worker.conn.close()
        self._workers[worker.index] = None

    def _fail_worker(
        self,
        worker: _Worker,
        reason: str,
        tasks: dict[int, _Task],
        pending: deque[int],
        failed: dict[int, _Failure],
    ) -> None:
        """Handle a dead/hung worker: charge its task, kill, restart."""
        self._ledger.record_death(
            worker.index,
            worker.pid,
            worker.generation,
            reason,
            task=tasks[worker.task_id].key
            if worker.task_id is not None
            else None,
        )
        task_id = worker.task_id
        self._kill_worker(worker)
        if task_id is not None:
            self._charge_task_failure(tasks[task_id], reason, pending, failed)
        if self._drain_signum is None:
            self._workers[worker.index] = self._spawn(worker.index)

    def _charge_task_failure(
        self,
        task: _Task,
        reason: str,
        pending: deque[int],
        failed: dict[int, _Failure],
    ) -> None:
        """Record one failed dispatch; resubmit or classify the task."""
        task.failures.append(reason)
        registry = get_registry()
        tracer = get_tracer()
        resubmits_used = len(task.failures) - 1
        if resubmits_used < self.parallel.max_resubmits:
            self._resubmits += 1
            registry.counter("parallel.resubmits").inc()
            if tracer.enabled:
                tracer.event(
                    EVENT_TASK_RESUBMIT,
                    prefix=task.key,
                    resubmit=resubmits_used + 1,
                    reason=reason,
                )
            logger.warning(
                "resubmitting %s after %s (attempt %d of %d)",
                task.key, reason, resubmits_used + 2,
                self.parallel.max_resubmits + 1,
            )
            pending.appendleft(task.task_id)
            return
        status = (
            TIMEOUT
            if all(r == FAIL_TIMEOUT for r in task.failures)
            else POISON
        )
        elapsed = (
            time.monotonic() - task.first_dispatched
            if task.first_dispatched is not None
            else 0.0
        )
        failed[task.task_id] = _Failure(status, resubmits_used, elapsed)
        registry.counter(f"parallel.{status}_prefixes").inc()
        if tracer.enabled:
            tracer.event(
                EVENT_POISON_PREFIX,
                prefix=task.key,
                status=status,
                failures=list(task.failures),
            )
        logger.error(
            "classified %s as %s after %d failed dispatch(es): %s",
            task.key, status, len(task.failures), ", ".join(task.failures),
        )

    # ------------------------------------------------------------------
    # Event loop pieces
    # ------------------------------------------------------------------

    def _dispatch(self, pending: deque[int], tasks: dict[int, _Task]) -> None:
        """Hand queued tasks to idle workers (one outstanding task each)."""
        for worker in self._live_workers():
            if not pending:
                return
            if worker.task_id is not None:
                continue
            task_id = pending.popleft()
            task = tasks[task_id]
            worker.task_id = task_id
            worker.dispatched_at = time.monotonic()
            if task.first_dispatched is None:
                task.first_dispatched = worker.dispatched_at
            try:
                worker.conn.send((MSG_TASK, task_id, task.payload))
            except (BrokenPipeError, OSError):
                # Worker died before the dispatch committed: the task never
                # started, so it goes back unpunished and the death is
                # handled by the next watchdog sweep.
                worker.task_id = None
                pending.appendleft(task_id)
                return

    def _pump_messages(
        self,
        tasks: dict[int, _Task],
        pending: deque[int],
        results: dict[int, object],
        failed: dict[int, _Failure],
    ) -> None:
        """Receive everything the workers sent, blocking at most one tick."""
        conns = {w.conn: w for w in self._live_workers()}
        if not conns:
            time.sleep(_TICK_SECONDS)
            return
        ready = mp_connection.wait(list(conns), timeout=_TICK_SECONDS)
        for conn in ready:
            worker = conns[conn]
            if self._workers[worker.index] is not worker:
                continue  # already replaced by an earlier message this sweep
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._fail_worker(worker, FAIL_CRASH, tasks, pending, failed)
                    break
                self._handle_message(worker, message, tasks, pending, failed, results)
                if self._workers[worker.index] is not worker:
                    break

    def _handle_message(
        self,
        worker: _Worker,
        message: tuple,
        tasks: dict[int, _Task],
        pending: deque[int],
        failed: dict[int, _Failure],
        results: dict[int, object],
    ) -> None:
        worker.last_beat = time.monotonic()
        kind = message[0]
        if kind in (MSG_HEARTBEAT, MSG_READY):
            return
        if kind == MSG_RESULT:
            _, task_id, result = message
            if worker.task_id != task_id:  # stale double-send; ignore
                return
            worker.task_id = None
            results[task_id] = result
            registry = get_registry()
            registry.counter("parallel.tasks_completed").inc()
            registry.histogram("parallel.task_seconds").observe(
                time.monotonic() - worker.dispatched_at
            )
            return
        if kind == MSG_ERROR:
            _, task_id, detail = message
            if worker.task_id != task_id:
                return
            worker.task_id = None
            get_registry().counter("parallel.task_errors").inc()
            logger.warning(
                "task %s failed in worker %d: %s",
                tasks[task_id].key, worker.index, detail,
            )
            self._charge_task_failure(tasks[task_id], FAIL_ERROR, pending, failed)

    def _check_watchdogs(
        self,
        tasks: dict[int, _Task],
        pending: deque[int],
        results: dict[int, object],
        failed: dict[int, _Failure],
    ) -> None:
        """Kill workers that died, went silent, or blew the task deadline."""
        now = time.monotonic()
        for worker in self._live_workers():
            if not worker.process.is_alive() and not worker.conn.poll():
                self._fail_worker(worker, FAIL_CRASH, tasks, pending, failed)
                continue
            if (
                worker.task_id is not None
                and self.parallel.task_timeout is not None
                and now - worker.dispatched_at > self.parallel.task_timeout
            ):
                self._timeouts += 1
                registry = get_registry()
                registry.counter("parallel.task_timeouts").inc()
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        EVENT_TASK_TIMEOUT,
                        prefix=tasks[worker.task_id].key,
                        worker=worker.index,
                        timeout=self.parallel.task_timeout,
                    )
                self._fail_worker(worker, FAIL_TIMEOUT, tasks, pending, failed)
                continue
            if now - worker.last_beat > self.parallel.heartbeat_grace:
                self._fail_worker(worker, FAIL_STALLED, tasks, pending, failed)

    # ------------------------------------------------------------------
    # Signals and merge
    # ------------------------------------------------------------------

    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM into the drain flag (main thread only)."""

        def handle(signum, frame):  # noqa: ARG001 - signal signature
            self._drain_signum = signum

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handle)
            except ValueError:
                # Not the main thread: the drain path stays reachable via
                # a caller setting _drain_signum, but signals pass by.
                break
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    def _emit_drain(self, queued: int) -> None:
        get_registry().counter("parallel.drains").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                EVENT_DRAIN,
                signal=self._drain_signum,
                queued=queued,
                grace=self.parallel.drain_grace,
            )
        logger.warning(
            "draining on signal %s: %d task(s) still queued, %.1fs grace "
            "for in-flight work",
            self._drain_signum, queued, self.parallel.drain_grace,
        )

    def _merge(
        self,
        tasks: dict[int, _Task],
        results: dict[int, object],
        failed: dict[int, _Failure],
    ) -> ResilienceStats:
        """Reduce worker results deterministically (prefix-sorted).

        Task ids were assigned in sorted-prefix order, so iterating by id
        reproduces the prefix-sorted merge order bit-for-bit.
        """
        stats = ResilienceStats()
        registry = get_registry()
        for task_id in sorted(results):
            result = results[task_id]
            apply_prefix_state(self.network, result.state)
            stats.engine.merge(result.stats)
            registry.merge_raw(result.metrics)
            stats.outcomes.append(result.outcome)
        for task_id in sorted(failed):
            task = tasks[task_id]
            record = failed[task_id]
            outcome = PrefixOutcome.supervised_failure(
                task.payload, record.status, record.resubmits, record.elapsed
            )
            # Quarantine: a poison/timeout prefix carries no routes.
            self.network.clear_prefix(task.payload)
            stats.outcomes.append(outcome)
        stats.outcomes.sort(key=lambda o: o.prefix)
        stats.supervision = self._supervision_summary()
        return stats

    def _supervision_summary(self) -> dict:
        return {
            **self._ledger.summary(),
            "task_timeouts": self._timeouts,
            "resubmits": self._resubmits,
            "drained": self._drain_signum is not None,
        }


def simulate_network_supervised(
    network: Network,
    prefixes: Iterable[Prefix] | None = None,
    config: DecisionConfig = DecisionConfig(),
    policy: RetryPolicy = RetryPolicy(),
    parallel: ParallelConfig = ParallelConfig(),
) -> ResilienceStats:
    """Simulate every prefix through a supervised worker pool.

    Falls back to the sequential retry loop when ``parallel`` is not
    enabled (``workers=1``), preserving that path bit-for-bit.
    """
    if not parallel.enabled:
        from repro.resilience.retry import simulate_network_with_retry

        return simulate_network_with_retry(
            network, prefixes=prefixes, config=config, policy=policy
        )
    with SupervisedPool(network, config, policy, parallel) as pool:
        return pool.run(prefixes)
