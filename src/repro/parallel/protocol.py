"""The task protocol between the parallel supervisor and its workers.

Everything that crosses the process boundary is defined here: the wire
messages (plain tuples tagged with a ``MSG_*`` constant, pickled by the
``multiprocessing`` connection), the :class:`TaskResult` a worker returns,
and the :class:`PrefixState` capture/apply pair that moves one prefix's
converged RIB slice between a worker's private network copy and the
supervisor's authoritative one.

Per-prefix independence (Section 4.2 of the paper: "routing decisions are
determined independently for each prefix") is what makes this protocol
small: a task is just a prefix, and a result is just that prefix's RIB
slice plus counters.  Nothing else in the worker's network copy can have
changed.

:class:`WorkerFaults` is the crash-injection hook the chaos suite and the
supervision tests use to produce deterministic worker kills and hangs.
"""

from __future__ import annotations

import pickle
import sys
from dataclasses import dataclass, field

from repro.bgp.network import Network
from repro.bgp.route import Route
from repro.net.prefix import Prefix


def dump_network(network: Network) -> bytes:
    """Pickle a network, with headroom for deep router/session graphs.

    Pickling walks the router ↔ session object graph depth-first, so the
    recursion depth grows with topology size, not nesting; a refined
    model with thousands of quasi-router sessions blows the interpreter's
    default 1000-frame limit.  The limit is raised (never lowered) around
    the dump and restored afterwards.  Unpickling is iterative and needs
    no such headroom.
    """
    headroom = 4096 + 2 * len(network.routers) + len(network.sessions) // 2
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, headroom))
    try:
        return pickle.dumps(network)
    finally:
        sys.setrecursionlimit(previous)

# Parent -> worker
MSG_TASK = "task"
MSG_SHUTDOWN = "shutdown"

# Worker -> parent
MSG_READY = "ready"
MSG_HEARTBEAT = "heartbeat"
MSG_RESULT = "result"
MSG_ERROR = "error"
"""The task raised an unexpected exception; payload is its repr.  The
supervisor treats this like a crash (the worker's state is suspect), but
the worker stays useful for unrelated prefixes after a restart."""

CRASH_EXIT_CODE = 70
"""Exit code of a fault-injected worker crash (mimics a segfault/OOM kill:
the process disappears without sending anything)."""


@dataclass(frozen=True)
class WorkerFaults:
    """Deterministic worker sabotage for chaos runs and supervision tests.

    ``crash_prefixes`` name tasks (prefixes as strings, or generic task
    keys such as scenario keys) whose dispatch makes the worker
    ``os._exit`` immediately — indistinguishable from a segfault or OOM
    kill from the supervisor's side.  ``hang_prefixes`` make the worker
    sleep ``hang_seconds`` instead of simulating, so the per-task
    watchdog must fire.  Both are checked by string to keep the config
    trivially serialisable.
    """

    crash_prefixes: tuple[str, ...] = ()
    hang_prefixes: tuple[str, ...] = ()
    hang_seconds: float = 3600.0

    def __bool__(self) -> bool:
        return bool(self.crash_prefixes or self.hang_prefixes)


@dataclass
class PrefixState:
    """One prefix's complete routing state, detached from any network.

    ``routers`` maps a router id to its four per-prefix slots:
    ``(adj_rib_in, loc_rib entry, adj_rib_out, local_routes entry)``.
    Routes are plain attribute objects, so the state pickles cleanly;
    route *identity* is not preserved across the boundary, which is fine
    because every consumer (refiner, evaluator, exporter) compares
    attributes and every re-simulation clears the prefix first.
    """

    prefix: Prefix
    routers: dict[
        int,
        tuple[
            dict[int, Route] | None,
            Route | None,
            dict[int, Route] | None,
            Route | None,
        ],
    ] = field(default_factory=dict)


def capture_prefix_state(network: Network, prefix: Prefix) -> PrefixState:
    """Snapshot every router's state for ``prefix`` after a simulation."""
    state = PrefixState(prefix=prefix)
    for router_id in network.touched_routers(prefix):
        router = network.routers[router_id]
        rib_in = router.adj_rib_in.get(prefix)
        rib_out = router.adj_rib_out.get(prefix)
        state.routers[router_id] = (
            dict(rib_in) if rib_in else None,
            router.loc_rib.get(prefix),
            dict(rib_out) if rib_out else None,
            router.local_routes.get(prefix),
        )
    return state


def apply_prefix_state(network: Network, state: PrefixState) -> None:
    """Replay a captured RIB slice onto ``network``.

    Equivalent to the network having simulated the prefix itself: stale
    state is cleared first and the touched-router bookkeeping is updated,
    so a later ``clear_prefix``/re-simulation behaves identically.
    Routers the capture names but this network lacks cannot occur in
    practice (worker copies are forks of the same topology) and raise
    ``KeyError`` loudly rather than merging a partial slice.
    """
    prefix = state.prefix
    network.clear_prefix(prefix)
    for router_id in sorted(state.routers):
        rib_in, best, rib_out, local = state.routers[router_id]
        router = network.routers[router_id]
        if rib_in:
            router.adj_rib_in[prefix] = dict(rib_in)
        if best is not None:
            router.loc_rib[prefix] = best
        if rib_out:
            router.adj_rib_out[prefix] = dict(rib_out)
        if local is not None:
            router.local_routes[prefix] = local
        network.note_touched(prefix, router_id)


@dataclass
class TaskResult:
    """Everything a worker reports back for one completed task.

    ``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.dump_raw`
    dump of the registry the worker dedicated to this task, so the
    supervisor can fold per-task engine metrics into the parent registry
    in deterministic (prefix-sorted) order.
    """

    prefix: Prefix
    outcome: object  # PrefixOutcome; kept loose to avoid an import cycle
    stats: object  # EngineStats
    state: PrefixState
    metrics: dict = field(default_factory=dict)


@dataclass
class GenericTaskResult:
    """What a worker reports back for one completed *generic* task.

    Generic tasks (scenario simulations, not per-prefix slices) return an
    opaque picklable ``value`` instead of a RIB slice; the supervisor
    hands values back to the caller keyed by the task's ``key`` and folds
    ``metrics`` into the parent registry in key-sorted order.
    """

    key: str
    value: object
    metrics: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TaskFailure:
    """A generic task the pool gave up on (poison or repeated timeout).

    The generic-task analogue of
    :meth:`~repro.resilience.retry.PrefixOutcome.supervised_failure`:
    ``status`` is ``poison`` or ``timeout``, ``failures`` the per-dispatch
    failure reasons, ``elapsed`` wall-clock since the first dispatch.
    """

    key: str
    status: str
    resubmits: int
    elapsed: float
    failures: tuple[str, ...] = ()
