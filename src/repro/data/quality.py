"""Record-quality taxonomy for real-feed ingestion.

Real BGP feeds are dirty in ways synthetic round-trip data never is:
truncated fields, non-numeric ASNs, AS_SET aggregates, path loops,
reserved/private ASNs, martian prefixes, and stray binary bytes.  The
ingestion layer never crashes on a single bad record and never drops one
silently — every rejected record is *quarantined* under exactly one of
the typed reasons below, with its 1-based line position, and the totals
are accounted for in an :class:`IngestReport` where

    accepted + sum(quarantined per reason) == lines seen

holds by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.net.asn import AS_TRANS, MAX_ASN, is_private_asn
from repro.net.prefix import Prefix

# ---------------------------------------------------------------------------
# Rejection reasons
# ---------------------------------------------------------------------------

MALFORMED_FIELDS = "malformed-fields"
"""The line does not have the expected field structure at all."""

BAD_PEER_AS = "bad-peer-as"
"""The peer-AS field is not a parseable AS number."""

BAD_PREFIX = "bad-prefix"
"""The prefix field is not a parseable CIDR prefix."""

BAD_PATH = "bad-path"
"""The AS-path field contains unparseable tokens."""

AS_SET = "as-set"
"""The AS-path contains an AS_SET segment (``{...}``, from aggregation)."""

PEER_MISMATCH = "peer-mismatch"
"""The AS-path is empty or does not start at the peer AS."""

PATH_LOOP = "path-loop"
"""The AS-path revisits an AS non-consecutively (a routing loop)."""

BOGON_ASN = "bogon-asn"
"""The path or peer contains a reserved/private ASN (incl. AS_TRANS)."""

MARTIAN_PREFIX = "martian-prefix"
"""The prefix lies in reserved/private address space."""

UNDECODABLE_BYTES = "undecodable-bytes"
"""The raw line contains bytes that do not decode as text."""

BAD_RELATIONSHIP = "bad-relationship"
"""An as-rel record's relationship code is not one of -1/0/1."""

SELF_EDGE = "self-edge"
"""An as-rel record links an AS to itself."""

REASONS: tuple[str, ...] = (
    MALFORMED_FIELDS,
    BAD_PEER_AS,
    BAD_PREFIX,
    BAD_PATH,
    AS_SET,
    PEER_MISMATCH,
    PATH_LOOP,
    BOGON_ASN,
    MARTIAN_PREFIX,
    UNDECODABLE_BYTES,
    BAD_RELATIONSHIP,
    SELF_EDGE,
)
"""Every reason the ingestion layer can quarantine a record under."""

EXPECTED_REASONS: frozenset[str] = frozenset({AS_SET})
"""Reasons that are expected preprocessing, not feed damage.

AS_SET drops mirror the paper's preprocessing ("the dataset drops
aggregated routes") and therefore do not count against malformed-feed
quality gates.
"""

_SAMPLE_LIMIT = 3
_SAMPLE_WIDTH = 160


@dataclass(frozen=True)
class Rejection:
    """One quarantined record: why, where, and what it looked like."""

    reason: str
    line_number: int
    """1-based position of the offending line in the source."""
    detail: str = ""
    """The offending field/value, when one can be named."""
    line: str = ""
    """The raw line, truncated for reporting."""

    def describe(self) -> str:
        """``line 17: bad-peer-as (peer AS 'x'): 'TABLE_DUMP2|...'``."""
        parts = [f"line {self.line_number}: {self.reason}"]
        if self.detail:
            parts.append(f"({self.detail})")
        if self.line:
            parts.append(f": {self.line!r}")
        return " ".join(parts[:2]) + (parts[2] if len(parts) > 2 else "")


# ---------------------------------------------------------------------------
# Bogon ASNs and martian prefixes
# ---------------------------------------------------------------------------

_DOC_ASN_RANGES = ((64496, 64511), (65536, 65551))
"""Documentation/sample ASN ranges (RFC 5398)."""

_MARTIAN_PREFIXES = tuple(
    Prefix(text)
    for text in (
        "0.0.0.0/8",        # "this network" (RFC 1122)
        "10.0.0.0/8",       # private (RFC 1918)
        "100.64.0.0/10",    # shared CGN space (RFC 6598)
        "127.0.0.0/8",      # loopback
        "169.254.0.0/16",   # link local
        "172.16.0.0/12",    # private (RFC 1918)
        "192.0.0.0/24",     # IETF protocol assignments
        "192.0.2.0/24",     # TEST-NET-1
        "192.168.0.0/16",   # private (RFC 1918)
        "198.18.0.0/15",    # benchmarking (RFC 2544)
        "198.51.100.0/24",  # TEST-NET-2
        "203.0.113.0/24",   # TEST-NET-3
        "224.0.0.0/4",      # multicast
        "240.0.0.0/4",      # reserved (class E)
    )
)


def is_bogon_asn(asn: int) -> bool:
    """True for ASNs that must never appear in a public AS-path.

    Covers AS 0 (RFC 7607), AS_TRANS 23456 (RFC 4893 placeholder — a
    real topology node named 23456 is a 2-byte speaker's stand-in, not
    an AS), the private-use ranges (RFC 6996), the documentation ranges
    (RFC 5398), and the all-ones reserved values 65535 / 2^32-1.
    """
    if asn <= 0 or asn > MAX_ASN:
        return True
    if asn == AS_TRANS or asn == 0xFFFF or asn == MAX_ASN:
        return True
    if is_private_asn(asn):
        return True
    return any(lo <= asn <= hi for lo, hi in _DOC_ASN_RANGES)


def is_martian_prefix(prefix: Prefix) -> bool:
    """True if ``prefix`` lies inside reserved/private address space."""
    return any(martian.contains(prefix) for martian in _MARTIAN_PREFIXES)


# ---------------------------------------------------------------------------
# The ingest report
# ---------------------------------------------------------------------------

INGEST_REPORT_FORMAT = "repro/ingest-report/v1"


@dataclass
class IngestReport:
    """Exact accounting of one ingestion run.

    ``lines`` counts every record line seen (blank lines and ``#``
    comments are not records); each such line lands in exactly one of
    ``accepted`` or one ``quarantined[reason]`` bucket.  ``modified``
    counts in-place repairs (prepend collapse) that do *not* drop the
    record.  Up to three sample offending lines are kept per reason so a
    report names concrete evidence, not just totals.
    """

    source: str = ""
    format: str = "bgpdump"
    lines: int = 0
    accepted: int = 0
    quarantined: dict[str, int] = field(default_factory=dict)
    modified: dict[str, int] = field(default_factory=dict)
    samples: dict[str, list[dict]] = field(default_factory=dict)

    def record_accept(self) -> None:
        """Account one record line as accepted."""
        self.lines += 1
        self.accepted += 1

    def record_reject(self, rejection: Rejection) -> None:
        """Account one record line as quarantined under its reason."""
        self.lines += 1
        reason = rejection.reason
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1
        samples = self.samples.setdefault(reason, [])
        if len(samples) < _SAMPLE_LIMIT:
            samples.append(
                {
                    "line_number": rejection.line_number,
                    "detail": rejection.detail,
                    "line": rejection.line[:_SAMPLE_WIDTH],
                }
            )

    def record_modified(self, kind: str, amount: int = 1) -> None:
        """Count an in-place repair (e.g. ``prepend-collapse``)."""
        self.modified[kind] = self.modified.get(kind, 0) + amount

    @property
    def total_quarantined(self) -> int:
        """Records quarantined across every reason."""
        return sum(self.quarantined.values())

    @property
    def damaged(self) -> int:
        """Quarantined records that indicate feed damage (not AS_SET)."""
        return sum(
            count
            for reason, count in self.quarantined.items()
            if reason not in EXPECTED_REASONS
        )

    @property
    def damaged_fraction(self) -> float:
        """``damaged / lines`` (0 when no lines were seen)."""
        return self.damaged / self.lines if self.lines else 0.0

    def is_accounted(self) -> bool:
        """True iff every seen line is exactly accepted or quarantined."""
        return self.lines == self.accepted + self.total_quarantined

    def to_dict(self) -> dict:
        """JSON-serialisable form (stable key order via sorting)."""
        return {
            "format_id": INGEST_REPORT_FORMAT,
            "source": self.source,
            "format": self.format,
            "lines": self.lines,
            "accepted": self.accepted,
            "quarantined": {
                reason: self.quarantined[reason]
                for reason in sorted(self.quarantined)
            },
            "total_quarantined": self.total_quarantined,
            "damaged": self.damaged,
            "modified": {
                kind: self.modified[kind] for kind in sorted(self.modified)
            },
            "samples": {
                reason: list(self.samples[reason])
                for reason in sorted(self.samples)
            },
        }

    def to_json(self) -> str:
        """The report as an indented JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "IngestReport":
        """Rebuild a report from :meth:`to_dict` output (checkpoint resume)."""
        report = cls(
            source=str(data.get("source", "")),
            format=str(data.get("format", "bgpdump")),
            lines=int(data.get("lines", 0)),
            accepted=int(data.get("accepted", 0)),
            quarantined={
                str(k): int(v) for k, v in (data.get("quarantined") or {}).items()
            },
            modified={
                str(k): int(v) for k, v in (data.get("modified") or {}).items()
            },
            samples={
                str(k): [dict(s) for s in v]
                for k, v in (data.get("samples") or {}).items()
            },
        )
        return report

    def render(self) -> str:
        """Human-readable multi-line summary."""
        out = [
            f"ingest report for {self.source or '<stream>'} ({self.format})",
            f"  lines:       {self.lines}",
            f"  accepted:    {self.accepted}",
            f"  quarantined: {self.total_quarantined} "
            f"({self.damaged} damaged, {self.damaged_fraction:.1%} of lines)",
        ]
        for reason in sorted(self.quarantined):
            out.append(f"    {reason:<20} {self.quarantined[reason]}")
            for sample in self.samples.get(reason, [])[:1]:
                out.append(
                    f"      e.g. line {sample['line_number']}: "
                    f"{sample['line']!r}"
                )
        for kind in sorted(self.modified):
            out.append(f"  modified:    {kind} x{self.modified[kind]}")
        return "\n".join(out)
