"""Observation points and RIB collection.

An observation point is one BGP feed: a monitor peering with one router
inside an observation AS (Section 3.1).  Selection is biased towards the
core ("There are relatively more observation points in the level-1 and
level-2 ASes than in the other ASes") and roughly 30% of observation ASes
get feeds from multiple routers, matching the paper's dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bgp.network import Network
from repro.data.synthesis import SyntheticInternet
from repro.net.aspath import ASPath
from repro.topology.classify import Level
from repro.topology.dataset import ObservedRoute, PathDataset

LEVEL_WEIGHTS = {Level.LEVEL1: 8.0, Level.LEVEL2: 4.0, Level.OTHER: 1.0}
MULTI_POINT_FRACTION = 0.3


@dataclass(frozen=True)
class ObservationPoint:
    """One BGP feed: (id, observer AS, monitored router)."""

    point_id: str
    asn: int
    router_id: int


def select_observation_points(
    internet: SyntheticInternet,
    n_ases: int,
    seed: int = 7,
    level_weights: dict[Level, float] | None = None,
    multi_point_fraction: float = MULTI_POINT_FRACTION,
) -> list[ObservationPoint]:
    """Choose observation points in ``n_ases`` distinct ASes.

    Within each chosen AS one router is monitored; in a
    ``multi_point_fraction`` share of the chosen ASes (those with several
    routers) two or more routers are monitored, giving the multi-feed ASes
    of Section 3.1.
    """
    rng = random.Random(seed)
    weights = level_weights or LEVEL_WEIGHTS
    candidates = sorted(internet.network.ases)
    n_ases = min(n_ases, len(candidates))

    chosen_ases: list[int] = []
    pool = list(candidates)
    while len(chosen_ases) < n_ases and pool:
        pool_weights = [weights.get(internet.levels[asn], 1.0) for asn in pool]
        asn = rng.choices(pool, weights=pool_weights, k=1)[0]
        pool.remove(asn)
        chosen_ases.append(asn)

    points: list[ObservationPoint] = []
    for asn in sorted(chosen_ases):
        routers = internet.network.as_routers(asn)
        if len(routers) > 1 and rng.random() < multi_point_fraction:
            count = rng.randint(2, len(routers))
        else:
            count = 1
        for position, router in enumerate(rng.sample(routers, count)):
            points.append(
                ObservationPoint(f"op-{asn}-{position}", asn, router.router_id)
            )
    return points


def collect_dataset(
    network: Network,
    points: list[ObservationPoint],
    include_own_prefixes: bool = True,
) -> PathDataset:
    """Snapshot every observation point's best routes into a dataset.

    The recorded AS-path is what the monitor would receive over its feed
    session: the observation AS prepended to the monitored router's best
    path.  Prefixes with no route at the router are skipped (exactly like
    a missing RIB entry).
    """
    dataset = PathDataset()
    for point in points:
        router = network.routers[point.router_id]
        for prefix in network.prefixes():
            best = router.best(prefix)
            if best is None:
                continue
            if not include_own_prefixes and not best.as_path:
                continue
            path = ASPath((point.asn,) + best.as_path)
            dataset.add(ObservedRoute(point.point_id, point.asn, prefix, path))
    return dataset
