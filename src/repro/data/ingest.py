"""Fault-tolerant, resumable ingestion of real-world feeds.

This is the gate raw CAIDA/RouteViews data passes before any model is
built from it.  The pipeline composes the layers below it:

1. the hardened streaming parser (:mod:`repro.data.dumps`) turns raw
   bytes into per-record results with typed rejection reasons;
2. the sanitization passes (:mod:`repro.data.sanitize`) quarantine
   loops, bogon ASNs and martian prefixes, and collapse prepends;
3. accepted records stream into an in-memory
   :class:`~repro.topology.dataset.PathDataset` *and* (optionally) a
   normalised clean dump file, written incrementally;
4. progress checkpoints (source byte offset at a line boundary, clean
   output length, report counters) are written atomically every
   ``checkpoint_every`` lines via :mod:`repro.resilience.checkpoint`,
   so a multi-GB ingest survives interruption and ``resume=True``
   continues from the last offset with *identical* final results;
5. a malformed-burst circuit breaker aborts early with a clear
   :class:`~repro.errors.IngestError` when a feed turns to garbage
   mid-file, and a whole-file malformed-fraction gate rejects feeds
   that were garbage all along.

Every record line is accounted for as exactly one of accepted or
quarantined-with-reason in the resulting
:class:`~repro.data.quality.IngestReport`, whose counters also land in
the :mod:`repro.obs.metrics` registry.
"""

from __future__ import annotations

import logging
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.data.dumps import (
    format_dump_line,
    iter_table_dump,
    read_table_dump,
)
from repro.data.quality import EXPECTED_REASONS, IngestReport
from repro.data.sanitize import PREPEND_COLLAPSE, SanitizeConfig, sanitize_route
from repro.errors import CheckpointError, IngestError, ShutdownRequested
from repro.obs.metrics import Counter, get_registry, labelled
from repro.resilience.checkpoint import (
    IngestCheckpoint,
    ingest_fingerprint,
    load_ingest_checkpoint,
    save_ingest_checkpoint,
)
from repro.topology.dataset import PathDataset

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class IngestConfig:
    """Tuning knobs for one ingestion run."""

    sanitize: SanitizeConfig = field(default_factory=SanitizeConfig)
    strict: bool = False
    max_malformed_fraction: float | None = 0.5
    """Whole-file gate: abort when this fraction of record lines is
    damaged (AS_SET skips excluded).  ``None`` disables it."""
    burst_window: int = 500
    """Record lines in the circuit breaker's sliding window (<= 0
    disables the breaker)."""
    burst_threshold: float = 0.95
    """Damaged fraction of the window that trips the breaker (a feed
    that *turns* to garbage mid-file fails fast, not at EOF)."""
    checkpoint_every: int = 20000
    """Source lines between checkpoint snapshots."""


@dataclass
class IngestResult:
    """The outcome of an ingestion run."""

    dataset: PathDataset
    report: IngestReport
    resumed_from_line: int = 0
    """Physical source line the run resumed after (0 = fresh run)."""


def _restore(
    checkpoint_path: Path, source: Path, out_path: Path | None
) -> IngestCheckpoint:
    """Validate a checkpoint against the feed it claims to describe."""
    checkpoint = load_ingest_checkpoint(checkpoint_path)
    fingerprint = ingest_fingerprint(source)
    if checkpoint.fingerprint != fingerprint:
        raise CheckpointError(
            f"checkpoint {checkpoint_path} was taken against a different "
            f"feed than {source} (fingerprint mismatch); refusing to resume"
        )
    if out_path is None:
        raise CheckpointError(
            f"checkpoint {checkpoint_path} needs the clean output file to "
            "rebuild the already-accepted records; pass out_path"
        )
    if not out_path.exists() or out_path.stat().st_size < checkpoint.out_offset:
        raise CheckpointError(
            f"clean output {out_path} is missing or shorter than the "
            f"checkpointed {checkpoint.out_offset} bytes; cannot resume"
        )
    return checkpoint


def _truncate_output(out_path: Path, length: int) -> None:
    """Cut the clean output back to the checkpointed consistent length."""
    with open(out_path, "rb+") as handle:
        handle.truncate(length)


def _reload_dataset(out_path: Path) -> PathDataset:
    """Rebuild the accepted-so-far dataset from the clean output file."""
    return read_table_dump(out_path, max_malformed_fraction=None).dataset


class _Breaker:
    """Sliding-window malformed-burst circuit breaker."""

    def __init__(self, window: int, threshold: float) -> None:
        self._flags: deque[int] = deque(maxlen=max(1, window))
        self._threshold = threshold
        self._damaged = 0

    def observe(self, damaged: bool) -> bool:
        """Record one record line; True when the breaker trips."""
        flags = self._flags
        if len(flags) == flags.maxlen:
            self._damaged -= flags[0]
        flags.append(1 if damaged else 0)
        self._damaged += flags[-1]
        return (
            len(flags) == flags.maxlen
            and self._damaged >= self._threshold * flags.maxlen
        )

    @property
    def window_damaged(self) -> int:
        """Damaged lines currently in the window."""
        return self._damaged

    @property
    def window_size(self) -> int:
        """Lines currently in the window."""
        return len(self._flags)


def ingest_table_dump(
    source: str | Path,
    out_path: str | Path | None = None,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    config: IngestConfig | None = None,
    should_stop: Callable[[], int | None] | None = None,
) -> IngestResult:
    """Ingest a ``bgpdump -m`` feed into a clean dataset + exact report.

    ``out_path`` receives the normalised clean dump, written
    incrementally (required when checkpointing).  ``checkpoint_path``
    enables periodic atomic progress snapshots; with ``resume=True`` an
    existing checkpoint continues the run from its last offset, and the
    final dataset/report are identical to an uninterrupted run.  A
    completed checkpoint makes the whole call idempotent: rerunning it
    returns the finished results without re-reading the feed.

    ``should_stop`` is polled once per source line; returning a signal
    number writes a final checkpoint and raises
    :class:`~repro.errors.ShutdownRequested` — the graceful-drain hook
    the CLI wires to SIGINT/SIGTERM.
    """
    source = Path(source)
    out_path = Path(out_path) if out_path is not None else None
    checkpoint_path = Path(checkpoint_path) if checkpoint_path is not None else None
    if checkpoint_path is not None and out_path is None:
        raise ValueError("checkpointing requires out_path for the clean dump")
    config = config or IngestConfig()

    report = IngestReport(source=str(source), format="bgpdump")
    dataset = PathDataset()
    start_offset = 0
    start_line = 0
    resumed_from_line = 0

    if resume and checkpoint_path is not None and checkpoint_path.exists():
        checkpoint = _restore(checkpoint_path, source, out_path)
        assert out_path is not None
        _truncate_output(out_path, checkpoint.out_offset)
        report = IngestReport.from_dict(checkpoint.report)
        report.source = str(source)
        dataset = _reload_dataset(out_path)
        start_offset = checkpoint.byte_offset
        start_line = checkpoint.line_number
        resumed_from_line = checkpoint.line_number
        if checkpoint.complete:
            logger.info("ingest of %s already complete; nothing to do", source)
            return IngestResult(dataset, report, resumed_from_line)
        logger.info(
            "resuming ingest of %s from line %d (byte %d)",
            source, start_line, start_offset,
        )

    registry = get_registry()
    lines_counter = registry.counter("ingest.lines")
    accepted_counter = registry.counter("ingest.accepted")
    reason_counters: dict[str, Counter] = {}

    fingerprint = (
        ingest_fingerprint(source) if checkpoint_path is not None else ""
    )
    breaker = (
        _Breaker(config.burst_window, config.burst_threshold)
        if config.burst_window > 0
        else None
    )
    line_number = start_line
    lines_since_checkpoint = 0

    out_handle = None
    source_handle = open(source, "rb")
    try:
        if out_path is not None:
            if resumed_from_line:
                # Not "ab": append mode reports tell() == 0 until the
                # first write, which would checkpoint a zero out_offset.
                out_handle = open(out_path, "rb+")
                out_handle.seek(0, os.SEEK_END)
            else:
                out_handle = open(out_path, "wb")
        source_handle.seek(start_offset)

        def snapshot(complete: bool = False) -> None:
            """Flush the clean output and atomically checkpoint progress."""
            if checkpoint_path is None:
                return
            if out_handle is not None:
                out_handle.flush()
                os.fsync(out_handle.fileno())
            save_ingest_checkpoint(
                checkpoint_path,
                IngestCheckpoint(
                    source=str(source),
                    fingerprint=fingerprint,
                    byte_offset=source_handle.tell(),
                    line_number=line_number,
                    out_offset=out_handle.tell() if out_handle else 0,
                    complete=complete,
                    report=report.to_dict(),
                ),
            )

        for raw in source_handle:
            line_number += 1
            lines_since_checkpoint += 1
            stripped = raw.strip()
            if stripped and not stripped.startswith(b"#"):
                for record in iter_table_dump(
                    [raw], strict=config.strict, start_line=line_number - 1
                ):
                    rejection = record.rejection
                    if record.route is not None:
                        outcome = sanitize_route(
                            record.route, record.line_number, config.sanitize
                        )
                        if outcome.prepends_collapsed:
                            report.record_modified(
                                PREPEND_COLLAPSE, outcome.prepends_collapsed
                            )
                        if outcome.route is not None:
                            report.record_accept()
                            accepted_counter.inc()
                            dataset.add(outcome.route)
                            if out_handle is not None:
                                out_handle.write(
                                    (
                                        format_dump_line(
                                            outcome.route, record.peer_ip
                                        )
                                        + "\n"
                                    ).encode("utf-8")
                                )
                            rejection = None
                        else:
                            rejection = outcome.rejection
                    if rejection is not None:
                        report.record_reject(rejection)
                        counter = reason_counters.get(rejection.reason)
                        if counter is None:
                            counter = registry.counter(
                                labelled(
                                    "ingest.quarantined",
                                    reason=rejection.reason,
                                )
                            )
                            reason_counters[rejection.reason] = counter
                        counter.inc()
                    lines_counter.inc()
                    damaged = (
                        rejection is not None
                        and rejection.reason not in EXPECTED_REASONS
                    )
                    if breaker is not None and breaker.observe(damaged):
                        raise IngestError(
                            f"feed turned to garbage at line {line_number}: "
                            f"{breaker.window_damaged} of the last "
                            f"{breaker.window_size} record lines were "
                            f"damaged (>= {config.burst_threshold:.0%}); "
                            "aborting ingest",
                            report=report,
                        )
            # Line-boundary bookkeeping only below this point: the line
            # is fully processed, so source_handle.tell() names a resume
            # position that neither loses nor double-counts it.
            if should_stop is not None:
                signum = should_stop()
                if signum:
                    snapshot()
                    raise ShutdownRequested(signum)
            if (
                checkpoint_path is not None
                and lines_since_checkpoint >= config.checkpoint_every
            ):
                snapshot()
                lines_since_checkpoint = 0

        if (
            config.max_malformed_fraction is not None
            and report.lines
            and report.damaged_fraction > config.max_malformed_fraction
        ):
            raise IngestError(
                f"feed is mostly garbage: {report.damaged} of "
                f"{report.lines} record lines damaged "
                f"(+{report.quarantined.get('as-set', 0)} AS_SET skips) "
                f"exceeds the {config.max_malformed_fraction:.0%} threshold",
                report=report,
            )
        snapshot(complete=True)
    finally:
        source_handle.close()
        if out_handle is not None:
            out_handle.close()

    registry.gauge("ingest.accepted_fraction").set(
        report.accepted / report.lines if report.lines else 0.0
    )
    logger.info(
        "ingested %s: %d lines, %d accepted, %d quarantined",
        source, report.lines, report.accepted, report.total_quarantined,
    )
    return IngestResult(dataset, report, resumed_from_line)
