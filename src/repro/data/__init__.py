"""Synthetic BGP measurement data (the RouteViews/RIPE substitute).

The paper consumes RIB dumps from >1300 real observation points.  Offline,
this package generates the equivalent: a tiered synthetic Internet with
ground-truth topology, intra-AS structure and policies (including
deliberately non-standard ones), a ground-truth BGP simulation, a set of
observation points biased towards the core, and bgpdump-style table dumps.

Everything downstream of :func:`collect_dataset` sees only observed
AS-paths, exactly as the paper's pipeline sees only BGP feeds.
"""

from repro.data.synthesis import (
    SyntheticConfig,
    SyntheticInternet,
    synthesize_internet,
)
from repro.data.observation import (
    ObservationPoint,
    collect_dataset,
    select_observation_points,
)
from repro.data.dumps import (
    RecordResult,
    iter_table_dump,
    read_table_dump,
    write_table_dump,
    SNAPSHOT_TIME,
)
from repro.data.caida import CaidaReadResult, iter_as_rel, read_as_rel
from repro.data.ingest import IngestConfig, IngestResult, ingest_table_dump
from repro.data.quality import IngestReport, Rejection
from repro.data.sanitize import SanitizeConfig, sanitize_route

__all__ = [
    "SyntheticConfig",
    "SyntheticInternet",
    "synthesize_internet",
    "ObservationPoint",
    "select_observation_points",
    "collect_dataset",
    "CaidaReadResult",
    "IngestConfig",
    "IngestReport",
    "IngestResult",
    "RecordResult",
    "Rejection",
    "SanitizeConfig",
    "ingest_table_dump",
    "iter_as_rel",
    "iter_table_dump",
    "read_as_rel",
    "read_table_dump",
    "sanitize_route",
    "write_table_dump",
    "SNAPSHOT_TIME",
]
