"""Synthetic Internet generation.

The generator builds a three-level provider hierarchy mirroring the
composition the paper measures in Section 3.1 (a tier-1 clique, level-2
providers attached to it, further transit ASes, and a large population of
single- and multi-homed stubs), realizes every AS as one or more border
routers with an IGP and full-mesh iBGP, and installs ground-truth
policies:

* standard customer/peer/provider local-pref and export filters,
* a configurable fraction of "weird" sessions with non-standard
  preferences (the policies that break pure relationship models),
* selective announcements (origins that withhold their prefix from one
  provider),
* per-link MED (cold-potato) on some multi-link customer edges,
* AS-path prepending by some stubs (so the dataset exercises cleaning).

Route diversity then emerges for the same reasons as in the real
Internet: multiple inter-AS links between different router pairs,
hot-potato (IGP-cost) egress selection, and policy asymmetries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.network import ASNode, Network
from repro.bgp.session import Session
from repro.bgp.policy import Action, Clause, Match
from repro.errors import TopologyError
from repro.net.prefix import Prefix, prefix_for_asn
from repro.relationships.types import Relationship, RelationshipMap
from repro.topology.classify import Level

LEVEL1_ASN_BASE = 10
LEVEL2_ASN_BASE = 100
OTHER_ASN_BASE = 1000
STUB_ASN_BASE = 10000

LOCAL_PREF_CUSTOMER = 100
LOCAL_PREF_PEER = 90
LOCAL_PREF_PROVIDER = 80

TAG_FROM_CUSTOMER = (0xFFFB << 16) | 1
TAG_FROM_PEER = (0xFFFB << 16) | 2
TAG_FROM_PROVIDER = (0xFFFB << 16) | 3

GROUND_TRUTH_TAG = "ground-truth"
WEIRD_TAG = "weird"


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic Internet.

    The defaults produce a ~230-AS Internet that runs in seconds; the
    benchmark workloads scale the counts up.
    """

    seed: int = 42
    n_level1: int = 6
    n_level2: int = 20
    n_other: int = 50
    n_stub: int = 150
    multi_homed_stub_fraction: float = 0.62
    routers_level1: tuple[int, int] = (3, 6)
    routers_level2: tuple[int, int] = (2, 4)
    routers_other: tuple[int, int] = (1, 3)
    routers_stub: tuple[int, int] = (1, 2)
    level2_providers: tuple[int, int] = (1, 3)
    other_providers: tuple[int, int] = (1, 3)
    multi_stub_providers: tuple[int, int] = (2, 3)
    level2_peering_prob: float = 0.20
    other_peering_prob: float = 0.08
    extra_link_prob: float = 0.5
    max_parallel_links: int = 3
    igp_cost_range: tuple[int, int] = (1, 10)
    igp_extra_edge_prob: float = 0.3
    weird_session_fraction: float = 0.08
    selective_announce_fraction: float = 0.15
    cold_potato_fraction: float = 0.25
    prepend_fraction: float = 0.06
    sibling_pair_count: int = 2
    prefixes_per_as: tuple[int, int] = (1, 3)
    route_reflection_threshold: int = 0
    """ASes with at least this many routers use RFC 4456 route reflection
    instead of a full iBGP mesh (0 disables; reflection can hide routes,
    which is additional — realistic — intra-AS opacity)."""

    def scaled(self, factor: float) -> "SyntheticConfig":
        """A copy with AS population counts scaled by ``factor``."""
        return SyntheticConfig(
            seed=self.seed,
            n_level1=max(3, round(self.n_level1 * min(factor, 2.0))),
            n_level2=max(4, round(self.n_level2 * factor)),
            n_other=max(4, round(self.n_other * factor)),
            n_stub=max(6, round(self.n_stub * factor)),
            multi_homed_stub_fraction=self.multi_homed_stub_fraction,
            routers_level1=self.routers_level1,
            routers_level2=self.routers_level2,
            routers_other=self.routers_other,
            routers_stub=self.routers_stub,
            level2_providers=self.level2_providers,
            other_providers=self.other_providers,
            multi_stub_providers=self.multi_stub_providers,
            level2_peering_prob=self.level2_peering_prob,
            other_peering_prob=self.other_peering_prob,
            extra_link_prob=self.extra_link_prob,
            max_parallel_links=self.max_parallel_links,
            igp_cost_range=self.igp_cost_range,
            igp_extra_edge_prob=self.igp_extra_edge_prob,
            weird_session_fraction=self.weird_session_fraction,
            selective_announce_fraction=self.selective_announce_fraction,
            cold_potato_fraction=self.cold_potato_fraction,
            prepend_fraction=self.prepend_fraction,
            sibling_pair_count=self.sibling_pair_count,
            prefixes_per_as=self.prefixes_per_as,
            route_reflection_threshold=self.route_reflection_threshold,
        )


@dataclass
class SyntheticInternet:
    """The generated ground truth."""

    config: SyntheticConfig
    network: Network
    levels: dict[int, Level]
    relationships: RelationshipMap
    prefixes_by_as: dict[int, list[Prefix]] = field(default_factory=dict)
    weird_sessions: list[int] = field(default_factory=list)
    selective_origins: list[int] = field(default_factory=list)
    prepending_origins: list[int] = field(default_factory=list)

    def level_asns(self, level: Level) -> list[int]:
        """ASNs at the given hierarchy level, sorted."""
        return sorted(asn for asn, lvl in self.levels.items() if lvl is level)

    @property
    def level1_asns(self) -> list[int]:
        """The ground-truth tier-1 clique."""
        return self.level_asns(Level.LEVEL1)

    def origin_of(self, prefix: Prefix) -> int:
        """The AS originating ``prefix``."""
        for asn, prefixes in self.prefixes_by_as.items():
            if prefix in prefixes:
                return asn
        raise TopologyError(f"prefix {prefix} not originated in this internet")


def synthesize_internet(config: SyntheticConfig = SyntheticConfig()) -> SyntheticInternet:
    """Generate a synthetic Internet from ``config`` (deterministic in seed)."""
    rng = random.Random(config.seed)
    network = Network(name=f"synthetic-{config.seed}")
    levels: dict[int, Level] = {}
    relationships = RelationshipMap()

    level1 = [LEVEL1_ASN_BASE + i for i in range(config.n_level1)]
    level2 = [LEVEL2_ASN_BASE + i for i in range(config.n_level2)]
    other = [OTHER_ASN_BASE + i for i in range(config.n_other)]
    stubs = [STUB_ASN_BASE + i for i in range(config.n_stub)]

    for asn in level1:
        levels[asn] = Level.LEVEL1
    for asn in level2:
        levels[asn] = Level.LEVEL2
    for asn in other + stubs:
        levels[asn] = Level.OTHER

    router_ranges = {
        Level.LEVEL1: config.routers_level1,
        Level.LEVEL2: config.routers_level2,
    }
    for asn in level1 + level2 + other + stubs:
        if asn in stubs:
            low, high = config.routers_stub
        elif asn in other:
            low, high = config.routers_other
        else:
            low, high = router_ranges[levels[asn]]
        _build_as(network, asn, rng.randint(low, high), rng, config)

    edges: list[tuple[int, int, Relationship]] = []

    # Tier-1 clique: full mesh of peerings.
    for i, a in enumerate(level1):
        for b in level1[i + 1 :]:
            edges.append((a, b, Relationship.PEER))

    customer_counts: dict[int, int] = {asn: 0 for asn in level1 + level2 + other}

    def pick_providers(pool: list[int], count: int) -> list[int]:
        """Mildly preferential attachment: weight by 1 + count/4.

        The damping keeps the degree distribution skewed (hub providers
        exist) without making the hierarchy so star-like that alternative
        paths differ in length and the path-length decision step destroys
        every tie.
        """
        chosen: list[int] = []
        candidates = list(pool)
        for _ in range(min(count, len(candidates))):
            weights = [1 + customer_counts[asn] / 4 for asn in candidates]
            provider = rng.choices(candidates, weights=weights, k=1)[0]
            candidates.remove(provider)
            chosen.append(provider)
            customer_counts[provider] += 1
        return chosen

    for asn in level2:
        for provider in pick_providers(level1, rng.randint(*config.level2_providers)):
            edges.append((provider, asn, Relationship.CUSTOMER))
    for i, a in enumerate(level2):
        for b in level2[i + 1 :]:
            if rng.random() < config.level2_peering_prob:
                edges.append((a, b, Relationship.PEER))

    for asn in other:
        pool = level2 if rng.random() < 0.9 else level1
        for provider in pick_providers(pool, rng.randint(*config.other_providers)):
            edges.append((provider, asn, Relationship.CUSTOMER))
    for i, a in enumerate(other):
        for b in other[i + 1 :]:
            if rng.random() < config.other_peering_prob:
                edges.append((a, b, Relationship.PEER))

    n_multi = round(len(stubs) * config.multi_homed_stub_fraction)
    for position, asn in enumerate(stubs):
        if position < n_multi:
            count = rng.randint(*config.multi_stub_providers)
        else:
            count = 1
        pool = other if rng.random() < 0.7 else level2
        for provider in pick_providers(pool, count):
            edges.append((provider, asn, Relationship.CUSTOMER))

    # A few sibling pairs among the level-2/other transit ASes.
    sibling_candidates = level2 + other
    for _ in range(config.sibling_pair_count):
        a, b = rng.sample(sibling_candidates, 2)
        if not any({a, b} == {x, y} for x, y, _ in edges):
            edges.append((a, b, Relationship.SIBLING))

    # Deduplicate AS edges (keep the first relationship assigned).
    seen_pairs: set[tuple[int, int]] = set()
    for a, b, rel in edges:
        key = (min(a, b), max(a, b))
        if key in seen_pairs:
            continue
        seen_pairs.add(key)
        relationships.set(a, b, rel)
        _connect_ases(network, a, b, rel, rng, config)

    internet = SyntheticInternet(
        config=config,
        network=network,
        levels=levels,
        relationships=relationships,
    )
    _originate_prefixes(internet, rng)
    _install_weird_policies(internet, rng)
    network.validate()
    return internet


def _build_as(
    network: Network, asn: int, n_routers: int, rng: random.Random,
    config: SyntheticConfig,
) -> ASNode:
    """Create an AS with ``n_routers`` routers, a connected IGP and iBGP mesh."""
    node = network.add_as(asn)
    routers = [network.add_router(asn) for _ in range(n_routers)]
    low, high = config.igp_cost_range
    for position, router in enumerate(routers[1:], start=1):
        parent = routers[rng.randrange(position)]
        node.igp.add_link(
            router.router_id, parent.router_id, rng.randint(low, high)
        )
    for i, a in enumerate(routers):
        for b in routers[i + 1 :]:
            if (
                b.router_id not in node.igp.neighbors(a.router_id)
                and rng.random() < config.igp_extra_edge_prob
            ):
                node.igp.add_link(a.router_id, b.router_id, rng.randint(low, high))
    threshold = config.route_reflection_threshold
    if threshold and n_routers >= threshold:
        n_reflectors = 2 if n_routers >= threshold + 2 else 1
        network.ibgp_route_reflection(
            routers[:n_reflectors], routers[n_reflectors:]
        )
    else:
        network.ibgp_full_mesh(asn)
    return node


def _connect_ases(
    network: Network,
    a: int,
    b: int,
    rel_of_b_from_a: Relationship,
    rng: random.Random,
    config: SyntheticConfig,
) -> None:
    """Wire one or more router-pair links between ASes ``a`` and ``b``."""
    routers_a = network.as_routers(a)
    routers_b = network.as_routers(b)
    max_links = min(len(routers_a), len(routers_b), config.max_parallel_links)
    n_links = 1
    while n_links < max_links and rng.random() < config.extra_link_prob:
        n_links += 1
    picks_a = rng.sample(routers_a, n_links)
    picks_b = rng.sample(routers_b, n_links)
    for router_a, router_b in zip(picks_a, picks_b):
        session_ab, session_ba = network.connect(router_a, router_b)
        _install_standard_policies(session_ab, rel_of_b_from_a.inverse())
        _install_standard_policies(session_ba, rel_of_b_from_a)

    # Cold-potato: on some multi-link customer->provider edges the customer
    # sets different MEDs per link so the provider prefers one entry point.
    if n_links > 1 and rng.random() < config.cold_potato_fraction:
        if rel_of_b_from_a is Relationship.CUSTOMER:
            customer_routers, provider = picks_b, a
        elif rel_of_b_from_a is Relationship.PROVIDER:
            customer_routers, provider = picks_a, b
        else:
            return
        for position, router in enumerate(customer_routers):
            for session in router.sessions_out:
                if session.dst.asn == provider:
                    session.ensure_export_map().append(
                        Clause(
                            Match(),
                            Action.PERMIT,
                            set_med=10 * position,
                            tag=GROUND_TRUTH_TAG,
                        )
                    )


def _install_standard_policies(
    session: Session, rel_of_src_from_dst: Relationship
) -> None:
    """Ground-truth relationship policies for one directed session.

    ``rel_of_src_from_dst``: what the announcing router's AS is from the
    receiver's point of view (CUSTOMER = routes from my customer).
    """
    if rel_of_src_from_dst is Relationship.SIBLING:
        # Siblings act as one organisation: the received route keeps the
        # relationship class it had inside the sibling (communities are
        # relayed, not stripped) and is ranked accordingly.  This keeps the
        # overall preference structure hierarchical, so BGP convergence is
        # preserved (a flat "sibling" local-pref can form dispute wheels).
        import_map = session.ensure_import_map()
        import_map.append(
            Clause(
                Match(community=TAG_FROM_PROVIDER),
                Action.PERMIT,
                set_local_pref=LOCAL_PREF_PROVIDER,
                tag=GROUND_TRUTH_TAG,
            )
        )
        import_map.append(
            Clause(
                Match(community=TAG_FROM_PEER),
                Action.PERMIT,
                set_local_pref=LOCAL_PREF_PEER,
                tag=GROUND_TRUTH_TAG,
            )
        )
        import_map.append(
            Clause(
                Match(),
                Action.PERMIT,
                set_local_pref=LOCAL_PREF_CUSTOMER,
                add_communities=frozenset((TAG_FROM_CUSTOMER,)),
                tag=GROUND_TRUTH_TAG,
            )
        )
        # Siblings exchange all routes: no export filter.
        return
    settings = {
        Relationship.CUSTOMER: (LOCAL_PREF_CUSTOMER, TAG_FROM_CUSTOMER),
        Relationship.PEER: (LOCAL_PREF_PEER, TAG_FROM_PEER),
        Relationship.PROVIDER: (LOCAL_PREF_PROVIDER, TAG_FROM_PROVIDER),
        Relationship.UNKNOWN: (LOCAL_PREF_PEER, TAG_FROM_PEER),
    }
    local_pref, tag = settings[rel_of_src_from_dst]
    session.ensure_import_map().append(
        Clause(
            Match(),
            Action.PERMIT,
            set_local_pref=local_pref,
            add_communities=frozenset((tag,)),
            strip_communities=True,
            tag=GROUND_TRUTH_TAG,
        )
    )
    # Export side: when the receiver is a peer or provider of the sender,
    # the sender only announces customer routes and its own routes.
    rel_of_dst_from_src = rel_of_src_from_dst.inverse()
    if rel_of_dst_from_src in (Relationship.PEER, Relationship.PROVIDER):
        export_map = session.ensure_export_map()
        for community in (TAG_FROM_PEER, TAG_FROM_PROVIDER):
            export_map.append(
                Clause(Match(community=community), Action.DENY, tag=GROUND_TRUTH_TAG)
            )


def _originate_prefixes(internet: SyntheticInternet, rng: random.Random) -> None:
    """Originate 1..k prefixes per AS at every border router of the AS."""
    low, high = internet.config.prefixes_per_as
    for asn in sorted(internet.network.ases):
        count = rng.randint(low, high)
        prefixes = [prefix_for_asn(asn, index) for index in range(count)]
        internet.prefixes_by_as[asn] = prefixes
        for prefix in prefixes:
            for router in internet.network.as_routers(asn):
                internet.network.originate(router, prefix)


def _install_weird_policies(internet: SyntheticInternet, rng: random.Random) -> None:
    """Layer non-standard policies on top of the relationship defaults."""
    config = internet.config
    network = internet.network

    # Weird sessions: a random local-pref that ignores the relationship
    # (e.g. a provider route preferred over a customer route).
    ebgp_sessions = sorted(
        (s for s in network.ebgp_sessions()), key=lambda s: s.session_id
    )
    n_weird = round(len(ebgp_sessions) * config.weird_session_fraction)
    for session in rng.sample(ebgp_sessions, n_weird):
        session.ensure_import_map().append(
            Clause(
                Match(),
                Action.PERMIT,
                set_local_pref=rng.choice((70, 85, 95, 105, 110)),
                tag=WEIRD_TAG,
            )
        )
        internet.weird_sessions.append(session.session_id)

    # Selective announcement: some multi-homed origins withhold prefixes
    # from one of their providers — a *different* provider per prefix, the
    # per-prefix traffic engineering that makes prefixes of the same origin
    # travel different paths (one of the diversity sources of Section 3.2).
    multi_homed_origins = [
        asn
        for asn in sorted(network.ases)
        if len(_provider_asns(internet, asn)) > 1
    ]
    n_selective = round(len(multi_homed_origins) * config.selective_announce_fraction)
    for asn in rng.sample(multi_homed_origins, min(n_selective, len(multi_homed_origins))):
        providers = sorted(_provider_asns(internet, asn))
        for prefix in internet.prefixes_by_as[asn]:
            blocked = rng.choice(providers)
            for router in network.as_routers(asn):
                for session in router.sessions_out:
                    if session.is_ebgp and session.dst.asn == blocked:
                        session.ensure_export_map().append(
                            Clause(Match(prefix=prefix), Action.DENY, tag=WEIRD_TAG)
                        )
        internet.selective_origins.append(asn)

    # Prepending: some origins pad the AS-path towards one provider, again
    # per prefix (backup-link traffic engineering).
    candidates = [
        asn for asn in multi_homed_origins if asn not in internet.selective_origins
    ]
    n_prepend = round(len(network.ases) * config.prepend_fraction)
    for asn in rng.sample(candidates, min(n_prepend, len(candidates))):
        providers = sorted(_provider_asns(internet, asn))
        for prefix in internet.prefixes_by_as[asn]:
            padded = rng.choice(providers)
            for router in network.as_routers(asn):
                for session in router.sessions_out:
                    if session.is_ebgp and session.dst.asn == padded:
                        session.ensure_export_map().append(
                            Clause(
                                Match(prefix=prefix),
                                Action.PERMIT,
                                prepend=rng.randint(1, 2),
                                tag=WEIRD_TAG,
                            )
                        )
        internet.prepending_origins.append(asn)


def _provider_asns(internet: SyntheticInternet, asn: int) -> set[int]:
    """Ground-truth provider ASNs of ``asn``."""
    providers: set[int] = set()
    for a, b, rel in internet.relationships.edges():
        if a == asn and rel is Relationship.PROVIDER:
            providers.add(b)
        elif b == asn and rel is Relationship.CUSTOMER:
            providers.add(a)
    return providers
