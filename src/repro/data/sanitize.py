"""Sanitization passes over parsed dump records.

The hardened parser (:mod:`repro.data.dumps`) guarantees a record is
*well-formed*; these passes decide whether it is *credible*.  Each pass
either repairs the record in place (prepend collapse — counted, never
silent) or quarantines it under a typed reason:

* ``path-loop`` — the AS-path revisits an AS non-consecutively.  Real
  feeds contain these (leaked iBGP state, misconfigured aggregation);
  the paper's preprocessing drops them.
* ``bogon-asn`` — a reserved/private ASN on the path or as the peer,
  including AS_TRANS 23456 (a 2-byte speaker's placeholder for a 4-byte
  neighbour, not a real topology node).
* ``martian-prefix`` — the prefix lies in reserved/private address
  space and cannot legitimately appear in a public table.

Every drop is attributed; ``sanitize_route`` returns either a clean
route or a :class:`~repro.data.quality.Rejection`, never ``None``/``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.quality import (
    BOGON_ASN,
    MARTIAN_PREFIX,
    PATH_LOOP,
    Rejection,
    is_bogon_asn,
    is_martian_prefix,
)
from repro.topology.dataset import ObservedRoute

PREPEND_COLLAPSE = "prepend-collapse"
"""Modification counter key: consecutive duplicate ASNs were collapsed."""


@dataclass(frozen=True)
class SanitizeConfig:
    """Which sanitization passes run (all on by default).

    ``drop_bogon_asns`` / ``drop_martian_prefixes`` should be disabled
    for synthetic round-trip data, whose ASNs and prefixes are drawn
    from compact ranges that overlap reserved space by construction.
    """

    collapse_prepends: bool = True
    drop_loops: bool = True
    drop_bogon_asns: bool = True
    drop_martian_prefixes: bool = True

    @classmethod
    def for_synthetic(cls) -> "SanitizeConfig":
        """Passes appropriate for synthetic dumps (no bogon/martian drops)."""
        return cls(drop_bogon_asns=False, drop_martian_prefixes=False)


@dataclass(frozen=True)
class SanitizeOutcome:
    """One route's fate: the (possibly repaired) route or a rejection."""

    route: ObservedRoute | None
    rejection: Rejection | None = None
    prepends_collapsed: int = 0


def sanitize_route(
    route: ObservedRoute,
    line_number: int = 0,
    config: SanitizeConfig | None = None,
) -> SanitizeOutcome:
    """Run the sanitization passes over one parsed route.

    Pass order matters: prepend collapse runs first so a prepended loop
    (``1 2 2 1``) is judged on its real shape, and the bogon check sees
    each ASN once.
    """
    config = config or SanitizeConfig()
    raw = str(route.path)[:64]
    path = route.path
    collapsed = 0
    if config.collapse_prepends:
        deduped = path.without_prepending()
        collapsed = len(path) - len(deduped)
        path = deduped
    if config.drop_loops and path.has_loop():
        return SanitizeOutcome(
            None,
            Rejection(
                PATH_LOOP, line_number, detail=f"path {raw!r}", line=raw
            ),
        )
    if config.drop_bogon_asns:
        bogon = next((asn for asn in path if is_bogon_asn(asn)), None)
        if bogon is None and is_bogon_asn(route.observer_asn):
            bogon = route.observer_asn
        if bogon is not None:
            return SanitizeOutcome(
                None,
                Rejection(
                    BOGON_ASN,
                    line_number,
                    detail=f"AS {bogon} in path {raw!r}",
                    line=raw,
                ),
            )
    if config.drop_martian_prefixes and is_martian_prefix(route.prefix):
        return SanitizeOutcome(
            None,
            Rejection(
                MARTIAN_PREFIX,
                line_number,
                detail=f"prefix {route.prefix}",
                line=raw,
            ),
        )
    if collapsed:
        route = ObservedRoute(
            route.point_id, route.observer_asn, route.prefix, path
        )
    return SanitizeOutcome(route, prepends_collapsed=collapsed)
