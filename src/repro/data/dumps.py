"""bgpdump-style table dumps.

Datasets round-trip through the one-line-per-entry pipe-separated format
produced by ``bgpdump -m`` on MRT TABLE_DUMP2 files::

    TABLE_DUMP2|<time>|B|<peer_ip>|<peer_as>|<prefix>|<as_path>|<origin>|...

so the pipeline can also ingest real RouteViews/RIPE data when it is
available.

Parsing is *streaming and hardened*: :func:`iter_table_dump` yields one
:class:`RecordResult` per record line — either a parsed
:class:`~repro.topology.dataset.ObservedRoute` or a typed
:class:`~repro.data.quality.Rejection` naming the reason and the 1-based
line position — and never raises on a single bad record in lenient mode.
A file given by path is read as *bytes* so a stray non-ASCII byte
quarantines that one line (reason ``undecodable-bytes``) instead of
aborting the whole read with :class:`UnicodeDecodeError`.

:func:`read_table_dump` keeps the historical eager API (and its
``max_malformed_fraction`` mostly-garbage guard) on top of the streaming
parser; :mod:`repro.data.ingest` builds the resumable, checkpointed
pipeline on the same generator.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.data.quality import (
    AS_SET,
    BAD_PATH,
    BAD_PEER_AS,
    BAD_PREFIX,
    MALFORMED_FIELDS,
    PEER_MISMATCH,
    UNDECODABLE_BYTES,
    IngestReport,
    Rejection,
)
from repro.errors import DatasetError, ParseError
from repro.net.asn import MAX_ASN
from repro.net.aspath import ASPath
from repro.net.ip import ip_to_string
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

SNAPSHOT_TIME = 1131867000
"""Sun Nov 13 2005 07:30 UTC — the paper's snapshot instant."""

_RECORD_TYPE = "TABLE_DUMP2"
_LINE_WIDTH = 160  # raw-line truncation for rejection samples

logger = logging.getLogger(__name__)


def write_table_dump(
    dataset: PathDataset,
    destination: str | Path | TextIO,
    timestamp: int = SNAPSHOT_TIME,
) -> int:
    """Write ``dataset`` in bgpdump -m format; returns the number of lines.

    The peer IP is synthesised from the observation point id so that
    distinct points in the same AS stay distinguishable after a
    round-trip.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            return write_table_dump(dataset, handle, timestamp)
    count = 0
    point_ips = _point_ips(dataset)
    for route in dataset:
        peer_ip = point_ips[route.point_id]
        destination.write(format_dump_line(route, peer_ip, timestamp) + "\n")
        count += 1
    return count


def format_dump_line(
    route: ObservedRoute, peer_ip: str, timestamp: int = SNAPSHOT_TIME
) -> str:
    """One normalised ``bgpdump -m`` line for ``route`` (no newline)."""
    return "|".join(
        (
            _RECORD_TYPE,
            str(timestamp),
            "B",
            peer_ip,
            str(route.observer_asn),
            str(route.prefix),
            str(route.path),
            "IGP",
            peer_ip,
            "0",
            "0",
            "",
            "NAG",
            "",
        )
    )


def _point_ips(dataset: PathDataset) -> dict[str, str]:
    """Assign a stable synthetic peer IP to every observation point."""
    ips: dict[str, str] = {}
    per_as_counter: dict[int, int] = {}
    for point_id, asn in sorted(dataset.observation_points().items()):
        index = per_as_counter.get(asn, 0) + 1
        per_as_counter[asn] = index
        ips[point_id] = ip_to_string(((asn & 0xFFFF) << 16) | index)
    return ips


@dataclass(frozen=True)
class RecordResult:
    """One record line's outcome: a parsed route or a typed rejection."""

    line_number: int
    """1-based position of the line in the source."""
    route: ObservedRoute | None = None
    rejection: Rejection | None = None
    peer_ip: str = ""

    @property
    def accepted(self) -> bool:
        """True when the line parsed into a route."""
        return self.route is not None


def _classify_dump_line(line: str, line_number: int) -> RecordResult:
    """Parse one stripped record line into a :class:`RecordResult`."""

    def reject(reason: str, detail: str) -> RecordResult:
        return RecordResult(
            line_number,
            rejection=Rejection(
                reason, line_number, detail=detail, line=line[:_LINE_WIDTH]
            ),
        )

    fields = line.split("|")
    if fields[0] != _RECORD_TYPE:
        return reject(
            MALFORMED_FIELDS, f"record type {fields[0][:32]!r} != {_RECORD_TYPE}"
        )
    if len(fields) < 7:
        return reject(MALFORMED_FIELDS, f"{len(fields)} fields, need >= 7")
    _, _, _, peer_ip, peer_as, prefix_text, path_text = fields[:7]
    try:
        observer_asn = int(peer_as)
    except ValueError:
        return reject(BAD_PEER_AS, f"peer AS {peer_as!r}")
    if not 0 < observer_asn <= MAX_ASN:
        return reject(BAD_PEER_AS, f"peer AS {observer_asn} out of range")
    try:
        prefix = Prefix(prefix_text)
    except ParseError as error:
        return reject(BAD_PREFIX, str(error))
    try:
        path = ASPath.parse(path_text)
    except ParseError as error:
        if "{" in path_text:
            return reject(AS_SET, f"AS_SET in path {path_text[:64]!r}")
        return reject(BAD_PATH, str(error))
    if len(path) == 0 or path.head_asn != observer_asn:
        return reject(
            PEER_MISMATCH,
            f"path {str(path)[:64]!r} does not start at peer AS {observer_asn}",
        )
    return RecordResult(
        line_number,
        route=ObservedRoute(
            f"{peer_ip}|{observer_asn}", observer_asn, prefix, path
        ),
        peer_ip=peer_ip,
    )


def iter_table_dump(
    lines: Iterable[str | bytes],
    strict: bool = False,
    start_line: int = 0,
) -> Iterator[RecordResult]:
    """Stream per-record results from ``bgpdump -m`` lines.

    Yields one :class:`RecordResult` per *record* line (blank lines and
    ``#`` comments are passed over silently).  Lines may be ``str`` or
    ``bytes``; undecodable bytes quarantine that line with reason
    ``undecodable-bytes`` instead of raising.  ``start_line`` is the
    number of physical lines already consumed by the caller (resume),
    so reported positions stay 1-based within the whole source.

    In strict mode a rejection raises :class:`ParseError` carrying the
    1-based line number and the offending field — except AS_SET lines,
    which are expected preprocessing and are still yielded as
    quarantined records.
    """
    line_number = start_line
    for raw in lines:
        line_number += 1
        if isinstance(raw, bytes):
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                result = RecordResult(
                    line_number,
                    rejection=Rejection(
                        UNDECODABLE_BYTES,
                        line_number,
                        detail=str(error),
                        line=raw.decode(
                            "utf-8", errors="backslashreplace"
                        )[:_LINE_WIDTH],
                    ),
                )
                if strict:
                    raise ParseError(
                        f"line {line_number}: undecodable bytes: {error}"
                    ) from error
                yield result
                continue
        else:
            text = raw
        line = text.strip()
        if not line or line.startswith("#"):
            continue
        result = _classify_dump_line(line, line_number)
        rejection = result.rejection
        if strict and rejection is not None and rejection.reason != AS_SET:
            raise ParseError(
                f"line {line_number}: {rejection.reason} "
                f"({rejection.detail}): {line[:_LINE_WIDTH]!r}"
            )
        yield result


@dataclass
class DumpReadResult:
    """A parsed dump plus the exact accounting of skipped lines."""

    dataset: PathDataset
    report: IngestReport

    @property
    def lines(self) -> int:
        """Record lines seen (blank lines and comments excluded)."""
        return self.report.lines

    @property
    def skipped_as_set(self) -> int:
        """Lines dropped because the path contained an AS_SET segment."""
        return self.report.quarantined.get(AS_SET, 0)

    @property
    def skipped_malformed(self) -> int:
        """Lines dropped for any damage reason (everything but AS_SET)."""
        return self.report.damaged


def check_quality_gate(
    report: IngestReport, max_malformed_fraction: float | None
) -> None:
    """Raise :class:`DatasetError` when a read was mostly garbage.

    A mostly-garbage feed must not silently become a tiny (or empty)
    dataset.  AS_SET skips are expected preprocessing and do not count.
    """
    if (
        max_malformed_fraction is not None
        and report.lines
        and report.damaged_fraction > max_malformed_fraction
    ):
        raise DatasetError(
            f"dump is mostly garbage: {report.damaged} of "
            f"{report.lines} lines malformed "
            f"(+{report.quarantined.get(AS_SET, 0)} AS_SET skips) exceeds the "
            f"{max_malformed_fraction:.0%} threshold"
        )


def read_table_dump(
    source: str | Path | TextIO | Iterable[str | bytes],
    strict: bool = False,
    max_malformed_fraction: float | None = 0.5,
) -> DumpReadResult:
    """Parse a bgpdump -m style dump into a :class:`PathDataset`.

    ``strict`` turns malformed lines into :class:`ParseError` (naming
    the 1-based line and offending field) instead of counting and
    skipping them.  The observation-point id is derived from (peer IP,
    peer AS), which is how feeds are identified in practice.

    In lenient mode, a dump whose malformed fraction exceeds
    ``max_malformed_fraction`` raises :class:`DatasetError` carrying the
    skip counters.  Pass ``None`` to disable the guard.  AS_SET skips
    are expected preprocessing and do not count against it.

    A ``str``/``Path`` source is opened in *binary* mode so lines with
    undecodable bytes are quarantined individually (reason
    ``undecodable-bytes``) rather than aborting the read.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_table_dump(handle, strict, max_malformed_fraction)

    report = IngestReport()
    result = DumpReadResult(dataset=PathDataset(), report=report)
    for record in iter_table_dump(source, strict=strict):
        if record.route is not None:
            report.record_accept()
            result.dataset.add(record.route)
        else:
            assert record.rejection is not None
            report.record_reject(record.rejection)
    if not strict:
        check_quality_gate(report, max_malformed_fraction)
    if report.total_quarantined:
        logger.warning(
            "dump read: %d lines, skipped %d malformed, %d AS_SET",
            report.lines,
            result.skipped_malformed,
            result.skipped_as_set,
        )
    return result
