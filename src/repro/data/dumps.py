"""bgpdump-style table dumps.

Datasets round-trip through the one-line-per-entry pipe-separated format
produced by ``bgpdump -m`` on MRT TABLE_DUMP2 files::

    TABLE_DUMP2|<time>|B|<peer_ip>|<peer_as>|<prefix>|<as_path>|<origin>|...

so the pipeline can also ingest real RouteViews/RIPE data when it is
available.  Entries with AS_SET segments are skipped with a warning count,
mirroring the paper's preprocessing.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, TextIO

from repro.errors import DatasetError, ParseError
from repro.net.aspath import ASPath
from repro.net.ip import ip_to_string
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

SNAPSHOT_TIME = 1131867000
"""Sun Nov 13 2005 07:30 UTC — the paper's snapshot instant."""

_RECORD_TYPE = "TABLE_DUMP2"

logger = logging.getLogger(__name__)


def write_table_dump(
    dataset: PathDataset,
    destination: str | Path | TextIO,
    timestamp: int = SNAPSHOT_TIME,
) -> int:
    """Write ``dataset`` in bgpdump -m format; returns the number of lines.

    The peer IP is synthesised from the observation point id so that
    distinct points in the same AS stay distinguishable after a
    round-trip.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            return write_table_dump(dataset, handle, timestamp)
    count = 0
    point_ips = _point_ips(dataset)
    for route in dataset:
        peer_ip = point_ips[route.point_id]
        line = "|".join(
            (
                _RECORD_TYPE,
                str(timestamp),
                "B",
                peer_ip,
                str(route.observer_asn),
                str(route.prefix),
                str(route.path),
                "IGP",
                peer_ip,
                "0",
                "0",
                "",
                "NAG",
                "",
            )
        )
        destination.write(line + "\n")
        count += 1
    return count


def _point_ips(dataset: PathDataset) -> dict[str, str]:
    """Assign a stable synthetic peer IP to every observation point."""
    ips: dict[str, str] = {}
    per_as_counter: dict[int, int] = {}
    for point_id, asn in sorted(dataset.observation_points().items()):
        index = per_as_counter.get(asn, 0) + 1
        per_as_counter[asn] = index
        ips[point_id] = ip_to_string(((asn & 0xFFFF) << 16) | index)
    return ips


@dataclass
class DumpReadResult:
    """A parsed dump plus counters for skipped lines."""

    dataset: PathDataset
    lines: int = 0
    skipped_as_set: int = 0
    skipped_malformed: int = 0


def read_table_dump(
    source: str | Path | TextIO | Iterable[str],
    strict: bool = False,
    max_malformed_fraction: float | None = 0.5,
) -> DumpReadResult:
    """Parse a bgpdump -m style dump into a :class:`PathDataset`.

    ``strict`` turns malformed lines into :class:`ParseError` instead of
    counting and skipping them.  The observation-point id is derived from
    (peer IP, peer AS), which is how feeds are identified in practice.

    In lenient mode, a dump whose malformed fraction exceeds
    ``max_malformed_fraction`` raises :class:`DatasetError` carrying the
    skip counters: a mostly-garbage feed must not silently become a tiny
    (or empty) dataset.  Pass ``None`` to disable the guard.  AS_SET
    skips are expected preprocessing and do not count against it.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return read_table_dump(handle, strict, max_malformed_fraction)

    result = DumpReadResult(dataset=PathDataset())
    for raw_line in source:
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        result.lines += 1
        fields = line.split("|")
        if len(fields) < 7 or fields[0] != _RECORD_TYPE:
            if strict:
                raise ParseError(f"malformed dump line: {line!r}")
            result.skipped_malformed += 1
            continue
        _, _, _, peer_ip, peer_as, prefix_text, path_text = fields[:7]
        try:
            observer_asn = int(peer_as)
            prefix = Prefix(prefix_text)
            path = ASPath.parse(path_text)
        except ParseError:
            if "{" in path_text:
                result.skipped_as_set += 1
                continue
            if strict:
                raise
            result.skipped_malformed += 1
            continue
        if len(path) == 0 or path.head_asn != observer_asn:
            if strict:
                raise ParseError(
                    f"path {path} does not start at peer AS {observer_asn}"
                )
            result.skipped_malformed += 1
            continue
        result.dataset.add(
            ObservedRoute(f"{peer_ip}|{observer_asn}", observer_asn, prefix, path)
        )
    if (
        not strict
        and max_malformed_fraction is not None
        and result.lines
        and result.skipped_malformed / result.lines > max_malformed_fraction
    ):
        raise DatasetError(
            f"dump is mostly garbage: {result.skipped_malformed} of "
            f"{result.lines} lines malformed "
            f"(+{result.skipped_as_set} AS_SET skips) exceeds the "
            f"{max_malformed_fraction:.0%} threshold"
        )
    if result.skipped_malformed or result.skipped_as_set:
        logger.warning(
            "dump read: %d lines, skipped %d malformed, %d AS_SET",
            result.lines, result.skipped_malformed, result.skipped_as_set,
        )
    return result
