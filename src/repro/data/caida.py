"""CAIDA AS-relationship (``as-rel``) files.

The serial-1/serial-2 format is one edge per line::

    # comment lines describe provenance
    <provider-as>|<customer-as>|-1        (provider-to-customer)
    <peer-as>|<peer-as>|0                 (settlement-free peering)
    <as>|<as>|1[|source]                  (sibling, emitted by some tools)

Parsing follows the same hardened contract as the dump reader: one
:class:`~repro.data.dumps.RecordResult`-style outcome per record line,
typed rejection reasons with 1-based positions, no exception on a single
bad record in lenient mode.  The accepted edges build an
:class:`~repro.topology.graph.ASGraph` plus a
:class:`~repro.relationships.types.RelationshipMap`, ready for the
prune-to-connected-core pass and model construction.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.data.quality import (
    BAD_RELATIONSHIP,
    BOGON_ASN,
    MALFORMED_FIELDS,
    SELF_EDGE,
    UNDECODABLE_BYTES,
    IngestReport,
    Rejection,
    is_bogon_asn,
)
from repro.errors import ParseError
from repro.net.asn import MAX_ASN
from repro.relationships.types import Relationship, RelationshipMap
from repro.topology.graph import ASGraph

_LINE_WIDTH = 160

logger = logging.getLogger(__name__)

_RELATIONSHIP_CODES = {
    -1: Relationship.CUSTOMER,  # b is a's customer
    0: Relationship.PEER,
    1: Relationship.SIBLING,
}


@dataclass(frozen=True)
class RelRecord:
    """One accepted as-rel edge: (a, b, relationship of b from a's view)."""

    asn_a: int
    asn_b: int
    relationship: Relationship


@dataclass(frozen=True)
class RelRecordResult:
    """One record line's outcome: an edge or a typed rejection."""

    line_number: int
    record: RelRecord | None = None
    rejection: Rejection | None = None

    @property
    def accepted(self) -> bool:
        """True when the line parsed into an edge."""
        return self.record is not None


def _classify_rel_line(
    line: str, line_number: int, drop_bogons: bool
) -> RelRecordResult:
    """Parse one stripped as-rel record line."""

    def reject(reason: str, detail: str) -> RelRecordResult:
        return RelRecordResult(
            line_number,
            rejection=Rejection(
                reason, line_number, detail=detail, line=line[:_LINE_WIDTH]
            ),
        )

    fields = line.split("|")
    if len(fields) < 3:
        return reject(MALFORMED_FIELDS, f"{len(fields)} fields, need >= 3")
    asns: list[int] = []
    for text in fields[:2]:
        try:
            asn = int(text)
        except ValueError:
            return reject(MALFORMED_FIELDS, f"AS {text!r} is not numeric")
        if not 0 < asn <= MAX_ASN:
            return reject(MALFORMED_FIELDS, f"AS {asn} out of range")
        asns.append(asn)
    asn_a, asn_b = asns
    if asn_a == asn_b:
        return reject(SELF_EDGE, f"AS {asn_a} linked to itself")
    try:
        code = int(fields[2])
    except ValueError:
        return reject(BAD_RELATIONSHIP, f"relationship {fields[2]!r}")
    relationship = _RELATIONSHIP_CODES.get(code)
    if relationship is None:
        return reject(BAD_RELATIONSHIP, f"relationship code {code}")
    if drop_bogons:
        bogon = next((asn for asn in asns if is_bogon_asn(asn)), None)
        if bogon is not None:
            return reject(BOGON_ASN, f"AS {bogon} is reserved/private")
    return RelRecordResult(
        line_number, record=RelRecord(asn_a, asn_b, relationship)
    )


def iter_as_rel(
    lines: Iterable[str | bytes],
    strict: bool = False,
    drop_bogons: bool = True,
    start_line: int = 0,
) -> Iterator[RelRecordResult]:
    """Stream per-record results from CAIDA as-rel lines.

    Same contract as :func:`repro.data.dumps.iter_table_dump`: blank
    lines and ``#`` comments are passed over, bad records are yielded as
    typed rejections (or raise :class:`ParseError` with the 1-based line
    number in strict mode), undecodable bytes quarantine one line.
    """
    line_number = start_line
    for raw in lines:
        line_number += 1
        if isinstance(raw, bytes):
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                if strict:
                    raise ParseError(
                        f"line {line_number}: undecodable bytes: {error}"
                    ) from error
                yield RelRecordResult(
                    line_number,
                    rejection=Rejection(
                        UNDECODABLE_BYTES,
                        line_number,
                        detail=str(error),
                        line=raw.decode(
                            "utf-8", errors="backslashreplace"
                        )[:_LINE_WIDTH],
                    ),
                )
                continue
        else:
            text = raw
        line = text.strip()
        if not line or line.startswith("#"):
            continue
        result = _classify_rel_line(line, line_number, drop_bogons)
        rejection = result.rejection
        if strict and rejection is not None:
            raise ParseError(
                f"line {line_number}: {rejection.reason} "
                f"({rejection.detail}): {line[:_LINE_WIDTH]!r}"
            )
        yield result


@dataclass
class CaidaReadResult:
    """A parsed as-rel file: graph, relationships, and exact accounting."""

    graph: ASGraph = field(default_factory=ASGraph)
    relationships: RelationshipMap = field(default_factory=RelationshipMap)
    report: IngestReport = field(
        default_factory=lambda: IngestReport(format="as-rel")
    )


def read_as_rel(
    source: str | Path | TextIO | Iterable[str | bytes],
    strict: bool = False,
    drop_bogons: bool = True,
    max_malformed_fraction: float | None = 0.5,
) -> CaidaReadResult:
    """Parse a CAIDA as-rel file into a graph + relationship map.

    Duplicate edges keep the first relationship seen (and are counted
    under ``modified["duplicate-edge"]``); a mostly-garbage file raises
    :class:`DatasetError` under the same quality gate as the dump
    reader.  A ``str``/``Path`` source is read as bytes so undecodable
    lines are quarantined individually.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_as_rel(
                handle, strict, drop_bogons, max_malformed_fraction
            )

    result = CaidaReadResult()
    report = result.report
    for outcome in iter_as_rel(source, strict=strict, drop_bogons=drop_bogons):
        if outcome.record is None:
            assert outcome.rejection is not None
            report.record_reject(outcome.rejection)
            continue
        report.record_accept()
        record = outcome.record
        if result.relationships.has(record.asn_a, record.asn_b):
            report.record_modified("duplicate-edge")
            continue
        result.graph.add_edge(record.asn_a, record.asn_b)
        result.relationships.set(
            record.asn_a, record.asn_b, record.relationship
        )
    if not strict:
        from repro.data.dumps import check_quality_gate

        check_quality_gate(report, max_malformed_fraction)
    if report.total_quarantined:
        logger.warning(
            "as-rel read: %d lines, quarantined %d",
            report.lines,
            report.total_quarantined,
        )
    return result
