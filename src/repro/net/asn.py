"""Autonomous-system numbers.

AS numbers are plain ``int`` throughout the library (an alias :data:`ASN`
documents intent).  This module provides parsing/formatting including the
RFC 5396 "asdot" notation for 4-byte AS numbers.
"""

from __future__ import annotations

from repro.errors import ParseError

ASN = int
"""Type alias: AS numbers are plain integers."""

MAX_ASN = 0xFFFFFFFF
AS_TRANS = 23456
"""RFC 4893 placeholder ASN used by 2-byte speakers for 4-byte neighbours."""

PRIVATE_RANGES = ((64512, 65534), (4200000000, 4294967294))
"""Private-use ASN ranges (RFC 6996)."""


def parse_asn(text: str) -> int:
    """Parse an AS number in asplain (``"3356"``) or asdot (``"1.10"``) form."""
    text = text.strip()
    if text.lower().startswith("as"):
        text = text[2:]
    if "." in text:
        high_text, _, low_text = text.partition(".")
        if not (high_text.isdigit() and low_text.isdigit()):
            raise ParseError(f"invalid asdot ASN {text!r}")
        high, low = int(high_text), int(low_text)
        if high > 0xFFFF or low > 0xFFFF:
            raise ParseError(f"invalid asdot ASN {text!r}: component > 65535")
        return (high << 16) | low
    if not text.isdigit():
        raise ParseError(f"invalid ASN {text!r}")
    value = int(text)
    if value > MAX_ASN:
        raise ParseError(f"invalid ASN {text!r}: > 2^32-1")
    return value


def format_asdot(asn: int) -> str:
    """Format ``asn`` in asdot notation (asplain for 2-byte ASNs).

    >>> format_asdot(3356)
    '3356'
    >>> format_asdot(65536 + 10)
    '1.10'
    """
    if not 0 <= asn <= MAX_ASN:
        raise ValueError(f"ASN out of range: {asn}")
    if asn <= 0xFFFF:
        return str(asn)
    return f"{asn >> 16}.{asn & 0xFFFF}"


def is_private_asn(asn: int) -> bool:
    """True if ``asn`` lies in a private-use range."""
    return any(lo <= asn <= hi for lo, hi in PRIVATE_RANGES)
