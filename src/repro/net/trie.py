"""A binary radix trie over IPv4 prefixes with longest-prefix match.

This is the lookup structure of a forwarding table: routes are stored per
prefix and a destination address (or more-specific prefix) resolves to the
longest covering prefix.  The BGP engine itself works per prefix and does
not need it, but the data-plane layer and dump tooling do — e.g. mapping
an arbitrary address onto the canonical /24 it belongs to, or checking
covering relationships between real-world prefixes.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from repro.net.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "value", "has_value")

    def __init__(self):
        self.zero: "_Node[V] | None" = None
        self.one: "_Node[V] | None" = None
        self.value: V | None = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Map from :class:`Prefix` to values with longest-prefix-match lookup."""

    def __init__(self):
        self._root: _Node[V] = _Node()
        self._size = 0

    @classmethod
    def from_items(cls, items: "Iterable[tuple[Prefix, V]]") -> "PrefixTrie[V]":
        """Build a trie from (prefix, value) pairs (later pairs win).

        The bulk constructor the serving layer uses to materialise a
        longest-prefix-match table from an artifact's prefix list.
        """
        trie: "PrefixTrie[V]" = cls()
        for prefix, value in items:
            trie.insert(prefix, value)
        return trie

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._walk(prefix)
        return node is not None and node.has_value

    def insert(self, prefix: Prefix, value: V) -> None:
        """Store ``value`` under ``prefix`` (replacing any existing value)."""
        node = self._root
        for bit in _bits(prefix):
            if bit:
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: Prefix, default: V | None = None) -> V | None:
        """Exact-match lookup."""
        node = self._walk(prefix)
        if node is not None and node.has_value:
            return node.value
        return default

    def remove(self, prefix: Prefix) -> bool:
        """Remove the exact entry for ``prefix``; True if it existed.

        Nodes are not physically pruned — tries in this library are
        rebuilt, not churned, so simplicity wins over reclaiming a few
        nodes.
        """
        node = self._walk(prefix)
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True

    def longest_match(self, target: Prefix | int) -> tuple[Prefix, V] | None:
        """The most-specific stored prefix covering ``target``.

        ``target`` may be a prefix (matched if the stored prefix contains
        it) or a bare 32-bit address.
        """
        if isinstance(target, Prefix):
            address, max_length = target.network, target.length
        else:
            address, max_length = target, 32
        node = self._root
        best: tuple[Prefix, V] | None = None
        length = 0
        if node.has_value:
            best = (Prefix(0, 0), node.value)
        while length < max_length:
            bit = (address >> (31 - length)) & 1
            node = node.one if bit else node.zero
            if node is None:
                break
            length += 1
            if node.has_value:
                best = (Prefix(address, length), node.value)
        return best

    def covering(self, target: Prefix | int) -> Iterator[tuple[Prefix, V]]:
        """All stored prefixes covering ``target``, shortest first."""
        if isinstance(target, Prefix):
            address, max_length = target.network, target.length
        else:
            address, max_length = target, 32
        node = self._root
        length = 0
        if node.has_value:
            yield (Prefix(0, 0), node.value)
        while length < max_length:
            bit = (address >> (31 - length)) & 1
            node = node.one if bit else node.zero
            if node is None:
                return
            length += 1
            if node.has_value:
                yield (Prefix(address, length), node.value)

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """All (prefix, value) entries in lexicographic prefix order."""
        stack: list[tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield (Prefix(network, length), node.value)
            # push 'one' first so 'zero' (smaller networks) pops first
            if node.one is not None:
                stack.append(
                    (node.one, network | (1 << (31 - length)), length + 1)
                )
            if node.zero is not None:
                stack.append((node.zero, network, length + 1))

    def _walk(self, prefix: Prefix) -> "_Node[V] | None":
        node = self._root
        for bit in _bits(prefix):
            node = node.one if bit else node.zero
            if node is None:
                return None
        return node


def _bits(prefix: Prefix) -> Iterator[int]:
    """The prefix's significant bits, most significant first."""
    network = prefix.network
    for position in range(prefix.length):
        yield (network >> (31 - position)) & 1
