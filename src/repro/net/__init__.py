"""Network-layer primitives: IPv4 addresses, prefixes, AS numbers, AS-paths.

These types are deliberately small and fast.  They are used in the inner
loops of the BGP propagation engine, so addresses and prefixes are plain
integers wrapped in value classes, and AS-paths are tuples of ``int``.
"""

from repro.net.ip import IPv4Address, ip_from_string, ip_to_string
from repro.net.prefix import Prefix
from repro.net.asn import ASN, format_asdot, parse_asn
from repro.net.aspath import ASPath
from repro.net.community import Community, parse_community

__all__ = [
    "IPv4Address",
    "ip_from_string",
    "ip_to_string",
    "Prefix",
    "ASN",
    "format_asdot",
    "parse_asn",
    "ASPath",
    "Community",
    "parse_community",
]
