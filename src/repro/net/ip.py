"""IPv4 address handling.

Addresses are represented as unsigned 32-bit integers.  The
:class:`IPv4Address` wrapper provides formatting and ordering; the
module-level helpers work directly on integers for hot paths.
"""

from __future__ import annotations

from functools import total_ordering

from repro.errors import ParseError

MAX_IPV4 = 0xFFFFFFFF


def ip_from_string(text: str) -> int:
    """Parse dotted-quad ``text`` into an unsigned 32-bit integer.

    >>> ip_from_string("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ParseError(f"invalid IPv4 address {text!r}: expected 4 octets")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ParseError(f"invalid IPv4 address {text!r}: octet {part!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ParseError(f"invalid IPv4 address {text!r}: octet {part!r}")
        value = (value << 8) | octet
    return value


def ip_to_string(value: int) -> str:
    """Format unsigned 32-bit integer ``value`` as a dotted quad.

    >>> ip_to_string(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


@total_ordering
class IPv4Address:
    """An immutable IPv4 address.

    Supports ordering (by numeric value), hashing, and conversion to/from
    dotted-quad strings.
    """

    __slots__ = ("_value",)

    def __init__(self, value: int | str):
        if isinstance(value, str):
            value = ip_from_string(value)
        if not 0 <= value <= MAX_IPV4:
            raise ValueError(f"IPv4 address out of range: {value}")
        self._value = value

    @property
    def value(self) -> int:
        """The address as an unsigned 32-bit integer."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return ip_to_string(self._value)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "IPv4Address | int") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        if isinstance(other, int):
            return self._value < other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)
