"""IPv4 prefixes (CIDR blocks).

A :class:`Prefix` is an immutable (network, length) pair.  Prefixes are the
unit of BGP routing: every route, RIB entry and policy clause in this
library is keyed by a prefix.  The representation is canonical — host bits
below the mask are forced to zero — so prefixes can be compared and hashed
directly.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

from repro.errors import ParseError
from repro.net.ip import MAX_IPV4, ip_from_string, ip_to_string


def _mask(length: int) -> int:
    """Return the network mask for a prefix of ``length`` bits."""
    if length == 0:
        return 0
    return (MAX_IPV4 << (32 - length)) & MAX_IPV4


@total_ordering
class Prefix:
    """An immutable IPv4 CIDR prefix such as ``10.1.0.0/16``.

    Prefixes order first by network address, then by length (shorter, i.e.
    less specific, first), matching the conventional RIB ordering.
    """

    __slots__ = ("_network", "_length", "_hash")

    def __init__(self, network: int | str, length: int | None = None):
        if isinstance(network, str):
            if length is not None:
                raise TypeError("length must not be given when parsing a string")
            network, length = _parse_cidr(network)
        if length is None:
            raise TypeError("length required when network is an int")
        if not 0 <= length <= 32:
            raise ParseError(f"invalid prefix length {length}")
        if not 0 <= network <= MAX_IPV4:
            raise ParseError(f"invalid network address {network}")
        self._length = length
        self._network = network & _mask(length)
        self._hash = hash((self._network, self._length))

    @property
    def network(self) -> int:
        """Network address as an unsigned 32-bit integer (host bits zero)."""
        return self._network

    @property
    def length(self) -> int:
        """Prefix length in bits (0-32)."""
        return self._length

    @property
    def netmask(self) -> int:
        """The network mask as an unsigned 32-bit integer."""
        return _mask(self._length)

    def contains(self, other: "Prefix | int") -> bool:
        """True if ``other`` (a prefix or a host address) lies inside this prefix."""
        if isinstance(other, Prefix):
            if other._length < self._length:
                return False
            return (other._network & self.netmask) == self._network
        return (other & self.netmask) == self._network

    def supernet(self, new_length: int | None = None) -> "Prefix":
        """Return the enclosing prefix of ``new_length`` (default: one bit shorter)."""
        if new_length is None:
            new_length = self._length - 1
        if not 0 <= new_length <= self._length:
            raise ValueError(f"invalid supernet length {new_length} for /{self._length}")
        return Prefix(self._network, new_length)

    def subnets(self) -> Iterator["Prefix"]:
        """Yield the two half-size subnets of this prefix."""
        if self._length >= 32:
            raise ValueError("cannot subdivide a /32")
        child_len = self._length + 1
        yield Prefix(self._network, child_len)
        yield Prefix(self._network | (1 << (32 - child_len)), child_len)

    def __str__(self) -> str:
        return f"{ip_to_string(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self._network == other._network and self._length == other._length
        return NotImplemented

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __hash__(self) -> int:
        return self._hash


def _parse_cidr(text: str) -> tuple[int, int]:
    """Parse ``"a.b.c.d/len"`` into a (network, length) pair."""
    text = text.strip()
    if "/" not in text:
        raise ParseError(f"invalid prefix {text!r}: missing '/length'")
    addr_text, _, len_text = text.partition("/")
    if not len_text.isdigit():
        raise ParseError(f"invalid prefix {text!r}: bad length {len_text!r}")
    length = int(len_text)
    if length > 32:
        raise ParseError(f"invalid prefix {text!r}: length {length} > 32")
    return ip_from_string(addr_text), length


def prefix_for_asn(asn: int, index: int = 0) -> Prefix:
    """Return the canonical synthetic prefix originated by ``asn``.

    The synthetic Internet originates one or more prefixes per AS.  To make
    dumps human-readable the prefix encodes the AS number in the first two
    octets and the per-AS index in the third: AS 3356's first prefix is
    ``13.28.0.0/24``-style (3356 = 0x0D1C -> 13.28).
    """
    if not 0 < asn <= 0xFFFF:
        raise ValueError(f"ASN out of encodable range: {asn}")
    if not 0 <= index <= 0xFF:
        raise ValueError(f"prefix index out of range: {index}")
    return Prefix((asn << 16) | (index << 8), 24)
