"""BGP communities (RFC 1997).

A community is a 32-bit tag conventionally written ``"asn:value"``.  The
synthetic ground truth uses communities for selective-announcement
policies (e.g. "do not export to peer X"), one of the non-standard policy
classes the paper's agnostic model is designed to absorb.
"""

from __future__ import annotations

from functools import total_ordering

from repro.errors import ParseError

NO_EXPORT = 0xFFFFFF01
NO_ADVERTISE = 0xFFFFFF02
NO_EXPORT_SUBCONFED = 0xFFFFFF03

WELL_KNOWN = {
    NO_EXPORT: "no-export",
    NO_ADVERTISE: "no-advertise",
    NO_EXPORT_SUBCONFED: "no-export-subconfed",
}


@total_ordering
class Community:
    """An immutable 32-bit BGP community value."""

    __slots__ = ("_value",)

    def __init__(self, value: int | str, low: int | None = None):
        if isinstance(value, str):
            if low is not None:
                raise TypeError("low must not be given when parsing a string")
            value = parse_community(value)._value
        elif low is not None:
            if not (0 <= value <= 0xFFFF and 0 <= low <= 0xFFFF):
                raise ValueError(f"community components out of range: {value}:{low}")
            value = (value << 16) | low
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"community out of range: {value}")
        self._value = value

    @property
    def value(self) -> int:
        """The raw 32-bit value."""
        return self._value

    @property
    def high(self) -> int:
        """The high 16 bits (conventionally the tagging AS)."""
        return self._value >> 16

    @property
    def low(self) -> int:
        """The low 16 bits (the AS-local meaning)."""
        return self._value & 0xFFFF

    def __str__(self) -> str:
        if self._value in WELL_KNOWN:
            return WELL_KNOWN[self._value]
        return f"{self.high}:{self.low}"

    def __repr__(self) -> str:
        return f"Community({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Community):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "Community | int") -> bool:
        other_value = other._value if isinstance(other, Community) else other
        return self._value < other_value

    def __hash__(self) -> int:
        return hash(self._value)


def parse_community(text: str) -> Community:
    """Parse ``"asn:value"``, a bare integer, or a well-known name."""
    text = text.strip()
    for value, name in WELL_KNOWN.items():
        if text == name:
            return Community(value)
    if ":" in text:
        high_text, _, low_text = text.partition(":")
        if not (high_text.isdigit() and low_text.isdigit()):
            raise ParseError(f"invalid community {text!r}")
        high, low = int(high_text), int(low_text)
        if high > 0xFFFF or low > 0xFFFF:
            raise ParseError(f"invalid community {text!r}: component > 65535")
        return Community(high, low)
    if not text.isdigit():
        raise ParseError(f"invalid community {text!r}")
    return Community(int(text))
