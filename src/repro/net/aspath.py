"""AS-paths.

Inside the BGP engine AS-paths are plain ``tuple[int, ...]`` (first element
is the most recent AS, last is the origin).  :class:`ASPath` wraps such a
tuple with the dataset-level operations the paper needs: parsing from dump
text, removal of AS-path prepending (Section 3.1, footnote 1), loop
detection, and suffix extraction for the refinement walk (Section 4.6).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import ParseError
from repro.net.asn import parse_asn


class ASPath:
    """An immutable AS-path; element 0 is nearest the observer, -1 the origin."""

    __slots__ = ("_asns",)

    def __init__(self, asns: Sequence[int]):
        self._asns = tuple(int(a) for a in asns)

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a whitespace- or dash-separated AS-path string.

        AS_SET members (``{64512,64513}``, produced by aggregation) are not
        supported and raise :class:`ParseError`; the paper's dataset drops
        aggregated routes.
        """
        text = text.strip()
        if "{" in text or "}" in text:
            raise ParseError(f"AS_SET segments are not supported: {text!r}")
        if not text:
            return cls(())
        tokens = text.replace("-", " ").split()
        return cls(tuple(parse_asn(token) for token in tokens))

    @property
    def asns(self) -> tuple[int, ...]:
        """The path as a tuple of AS numbers."""
        return self._asns

    @property
    def origin_asn(self) -> int:
        """The AS that originated the route (last path element)."""
        if not self._asns:
            raise ValueError("empty AS-path has no origin")
        return self._asns[-1]

    @property
    def head_asn(self) -> int:
        """The AS nearest the observer (first path element)."""
        if not self._asns:
            raise ValueError("empty AS-path has no head")
        return self._asns[0]

    def without_prepending(self) -> "ASPath":
        """Collapse consecutive duplicate ASNs (undo AS-path prepending).

        >>> ASPath.parse("1 2 2 2 3").without_prepending()
        ASPath('1 2 3')
        """
        collapsed: list[int] = []
        for asn in self._asns:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return ASPath(collapsed)

    def has_loop(self) -> bool:
        """True if some AS appears twice non-consecutively (a routing loop).

        Consecutive duplicates are prepending, not loops, and do not count.
        """
        deduped = self.without_prepending()
        return len(set(deduped._asns)) != len(deduped._asns)

    def suffix_from(self, asn: int) -> "ASPath":
        """Return the sub-path from the first occurrence of ``asn`` to the origin.

        This is the route as seen *at* ``asn`` (Section 4.6 walks these
        suffixes from the origin towards the observation point).
        """
        try:
            index = self._asns.index(asn)
        except ValueError:
            raise ValueError(f"AS {asn} not on path {self}") from None
        return ASPath(self._asns[index:])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield the AS adjacencies (a, b) along the path, observer-side first."""
        for left, right in zip(self._asns, self._asns[1:]):
            if left != right:
                yield (left, right)

    def prepended_by(self, asn: int) -> "ASPath":
        """Return a new path with ``asn`` prepended (as an eBGP export does)."""
        return ASPath((asn,) + self._asns)

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self._asns)

    def __contains__(self, asn: object) -> bool:
        return asn in self._asns

    def __getitem__(self, index):
        result = self._asns[index]
        if isinstance(index, slice):
            return ASPath(result)
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ASPath):
            return self._asns == other._asns
        if isinstance(other, tuple):
            return self._asns == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._asns)

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self._asns)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"


def clean_paths(paths: Sequence[ASPath]) -> list[ASPath]:
    """Remove prepending from every path and drop paths containing loops.

    Mirrors the dataset preparation of Section 3.1: "We removed AS-path
    prepending" and "Removing ... AS-paths with loops".
    """
    cleaned = []
    for path in paths:
        deduped = path.without_prepending()
        if not deduped.has_loop() and len(deduped) > 0:
            cleaned.append(deduped)
    return cleaned
