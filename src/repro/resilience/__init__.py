"""Resilient simulation runtime: faults, retries, checkpoints, health.

The subsystem that keeps long refine/re-simulate runs (the Figure 6 loop
over C-BGP-scale simulations) alive in the presence of policy-induced
divergence, noisy dumps, and crashes:

* :mod:`repro.resilience.faults` — deterministic fault injection
  (dispute wheels, dump corruption, session flaps, budget exhaustion);
* :mod:`repro.resilience.retry` — escalating-budget retry that classifies
  prefixes as transient vs. diverged and quarantines the latter;
* :mod:`repro.resilience.checkpoint` — atomic checkpoint/resume for the
  refiner, reusing the C-BGP config persistence;
* :mod:`repro.resilience.health` — the structured :class:`RunHealth`
  report and the CLI exit-code vocabulary.
"""

from repro.resilience.faults import (
    FaultConfig,
    FaultReport,
    apply_faults,
    corrupt_dump_lines,
    find_wheel_candidates,
    inject_dispute_wheel,
)
from repro.resilience.retry import (
    CONVERGED,
    DIVERGED,
    TRANSIENT,
    PrefixOutcome,
    ResilienceStats,
    RetryPolicy,
    simulate_network_with_retry,
    simulate_prefix_with_retry,
)
from repro.resilience.health import (
    EXIT_DATA,
    EXIT_DIVERGED,
    EXIT_OK,
    EXIT_UNCONVERGED,
    EXIT_USAGE,
    RunHealth,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    INGEST_CHECKPOINT_FORMAT,
    IngestCheckpoint,
    RefinerCheckpoint,
    ingest_fingerprint,
    load_checkpoint,
    load_ingest_checkpoint,
    save_checkpoint,
    save_ingest_checkpoint,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "INGEST_CHECKPOINT_FORMAT",
    "IngestCheckpoint",
    "ingest_fingerprint",
    "load_ingest_checkpoint",
    "save_ingest_checkpoint",
    "CONVERGED",
    "DIVERGED",
    "EXIT_DATA",
    "EXIT_DIVERGED",
    "EXIT_OK",
    "EXIT_UNCONVERGED",
    "EXIT_USAGE",
    "FaultConfig",
    "FaultReport",
    "PrefixOutcome",
    "RefinerCheckpoint",
    "ResilienceStats",
    "RetryPolicy",
    "RunHealth",
    "TRANSIENT",
    "apply_faults",
    "corrupt_dump_lines",
    "find_wheel_candidates",
    "inject_dispute_wheel",
    "load_checkpoint",
    "save_checkpoint",
    "simulate_network_with_retry",
    "simulate_prefix_with_retry",
]
