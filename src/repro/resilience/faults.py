"""Deterministic fault injection for networks and dump streams.

The harness makes the failure modes the runtime must survive reproducible
on demand:

* **dispute wheels** — local-pref cycles (the classic "bad gadget") that
  make BGP diverge for a prefix, mirroring the policy-induced divergence
  real relationship inference produces;
* **dump corruption** — garbled and truncated ``bgpdump -m`` lines, the
  noise real RouteViews/RIPE feeds contain;
* **session flaps** — eBGP peerings torn down before simulation;
* **message-budget exhaustion** — an artificially tiny per-prefix budget
  that forces :class:`~repro.errors.ConvergenceError` on healthy prefixes
  (which retries must then classify as *transient*).

Everything is driven by a seeded :class:`random.Random`, so a
``FaultConfig`` fully determines the injected workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.network import Network
from repro.bgp.policy import Clause, Match
from repro.errors import TopologyError
from repro.net.prefix import Prefix

WHEEL_TAG = "fault-wheel"
"""Route-map clause tag marking injected dispute-wheel policies."""

WHEEL_LOCAL_PREF = 200
"""Local-pref installed on wheel sessions (beats the default of 100)."""


@dataclass(frozen=True)
class FaultConfig:
    """A fully-determined fault workload."""

    seed: int = 0
    dispute_wheels: int = 0
    corrupt_line_fraction: float = 0.0
    truncate_line_fraction: float = 0.0
    session_flaps: int = 0
    message_budget: int | None = None
    worker_crash_prefixes: int = 0
    """Prefixes whose supervised-pool task kills its worker outright
    (``os._exit``), exercising crash resubmission and poison quarantine.
    Only meaningful for parallel runs."""
    worker_hang_prefixes: int = 0
    """Prefixes whose supervised-pool task hangs until the per-task
    watchdog fires.  Only meaningful for parallel runs."""


@dataclass
class FaultReport:
    """What was actually injected (for the RunHealth report)."""

    wheels: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)
    flapped: list[tuple[int, int]] = field(default_factory=list)
    corrupted_lines: int = 0
    truncated_lines: int = 0
    message_budget: int | None = None
    worker_crash: list[str] = field(default_factory=list)
    worker_hang: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serialisable summary."""
        return {
            "dispute_wheels": [
                {"prefix": prefix, "ases": list(ases)} for prefix, ases in self.wheels
            ],
            "flapped_sessions": [list(pair) for pair in self.flapped],
            "corrupted_lines": self.corrupted_lines,
            "truncated_lines": self.truncated_lines,
            "message_budget": self.message_budget,
            "worker_crash_prefixes": sorted(self.worker_crash),
            "worker_hang_prefixes": sorted(self.worker_hang),
        }


def inject_dispute_wheel(
    network: Network, prefix: Prefix, wheel_asns: tuple[int, ...]
) -> None:
    """Install a local-pref dispute wheel for ``prefix`` among ``wheel_asns``.

    Each AS in the cycle prefers any route for ``prefix`` announced by the
    next AS in the cycle over everything else (local-pref 200 import
    clauses on every session from the next AS), the textbook "bad gadget"
    that has no stable solution for odd cycles.  The same sessions get a
    force-permit export clause for the prefix, so relationship policies
    (valley-free export filters) cannot keep the wheel routes from
    circulating.  Every consecutive pair must be connected by at least
    one eBGP session.
    """
    if len(wheel_asns) < 3:
        raise TopologyError(f"a dispute wheel needs >= 3 ASes, got {wheel_asns}")
    for position, asn in enumerate(wheel_asns):
        next_asn = wheel_asns[(position + 1) % len(wheel_asns)]
        installed = 0
        for router in network.as_routers(asn):
            for session in router.sessions_in:
                if session.is_ebgp and session.src.asn == next_asn:
                    # Prepended so the wheel clauses shadow any existing
                    # relationship-policy clause for this prefix.
                    session.ensure_import_map().prepend(
                        Clause(
                            Match(prefix=prefix),
                            set_local_pref=WHEEL_LOCAL_PREF,
                            tag=WHEEL_TAG,
                        )
                    )
                    session.ensure_export_map().prepend(
                        Clause(Match(prefix=prefix), tag=WHEEL_TAG)
                    )
                    installed += 1
        if not installed:
            raise TopologyError(
                f"no eBGP session from AS{next_asn} into AS{asn}: "
                "cannot close the dispute wheel"
            )


def find_wheel_candidates(network: Network, limit: int | None = None) -> list[tuple[int, int, int]]:
    """AS triangles (sorted 3-cycles of the eBGP adjacency) usable as wheels."""
    neighbors: dict[int, set[int]] = {}
    for a, b in network.as_adjacencies():
        neighbors.setdefault(a, set()).add(b)
        neighbors.setdefault(b, set()).add(a)
    triangles: list[tuple[int, int, int]] = []
    for a in sorted(neighbors):
        for b in sorted(n for n in neighbors[a] if n > a):
            for c in sorted(n for n in neighbors[a] & neighbors[b] if n > b):
                triangles.append((a, b, c))
                if limit is not None and len(triangles) >= limit:
                    return triangles
    return triangles


def inject_dispute_wheels(
    network: Network, config: FaultConfig, report: FaultReport, rng: random.Random
) -> None:
    """Sabotage ``config.dispute_wheels`` prefixes with local-pref wheels.

    Each wheel is an AS triangle that does not originate the chosen
    prefix, so the wheel oscillates over routes learned from elsewhere.
    """
    if config.dispute_wheels <= 0:
        return
    triangles = find_wheel_candidates(network)
    prefixes = network.prefixes()
    if not triangles or not prefixes:
        return
    chosen_prefixes = rng.sample(prefixes, min(config.dispute_wheels, len(prefixes)))
    for prefix in chosen_prefixes:
        origin_asns = {
            network.routers[router_id].asn for router_id in network.originators(prefix)
        }
        usable = [t for t in triangles if not origin_asns & set(t)]
        if not usable:
            continue
        wheel = rng.choice(usable)
        inject_dispute_wheel(network, prefix, wheel)
        report.wheels.append((str(prefix), wheel))


def flap_sessions(
    network: Network, count: int, report: FaultReport, rng: random.Random
) -> None:
    """Tear down ``count`` eBGP peerings (both directions), recording the pairs."""
    if count <= 0:
        return
    peerings = sorted(
        {
            (min(s.src.router_id, s.dst.router_id), max(s.src.router_id, s.dst.router_id))
            for s in network.ebgp_sessions()
        }
    )
    for id_a, id_b in rng.sample(peerings, min(count, len(peerings))):
        a, b = network.routers[id_a], network.routers[id_b]
        network.disconnect(a, b)
        report.flapped.append((a.asn, b.asn))


def select_worker_fault_prefixes(
    network: Network, config: FaultConfig, report: FaultReport, rng: random.Random
) -> None:
    """Pick the prefixes whose supervised-pool task will crash or hang.

    Wheel prefixes are excluded — a prefix that both diverges and kills
    its worker would make the expected classification ambiguous.  The
    selection only *names* prefixes (in the report); the actual sabotage
    happens inside the workers via
    :class:`repro.parallel.protocol.WorkerFaults`.
    """
    wanted = config.worker_crash_prefixes + config.worker_hang_prefixes
    if wanted <= 0:
        return
    wheel_prefixes = {prefix for prefix, _ in report.wheels}
    candidates = [p for p in network.prefixes() if str(p) not in wheel_prefixes]
    chosen = rng.sample(candidates, min(wanted, len(candidates)))
    crash = chosen[: config.worker_crash_prefixes]
    hang = chosen[config.worker_crash_prefixes :]
    report.worker_crash.extend(str(p) for p in crash)
    report.worker_hang.extend(str(p) for p in hang)


def apply_faults(network: Network, config: FaultConfig) -> FaultReport:
    """Apply all network-level faults of ``config``; returns what was injected."""
    rng = random.Random(config.seed)
    report = FaultReport(message_budget=config.message_budget)
    flap_sessions(network, config.session_flaps, report, rng)
    inject_dispute_wheels(network, config, report, rng)
    select_worker_fault_prefixes(network, config, report, rng)
    return report


def corrupt_dump_lines(
    lines: list[str], config: FaultConfig, report: FaultReport
) -> list[str]:
    """Deterministically garble/truncate a fraction of dump lines.

    Corruption replaces the AS-path field with garbage or smashes the
    field separators; truncation cuts the line in half.  Both produce
    lines the lenient parser counts as ``skipped_malformed``.
    """
    rng = random.Random(config.seed + 1)
    out: list[str] = []
    for line in lines:
        roll = rng.random()
        if roll < config.truncate_line_fraction:
            out.append(line[: max(1, len(line) // 2)])
            report.truncated_lines += 1
        elif roll < config.truncate_line_fraction + config.corrupt_line_fraction:
            fields = line.split("|")
            if len(fields) >= 7:
                fields[6] = "not an as path"
                out.append("|".join(fields))
            else:
                out.append(line.replace("|", " "))
            report.corrupted_lines += 1
        else:
            out.append(line)
    return out


def corrupt_artifact_payload(path, seed: int = 0) -> int:
    """Flip bytes inside a prediction artifact's compressed payload.

    The header line is left intact, so a reader gets past the magic and
    schema checks and fails loudly at the payload checksum — exactly the
    bit-rot (or torn copy) the serve-path chaos campaign injects between
    a compile and a hot reload.  Returns how many bytes were flipped.
    Deterministic in ``seed``.
    """
    from pathlib import Path

    blob = bytearray(Path(path).read_bytes())
    newline = blob.find(b"\n", blob.find(b"\n") + 1)  # end of header line
    payload_start = newline + 1
    if newline < 0 or payload_start >= len(blob):
        raise TopologyError(f"{path} is too short to be an artifact")
    rng = random.Random(seed)
    flips = max(1, (len(blob) - payload_start) // 64)
    for _ in range(flips):
        index = rng.randrange(payload_start, len(blob))
        blob[index] ^= 0xFF
    Path(path).write_bytes(bytes(blob))
    return flips
