"""Retry with escalating message budgets, and divergence quarantine.

A :class:`~repro.errors.ConvergenceError` does not always mean a dispute
wheel: large topologies can simply outgrow the default budget.  The retry
loop distinguishes the two deterministically — re-simulate with a
geometrically growing ``max_messages`` until the prefix converges
(*transient*: the budget was too small) or the cap / attempt limit /
per-prefix wall-clock deadline is hit (*diverged*: quarantined, its
partial routing state cleared).

Because each attempt is itself bounded by its budget, the deadline can
never be overshot by more than one attempt: there is no way to hang.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.bgp.decision import DecisionConfig
from repro.bgp.engine import EngineStats, default_message_budget, simulate_prefix
from repro.bgp.network import Network
from repro.errors import ConvergenceError
from repro.net.prefix import Prefix
from repro.obs.metrics import get_registry
from repro.obs.trace import EVENT_QUARANTINE, EVENT_RETRY, get_tracer

logger = logging.getLogger(__name__)

CONVERGED = "converged"
TRANSIENT = "transient"
DIVERGED = "diverged"
UNSAFE = "unsafe"
"""Quarantined by the static lint gate *before* any simulation attempt."""

POISON = "poison"
"""A supervised worker crashed (or lost its heartbeat) on this prefix on
every dispatch, exhausting ``max_resubmits`` — the input is classified as
poisonous and quarantined so a killed worker degrades one prefix, never
the run (see :mod:`repro.parallel`)."""

TIMEOUT = "timeout"
"""Every supervised dispatch of this prefix exceeded the per-task
wall-clock watchdog; the prefix is quarantined as a hang."""

QUARANTINED_STATUSES = (DIVERGED, UNSAFE, POISON, TIMEOUT)
"""Statuses whose prefixes carry no routes in the final model."""

MAX_BUDGET = 50_000_000
"""Absolute ceiling on any per-attempt message budget.

``RetryPolicy.budget_cap`` is the *configured* cap, but a caller can set
it arbitrarily high (or a bug could), and repeated geometric doubling
would then escalate past any budget a single attempt can usefully spend.
``first_budget``/``next_budget`` clamp to ``min(budget_cap, MAX_BUDGET)``
so escalation always plateaus at a documented, sane ceiling."""


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before quarantining a prefix.

    ``initial_budget`` of ``None`` uses the engine's session-scaled
    default; each retry multiplies the budget by ``budget_growth`` up to
    ``budget_cap``.  ``deadline_seconds`` bounds the total wall clock
    spent on one prefix across attempts (checked between attempts — each
    attempt is already bounded by its message budget).
    """

    max_attempts: int = 3
    budget_growth: float = 4.0
    initial_budget: int | None = None
    budget_cap: int = 2_000_000
    deadline_seconds: float | None = 30.0

    @property
    def effective_cap(self) -> int:
        """The cap escalation actually honours: ``budget_cap`` clamped to
        the module-wide :data:`MAX_BUDGET` ceiling."""
        return min(self.budget_cap, MAX_BUDGET)

    def first_budget(self, network: Network) -> int:
        """The budget of attempt 1 for ``network``."""
        budget = self.initial_budget
        if budget is None:
            budget = default_message_budget(network)
        return min(budget, self.effective_cap)

    def next_budget(self, budget: int) -> int:
        """The escalated budget following ``budget``, clamped to the cap."""
        return min(
            self.effective_cap, max(budget + 1, int(budget * self.budget_growth))
        )


@dataclass
class PrefixOutcome:
    """Classification of one prefix's simulation under a retry policy."""

    prefix: Prefix
    status: str
    attempts: int
    messages: int
    final_budget: int
    elapsed: float
    resubmits: int = 0
    """Times the parallel supervisor re-dispatched the prefix after a
    worker crash or watchdog kill (always 0 on the sequential path)."""

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "prefix": str(self.prefix),
            "status": self.status,
            "attempts": self.attempts,
            "messages": self.messages,
            "final_budget": self.final_budget,
            "elapsed_seconds": round(self.elapsed, 6),
            "resubmits": self.resubmits,
        }

    @classmethod
    def gated(cls, prefix: Prefix) -> "PrefixOutcome":
        """An outcome for a prefix the lint gate quarantined: zero attempts,
        zero messages — no simulation budget was spent at all."""
        return cls(prefix, UNSAFE, attempts=0, messages=0, final_budget=0, elapsed=0.0)

    @classmethod
    def supervised_failure(
        cls, prefix: Prefix, status: str, resubmits: int, elapsed: float
    ) -> "PrefixOutcome":
        """An outcome for a prefix the parallel supervisor gave up on.

        ``attempts`` counts dispatches (initial + resubmits); no messages
        or budget are attributed because the workers never reported back.
        """
        return cls(
            prefix,
            status,
            attempts=resubmits + 1,
            messages=0,
            final_budget=0,
            elapsed=elapsed,
            resubmits=resubmits,
        )


@dataclass
class ResilienceStats:
    """Engine counters plus per-prefix retry outcomes."""

    engine: EngineStats = field(default_factory=EngineStats)
    outcomes: list[PrefixOutcome] = field(default_factory=list)
    supervision: dict | None = None
    """Worker-supervision counters (spawns, crashes, timeouts, resubmits)
    attached by :mod:`repro.parallel`; None for sequential runs."""

    def _with_status(self, status: str) -> list[Prefix]:
        """Prefixes with ``status``, in sorted order (report-stable)."""
        return sorted(o.prefix for o in self.outcomes if o.status == status)

    @property
    def transient(self) -> list[Prefix]:
        """Prefixes that converged only after a budget escalation."""
        return self._with_status(TRANSIENT)

    @property
    def diverged(self) -> list[Prefix]:
        """Prefixes quarantined after exhausting the retry policy."""
        return self._with_status(DIVERGED)

    @property
    def unsafe(self) -> list[Prefix]:
        """Prefixes the static lint gate quarantined without simulating."""
        return self._with_status(UNSAFE)

    @property
    def poison(self) -> list[Prefix]:
        """Prefixes that repeatedly crashed their supervised worker."""
        return self._with_status(POISON)

    @property
    def timed_out(self) -> list[Prefix]:
        """Prefixes whose every supervised dispatch hit the task watchdog."""
        return self._with_status(TIMEOUT)

    @property
    def retries(self) -> int:
        """Total extra attempts across all prefixes."""
        return sum(max(0, o.attempts - 1) for o in self.outcomes)

    @property
    def attempts(self) -> int:
        """Total simulation attempts across all prefixes (gated ones cost 0)."""
        return sum(o.attempts for o in self.outcomes)

    @property
    def resubmits(self) -> int:
        """Total supervised re-dispatches across all prefixes."""
        return sum(o.resubmits for o in self.outcomes)

    def to_dict(self) -> dict:
        """JSON-serialisable summary for the RunHealth report.

        Every prefix list (and the per-outcome detail) is sorted by
        prefix, so health reports and checkpoints diff cleanly across
        runs regardless of completion order.
        """
        return {
            "prefixes": len(self.outcomes),
            "messages": self.engine.messages,
            "budget_exhaustions": self.engine.budget_exhaustions,
            "attempts": self.attempts,
            "retries": self.retries,
            "resubmits": self.resubmits,
            "converged": sum(1 for o in self.outcomes if o.status == CONVERGED),
            "transient": [str(p) for p in self.transient],
            "diverged": [str(p) for p in self.diverged],
            "unsafe": [str(p) for p in self.unsafe],
            "poison": [str(p) for p in self.poison],
            "timeout": [str(p) for p in self.timed_out],
            "outcomes": [
                o.to_dict()
                for o in sorted(
                    (o for o in self.outcomes if o.status != CONVERGED),
                    key=lambda o: (o.prefix, o.status),
                )
            ],
            "supervision": self.supervision,
        }


def simulate_prefix_with_retry(
    network: Network,
    prefix: Prefix,
    config: DecisionConfig = DecisionConfig(),
    policy: RetryPolicy = RetryPolicy(),
) -> tuple[EngineStats, PrefixOutcome]:
    """Simulate ``prefix``, escalating the budget on non-convergence.

    Returns the engine stats of the last attempt plus the outcome
    classification.  On divergence the prefix's partial routing state is
    cleared (quarantine) and the stats record it in ``diverged``.
    """
    started = time.monotonic()
    tracer = get_tracer()
    registry = get_registry()
    budget = policy.first_budget(network)
    spent = 0
    attempt = 0
    while True:
        attempt += 1
        try:
            stats = simulate_prefix(network, prefix, config, budget)
        except ConvergenceError as error:
            spent += error.messages_used
            elapsed = time.monotonic() - started
            out_of_attempts = attempt >= policy.max_attempts
            out_of_budget = budget >= policy.effective_cap
            out_of_time = (
                policy.deadline_seconds is not None
                and elapsed >= policy.deadline_seconds
            )
            if out_of_attempts or out_of_budget or out_of_time:
                network.clear_prefix(prefix)
                stats = EngineStats(prefixes=1, messages=spent)
                # Every attempt hit its budget; the accounting must say
                # so even though the per-attempt stats were discarded.
                stats.budget_exhaustions = attempt
                stats.per_prefix_messages[prefix] = spent
                stats.diverged.append(prefix)
                registry.counter("retry.quarantined").inc()
                registry.histogram("retry.attempts_per_prefix").observe(attempt)
                if tracer.enabled:
                    tracer.event(
                        EVENT_QUARANTINE,
                        prefix=str(prefix),
                        attempts=attempt,
                        messages=spent,
                        final_budget=budget,
                    )
                logger.warning(
                    "quarantined %s as diverged: %d attempts, %d messages, "
                    "final budget %d",
                    prefix, attempt, spent, budget,
                )
                return stats, PrefixOutcome(
                    prefix, DIVERGED, attempt, spent, budget, elapsed
                )
            next_budget = policy.next_budget(budget)
            registry.counter("retry.retries").inc()
            if tracer.enabled:
                tracer.event(
                    EVENT_RETRY,
                    prefix=str(prefix),
                    attempt=attempt,
                    budget=budget,
                    next_budget=next_budget,
                )
            logger.debug(
                "retrying %s: attempt %d exhausted budget %d, escalating to %d",
                prefix, attempt, budget, next_budget,
            )
            budget = next_budget
            continue
        elapsed = time.monotonic() - started
        status = CONVERGED if attempt == 1 else TRANSIENT
        spent += stats.messages
        # Failed earlier attempts each exhausted a budget before this one
        # converged; fold that into the surviving attempt's stats.
        stats.budget_exhaustions += attempt - 1
        registry.histogram("retry.attempts_per_prefix").observe(attempt)
        return stats, PrefixOutcome(prefix, status, attempt, spent, budget, elapsed)


def simulate_network_with_retry(
    network: Network,
    prefixes: Iterable[Prefix] | None = None,
    config: DecisionConfig = DecisionConfig(),
    policy: RetryPolicy = RetryPolicy(),
    parallel=None,
) -> ResilienceStats:
    """Simulate every prefix under ``policy``; divergence never aborts the run.

    With ``parallel`` (a :class:`repro.parallel.ParallelConfig` whose
    ``workers`` exceeds 1) the prefixes are simulated by a supervised
    worker pool: crashes, hangs and poison inputs degrade individual
    prefixes instead of the run, and a SIGINT/SIGTERM drains gracefully
    (raising :class:`~repro.errors.ShutdownRequested` with the partial
    stats).  ``parallel=None`` or ``workers=1`` keeps today's sequential
    path bit-for-bit.
    """
    if parallel is not None and parallel.workers > 1:
        # Imported lazily: repro.parallel builds on this module.
        from repro.parallel.supervisor import simulate_network_supervised

        return simulate_network_supervised(
            network, prefixes=prefixes, config=config, policy=policy,
            parallel=parallel,
        )
    result = ResilienceStats()
    targets = list(prefixes) if prefixes is not None else network.prefixes()
    for prefix in targets:
        stats, outcome = simulate_prefix_with_retry(network, prefix, config, policy)
        result.engine.merge(stats)
        result.outcomes.append(outcome)
    return result
