"""Atomic checkpoint/resume for long refinement runs.

A checkpoint is one JSON document holding the refiner's loop state
(iteration counter, best match count, staleness counter, per-iteration
stats) plus the full model network serialised through the existing
C-BGP-style config persistence (:mod:`repro.cbgp`) — installed per-prefix
policies and duplicated quasi-routers round-trip through it already.
Routing state (RIBs) is deliberately *not* stored: simulation is
deterministic, so resume re-simulates and lands in the same state.

Writes go to a temporary sibling file followed by ``os.replace``, so a
crash mid-write can never leave a truncated checkpoint behind.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.cbgp.export import export_network
from repro.cbgp.parse import parse_script
from repro.errors import CheckpointError, ParseError

CHECKPOINT_FORMAT = "repro/refiner-checkpoint/v1"
INGEST_CHECKPOINT_FORMAT = "repro/ingest-checkpoint/v1"

logger = logging.getLogger(__name__)


def training_fingerprint(targets: dict[int, list[tuple[int, ...]]]) -> str:
    """A stable digest of the refiner's training targets.

    Stored in the checkpoint and compared on resume, so a checkpoint
    written against one training set cannot silently steer a run over a
    different one (same-origin datasets pass the origin check but would
    converge to the wrong model).
    """
    digest = hashlib.sha256()
    for origin in sorted(targets):
        digest.update(str(origin).encode("ascii"))
        for path in targets[origin]:
            digest.update(("|" + " ".join(map(str, path))).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def certificate_store_path(checkpoint_path: str | Path) -> Path:
    """The sibling file holding a checkpoint's safety-certificate store.

    Kept separate from the checkpoint document so the store stays
    optional: old checkpoints (and runs without ``--lint-gate``) resume
    unchanged, and a missing or corrupt store only costs one full
    re-certification, never the refinement state itself.
    """
    path = Path(checkpoint_path)
    return path.with_name(path.name + ".certs")


@dataclass
class RefinerCheckpoint:
    """The persisted state of an in-progress refinement run."""

    network_config: str
    network_name: str = "parsed"
    fingerprint: str = ""
    iteration: int = 0
    best_matched: int = -1
    stale_iterations: int = 0
    iterations: list[dict] = field(default_factory=list)

    def restore_model(self):
        """Rebuild the checkpointed :class:`~repro.core.model.ASRoutingModel`."""
        # Imported here, not at module level: core.model imports the
        # resilience package for its retry API, so a top-level import
        # would be circular.
        from repro.core.model import ASRoutingModel

        try:
            network = parse_script(io.StringIO(self.network_config))
        except ParseError as error:
            raise CheckpointError(f"checkpointed network is corrupt: {error}") from error
        network.name = self.network_name
        return ASRoutingModel.from_network(network)


def save_checkpoint(
    path: str | Path,
    network,
    iteration: int,
    best_matched: int,
    stale_iterations: int,
    iterations: list[dict],
    fingerprint: str = "",
) -> None:
    """Atomically write a checkpoint for ``network`` + refiner loop state."""
    path = Path(path)
    buffer = io.StringIO()
    export_network(network, buffer)
    document = {
        "format": CHECKPOINT_FORMAT,
        "network_name": network.name,
        "fingerprint": fingerprint,
        "iteration": iteration,
        "best_matched": best_matched,
        "stale_iterations": stale_iterations,
        "iterations": iterations,
        "network_config": buffer.getvalue(),
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document), encoding="ascii")
    os.replace(tmp, path)
    logger.debug("checkpointed iteration %d to %s", iteration, path)


def load_checkpoint(path: str | Path) -> RefinerCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="ascii"))
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has unsupported format "
            f"{document.get('format') if isinstance(document, dict) else type(document)}"
        )
    try:
        return RefinerCheckpoint(
            network_config=document["network_config"],
            network_name=str(document.get("network_name", "parsed")),
            fingerprint=str(document.get("fingerprint", "")),
            iteration=int(document["iteration"]),
            best_matched=int(document["best_matched"]),
            stale_iterations=int(document["stale_iterations"]),
            iterations=list(document["iterations"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"checkpoint {path} is missing fields: {error}") from error


# ---------------------------------------------------------------------------
# Ingest checkpoints (line-offset resume for streaming feed ingestion)
# ---------------------------------------------------------------------------

_FINGERPRINT_HEAD = 64 * 1024


def ingest_fingerprint(path: str | Path) -> str:
    """A cheap identity for a feed file: size plus a head-of-file digest.

    A multi-GB dump must not be re-hashed in full just to resume, but a
    checkpoint taken against one feed must refuse to steer an ingest of
    a different one.  Size + SHA-256 of the first 64 KiB catches every
    realistic swap (different snapshot, different collector) without
    touching more than one read's worth of data.
    """
    path = Path(path)
    size = path.stat().st_size
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        digest.update(handle.read(_FINGERPRINT_HEAD))
    return f"{size}:{digest.hexdigest()}"


@dataclass
class IngestCheckpoint:
    """The persisted progress of an in-progress feed ingest.

    ``byte_offset`` always sits on a line boundary of the source feed;
    ``out_offset`` is the matching length of the clean output file, so a
    resume can truncate away any records appended after the snapshot and
    the (source position, output position, report counters) triple stays
    consistent no matter where the interruption landed.
    """

    source: str
    fingerprint: str
    byte_offset: int = 0
    line_number: int = 0
    out_offset: int = 0
    complete: bool = False
    report: dict = field(default_factory=dict)


def save_ingest_checkpoint(path: str | Path, checkpoint: IngestCheckpoint) -> None:
    """Atomically write an ingest checkpoint (tmp sibling + ``os.replace``)."""
    path = Path(path)
    document = {
        "format": INGEST_CHECKPOINT_FORMAT,
        "source": checkpoint.source,
        "fingerprint": checkpoint.fingerprint,
        "byte_offset": checkpoint.byte_offset,
        "line_number": checkpoint.line_number,
        "out_offset": checkpoint.out_offset,
        "complete": checkpoint.complete,
        "report": checkpoint.report,
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document), encoding="ascii")
    os.replace(tmp, path)
    logger.debug(
        "ingest checkpoint at line %d (byte %d) to %s",
        checkpoint.line_number, checkpoint.byte_offset, path,
    )


def load_ingest_checkpoint(path: str | Path) -> IngestCheckpoint:
    """Read a checkpoint written by :func:`save_ingest_checkpoint`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="ascii"))
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {error}") from error
    if (
        not isinstance(document, dict)
        or document.get("format") != INGEST_CHECKPOINT_FORMAT
    ):
        raise CheckpointError(
            f"checkpoint {path} has unsupported format "
            f"{document.get('format') if isinstance(document, dict) else type(document)}"
        )
    try:
        return IngestCheckpoint(
            source=str(document["source"]),
            fingerprint=str(document["fingerprint"]),
            byte_offset=int(document["byte_offset"]),
            line_number=int(document["line_number"]),
            out_offset=int(document["out_offset"]),
            complete=bool(document.get("complete", False)),
            report=dict(document.get("report") or {}),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"checkpoint {path} is missing fields: {error}") from error
