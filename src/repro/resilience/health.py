"""Structured run-health reporting and CLI exit codes.

A :class:`RunHealth` object accumulates, across a pipeline run: wall-clock
per phase, dump parse-skip counters, simulation retry/quarantine outcomes,
refinement stall diagnostics (naming the unmatched origins/paths), the
injected fault workload (for chaos runs) and any recoverable errors.  It
serialises to JSON for ``--health-report`` and maps to a distinct process
exit code so orchestration can tell failure classes apart without parsing
logs.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

EXIT_OK = 0
"""Everything converged and parsed."""

EXIT_UNCONVERGED = 1
"""Refinement stopped before matching every training path."""

EXIT_USAGE = 2
"""Bad command line (argparse's convention)."""

EXIT_DIVERGED = 3
"""One or more prefixes were quarantined as diverged."""

EXIT_DATA = 4
"""The input data was unusable (corruption above threshold, empty dataset)."""

EXIT_INTERRUPTED = 5
"""A SIGINT/SIGTERM drained the run gracefully before it finished."""

UNMATCHED_LIMIT = 25
"""At most this many unmatched (origin, path) pairs are named in the report."""


@dataclass
class RunHealth:
    """Everything a caller needs to judge how a run went."""

    phases: dict[str, float] = field(default_factory=dict)
    faults: dict | None = None
    parse: dict | None = None
    lint: dict | None = None
    simulation: dict | None = None
    refinement: dict | None = None
    metrics: dict | None = None
    meta: dict | None = None
    errors: list[str] = field(default_factory=list)
    interrupted: bool = False
    """True when a graceful signal-driven drain cut the run short; the
    report then describes a checkpointed partial run, not a finished one."""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a pipeline phase: ``with health.phase("simulate"): ...``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def record_error(self, error: BaseException | str) -> None:
        """Note a recoverable error (shows up in the report and exit code)."""
        self.errors.append(str(error))

    def record_parse(self, parsed) -> None:
        """Fold a :class:`~repro.data.dumps.DumpReadResult`'s counters in."""
        self.parse = {
            "lines": parsed.lines,
            "skipped_as_set": parsed.skipped_as_set,
            "skipped_malformed": parsed.skipped_malformed,
        }

    def record_simulation(self, stats) -> None:
        """Fold a :class:`~repro.resilience.retry.ResilienceStats` in."""
        self.simulation = stats.to_dict()

    def record_lint(self, report) -> None:
        """Fold an :class:`~repro.analysis.findings.AnalysisReport` in.

        Stores the rule/severity counts plus the statically-unsafe
        prefixes, so a health report shows what the lint gate quarantined
        (or what a chaos run should expect to diverge).
        """
        self.lint = {
            "passes": list(report.passes),
            "counts": report.counts(),
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "unsafe_prefixes": [str(p) for p in report.unsafe_prefixes()],
        }

    def record_refinement(
        self, result, unmatched: list[tuple[int, tuple[int, ...]]] | None = None
    ) -> None:
        """Fold a refinement result plus stall diagnostics in.

        ``unmatched`` names the (origin, observed AS-path) pairs the final
        model still fails to select — the concrete paths a stalled run is
        stuck on.
        """
        self.refinement = {
            "iterations": result.iteration_count,
            "converged": result.converged,
            "stalled": not result.converged,
            "final_match_rate": round(result.final_match_rate, 6),
        }
        if unmatched is not None:
            self.refinement["unmatched_total"] = len(unmatched)
            self.refinement["unmatched"] = [
                {"origin": origin, "path": list(path)}
                for origin, path in unmatched[:UNMATCHED_LIMIT]
            ]

    def record_metrics(self, registry=None) -> None:
        """Snapshot a :class:`~repro.obs.metrics.MetricsRegistry` in.

        Defaults to the process-global registry; ``repro stats`` renders
        this section of the report.
        """
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        self.metrics = registry.snapshot()

    def record_meta(self, meta: dict | None = None) -> None:
        """Stamp run metadata (git sha, versions, argv, seed) in.

        Defaults to :func:`repro.obs.meta.run_metadata`, so every health
        report says exactly which code and invocation produced it.
        """
        if meta is None:
            from repro.obs.meta import run_metadata

            meta = run_metadata()
        self.meta = meta

    @property
    def diverged_prefixes(self) -> list[str]:
        """Quarantined prefixes, if a simulation phase was recorded.

        Includes prefixes the lint gate quarantined statically (status
        ``unsafe``) and prefixes the parallel supervisor classified as
        ``poison`` or ``timeout``: in every case the model carries no
        routes for them, so all four classes map to :data:`EXIT_DIVERGED`.
        """
        if self.simulation is None:
            return []
        prefixes: list[str] = []
        for key in ("diverged", "unsafe", "poison", "timeout"):
            prefixes.extend(self.simulation.get(key) or [])
        return sorted(prefixes)

    @property
    def exit_code(self) -> int:
        """The process exit code this run's health maps to.

        Precedence: unusable data > interrupted > quarantined divergence
        > refinement stall > clean.
        """
        if self.errors:
            return EXIT_DATA
        if self.interrupted:
            return EXIT_INTERRUPTED
        if self.diverged_prefixes:
            return EXIT_DIVERGED
        if self.refinement is not None and not self.refinement["converged"]:
            return EXIT_UNCONVERGED
        return EXIT_OK

    def to_dict(self) -> dict:
        """JSON-serialisable report."""
        return {
            "phases_seconds": {k: round(v, 6) for k, v in self.phases.items()},
            "faults": self.faults,
            "parse": self.parse,
            "lint": self.lint,
            "simulation": self.simulation,
            "refinement": self.refinement,
            "metrics": self.metrics,
            "meta": self.meta,
            "errors": list(self.errors),
            "interrupted": self.interrupted,
            "exit_code": self.exit_code,
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str | Path) -> None:
        """Write the JSON report to ``path``."""
        Path(path).write_text(self.to_json() + "\n", encoding="ascii")
