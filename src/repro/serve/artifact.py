"""The compiled prediction artifact: an immutable, checksummed answer set.

An artifact is the read path's unit of deployment: everything a query
engine needs to answer ``paths`` / ``diversity`` / ``lookup`` questions
about one refined model, compiled once and served forever.  The file
layout is deliberately boring and self-verifying::

    REPRO-ARTIFACT\\n                      magic (rejects arbitrary files)
    {"schema": 1, "payload_bytes": N,
     "payload_sha256": "...", ...}\\n      one ASCII JSON header line
    <N bytes of zlib-compressed JSON>      the payload

The header is read *before* the payload, so schema mismatches and
truncation are detected without decompressing anything, and the SHA-256
checksum makes bit rot a loud :class:`~repro.errors.ArtifactError`
instead of a quietly wrong answer.  Writes go through a temp file +
``os.replace`` like the refinement checkpoints, so a crash mid-write can
never leave a half-written artifact behind.

The payload stores, for every (origin ASN, observer ASN) pair with at
least one selected route, the full AS-path set the refined model
predicts, plus the canonical-prefix table that seeds the per-observer
longest-prefix-match tries (:class:`~repro.net.trie.PrefixTrie`), the
run-metadata stamp of the compilation, and the prefixes the compiler had
to quarantine (their origins answer with an explicit error, never an
empty set).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ArtifactError
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie

MAGIC = b"REPRO-ARTIFACT\n"
"""First bytes of every artifact file."""

SCHEMA_VERSION = 1
"""Bump on any payload layout change; readers reject everything else."""

PathSet = tuple[tuple[int, ...], ...]
"""The sorted, deduplicated AS-path tuples of one (origin, observer) pair."""


@dataclass(frozen=True)
class PredictionArtifact:
    """In-memory form of one compiled artifact (read-only by convention).

    ``paths`` maps ``(origin_asn, observer_asn)`` to the sorted tuple of
    predicted AS-paths; pairs with no selected route are absent (an empty
    answer for a *known* pair is a real "unreachable", distinguishable
    from an unknown ASN via ``origins`` / ``observers``).
    """

    origins: dict[int, Prefix]
    """Origin ASN -> canonical prefix, for every origin with answers."""

    observers: tuple[int, ...]
    """Sorted ASNs the artifact holds answers for (every modelled AS)."""

    paths: dict[tuple[int, int], PathSet]
    """(origin, observer) -> sorted predicted AS-path tuples."""

    quarantined: tuple[str, ...] = ()
    """Canonical prefixes (as strings) the compiler could not answer for
    (diverged / poison / timeout); their origins refuse queries."""

    meta: dict = field(default_factory=dict)
    """Run-metadata stamp of the compilation (git sha, python, argv...)."""

    model_stats: dict = field(default_factory=dict)
    """Size summary of the source model (ases, routers, clauses...)."""

    certificates: dict = field(default_factory=dict)
    """The compile-time safety-certificate store
    (:meth:`repro.analysis.certify.CertificateStore.to_dict`), embedded so
    ``repro lint --diff`` can statically diff two artifacts' findings
    without either source model.  Empty when compilation skipped
    certification; readers must tolerate absence."""

    checksum: str = ""
    """SHA-256 of the compressed payload, as recorded in the file header.

    Set by :meth:`load` (verified against the bytes read) and by
    :meth:`save` (computed while writing); empty for an in-memory
    artifact that has never touched disk.  The serving layer surfaces it
    through ``/healthz`` so operators can tell *which* artifact version a
    hot-swapped server is answering from."""

    schema: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def pair_count(self) -> int:
        """Number of (origin, observer) pairs with at least one path."""
        return len(self.paths)

    def quarantined_origins(self) -> set[int]:
        """Origins whose canonical prefix was quarantined at compile time."""
        by_prefix = {str(prefix): asn for asn, prefix in self.origins.items()}
        return {
            by_prefix[text] for text in self.quarantined if text in by_prefix
        }

    def origin_trie(self) -> PrefixTrie[int]:
        """Longest-prefix-match table over *all* canonical prefixes.

        Maps any address to the origin AS whose canonical prefix covers
        it — the global table; per-observer tables come from
        :meth:`observer_trie`.
        """
        return PrefixTrie.from_items(
            (prefix, asn) for asn, prefix in self.origins.items()
        )

    def observer_trie(self, observer_asn: int) -> PrefixTrie[tuple[int, PathSet]]:
        """The per-observer forwarding view: prefix -> (origin, paths).

        Contains only prefixes the observer has at least one predicted
        path for, so a longest-prefix-match hit answers the query in one
        trie walk, and a miss means "this observer cannot reach the
        covering origin" (the engine then consults :meth:`origin_trie`
        to tell unreachable apart from unknown).
        """
        return PrefixTrie.from_items(
            (self.origins[origin], (origin, path_set))
            for (origin, obs), path_set in self.paths.items()
            if obs == observer_asn
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """The JSON payload document (deterministic given the contents)."""
        paths: dict[str, dict[str, list[list[int]]]] = {}
        for (origin, observer), path_set in sorted(self.paths.items()):
            paths.setdefault(str(origin), {})[str(observer)] = [
                list(path) for path in path_set
            ]
        document = {
            "meta": self.meta,
            "model": self.model_stats,
            "observers": list(self.observers),
            "origins": {
                str(asn): str(prefix)
                for asn, prefix in sorted(self.origins.items())
            },
            "paths": paths,
            "quarantined": sorted(self.quarantined),
        }
        if self.certificates:
            document["certificates"] = self.certificates
        return document

    def save(self, path: str | Path) -> int:
        """Write the artifact file atomically; returns bytes written."""
        payload = zlib.compress(
            json.dumps(self.to_payload(), sort_keys=True).encode("ascii"),
            level=6,
        )
        header = {
            "schema": self.schema,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "pairs": self.pair_count,
            "origins": len(self.origins),
            "observers": len(self.observers),
        }
        if self.certificates:
            header["certificates"] = _certificate_summary(self.certificates)
        blob = MAGIC + json.dumps(header, sort_keys=True).encode("ascii") \
            + b"\n" + payload
        target = Path(path)
        temp = target.with_name(target.name + ".tmp")
        temp.write_bytes(blob)
        os.replace(temp, target)
        object.__setattr__(self, "checksum", header["payload_sha256"])
        return len(blob)

    @classmethod
    def load(cls, path: str | Path) -> "PredictionArtifact":
        """Read and verify an artifact file.

        Raises :class:`~repro.errors.ArtifactError` naming the problem for
        anything that is not a bit-exact, schema-compatible artifact.
        """
        try:
            blob = Path(path).read_bytes()
        except OSError as error:
            raise ArtifactError(f"cannot read artifact {path}: {error}") from error
        if not blob.startswith(MAGIC):
            raise ArtifactError(
                f"{path} is not a prediction artifact (bad magic); "
                "compile one with 'repro compile-artifact'"
            )
        rest = blob[len(MAGIC):]
        newline = rest.find(b"\n")
        if newline < 0:
            raise ArtifactError(f"{path} is truncated inside the header")
        try:
            header = json.loads(rest[:newline].decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ArtifactError(
                f"{path} has a corrupt header: {error}"
            ) from error
        schema = header.get("schema")
        if schema != SCHEMA_VERSION:
            raise ArtifactError(
                f"{path} uses artifact schema {schema!r}, this build reads "
                f"schema {SCHEMA_VERSION}; recompile the artifact with "
                "'repro compile-artifact'"
            )
        payload = rest[newline + 1:]
        expected = header.get("payload_bytes")
        if not isinstance(expected, int) or len(payload) != expected:
            raise ArtifactError(
                f"{path} is truncated: header promises {expected!r} payload "
                f"bytes, file carries {len(payload)}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise ArtifactError(
                f"{path} failed its checksum (expected "
                f"{header.get('payload_sha256')!r}, got {digest!r}); the "
                "file is corrupt — recompile the artifact"
            )
        try:
            document = json.loads(zlib.decompress(payload).decode("ascii"))
        except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ArtifactError(
                f"{path} has an undecodable payload despite a valid "
                f"checksum: {error}"
            ) from error
        artifact = cls.from_payload(document)
        object.__setattr__(artifact, "checksum", digest)
        return artifact

    @classmethod
    def from_payload(cls, document: Mapping) -> "PredictionArtifact":
        """Rebuild the in-memory artifact from its payload document."""
        try:
            origins = {
                int(asn): Prefix(text)
                for asn, text in (document.get("origins") or {}).items()
            }
            observers = tuple(
                sorted(int(asn) for asn in document.get("observers") or ())
            )
            paths: dict[tuple[int, int], PathSet] = {}
            for origin_text, per_observer in (document.get("paths") or {}).items():
                origin = int(origin_text)
                for observer_text, path_lists in per_observer.items():
                    paths[(origin, int(observer_text))] = tuple(
                        sorted(tuple(int(hop) for hop in path) for path in path_lists)
                    )
        except (TypeError, ValueError, AttributeError) as error:
            raise ArtifactError(
                f"artifact payload is malformed: {error}"
            ) from error
        return cls(
            origins=origins,
            observers=observers,
            paths=paths,
            quarantined=tuple(document.get("quarantined") or ()),
            meta=dict(document.get("meta") or {}),
            model_stats=dict(document.get("model") or {}),
            certificates=dict(document.get("certificates") or {}),
        )


def _certificate_summary(certificates: Mapping) -> dict:
    """Header-line digest of an embedded certificate store.

    Computed from the store's serialised form alone, so the artifact
    layer never imports :mod:`repro.analysis` — the header stays
    readable (``pairs``, ``findings``, store fingerprint) without
    decompressing the payload.
    """
    entries = certificates.get("certificates") or ()
    findings = sum(
        len(entry.get("findings") or ())
        for entry in entries
        if isinstance(entry, Mapping)
    )
    return {
        "count": len(entries),
        "findings": findings,
        "fingerprint": str(certificates.get("fingerprint", "")),
    }


def build_artifact(
    origins: Mapping[int, Prefix],
    observers: Iterable[int],
    paths: Mapping[tuple[int, int], Iterable[tuple[int, ...]]],
    quarantined: Iterable[Prefix | str] = (),
    meta: dict | None = None,
    model_stats: dict | None = None,
    certificates: dict | None = None,
) -> PredictionArtifact:
    """Normalise raw compiler output into a :class:`PredictionArtifact`.

    Path sets are sorted and deduplicated, empty sets dropped, observers
    sorted — the canonical form :meth:`PredictionArtifact.save` then
    serialises deterministically.
    """
    canonical_paths = {
        pair: tuple(sorted(set(map(tuple, path_set))))
        for pair, path_set in paths.items()
        if path_set
    }
    return PredictionArtifact(
        origins=dict(origins),
        observers=tuple(sorted(set(observers))),
        paths=canonical_paths,
        quarantined=tuple(sorted(str(p) for p in quarantined)),
        meta=dict(meta or {}),
        model_stats=dict(model_stats or {}),
        certificates=dict(certificates or {}),
    )
