"""The cached query engine: cheap answers from a compiled artifact.

A :class:`QueryEngine` loads one :class:`~repro.serve.artifact.PredictionArtifact`
read-only and answers the three serving questions —

* ``paths(origin, observer)`` — the predicted AS-path set,
* ``diversity(origin, observer)`` — how many distinct paths / next hops,
* ``lookup(target, observer)`` — longest-prefix-match an address or
  prefix onto its covering origin, then answer as ``paths``

— plus batch variants, through a bounded LRU cache.  Every query flows
through the PR-3 metrics registry (``serve.*`` counters and a
``serve.query_seconds`` histogram), so ``repro stats`` renders serving
runs like any other.  The engine is thread-safe: the HTTP layer calls it
from one thread per connection, and a single lock guards the cache and
the registry (an artifact query is dict/trie reads — the lock is never
held across anything slow).

Failures are typed, never empty-but-wrong: asking about an ASN the
artifact does not know raises :class:`QueryError` with a ``kind`` the
HTTP layer maps onto 404s, and origins the compiler quarantined refuse
with ``kind="quarantined"`` (503) rather than pretending "no paths".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ParseError, ReproError
from repro.net.ip import ip_from_string
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie
from repro.obs.metrics import get_registry
from repro.serve.artifact import PathSet, PredictionArtifact

DEFAULT_CACHE_SIZE = 4096
"""Bounded LRU entries; one entry is one answered (question, pair) key."""

UNKNOWN_ORIGIN = "unknown-origin"
UNKNOWN_OBSERVER = "unknown-observer"
UNKNOWN_TARGET = "unknown-target"
BAD_TARGET = "bad-target"
QUARANTINED = "quarantined"


class QueryError(ReproError):
    """A query the artifact cannot answer, with a machine-readable kind."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


@dataclass(frozen=True)
class PathsAnswer:
    """Answer to ``paths(origin, observer)``."""

    origin: int
    observer: int
    prefix: str
    paths: PathSet

    @property
    def reachable(self) -> bool:
        """True when the observer selects at least one route."""
        return bool(self.paths)

    def to_dict(self) -> dict:
        """JSON form served by the HTTP API."""
        return {
            "origin": self.origin,
            "observer": self.observer,
            "prefix": self.prefix,
            "reachable": self.reachable,
            "paths": [list(path) for path in self.paths],
        }


@dataclass(frozen=True)
class DiversityAnswer:
    """Answer to ``diversity(origin, observer)``: the Fig. 2 view of one pair."""

    origin: int
    observer: int
    prefix: str
    path_count: int
    next_hops: tuple[int, ...]
    min_length: int
    max_length: int

    @property
    def multipath(self) -> bool:
        """True when the pair exhibits route diversity (>1 distinct path)."""
        return self.path_count > 1

    def to_dict(self) -> dict:
        """JSON form served by the HTTP API."""
        return {
            "origin": self.origin,
            "observer": self.observer,
            "prefix": self.prefix,
            "path_count": self.path_count,
            "multipath": self.multipath,
            "next_hops": list(self.next_hops),
            "min_length": self.min_length,
            "max_length": self.max_length,
        }


@dataclass(frozen=True)
class LookupAnswer:
    """Answer to ``lookup(target, observer)``."""

    target: str
    matched_prefix: str
    origin: int
    observer: int
    paths: PathSet

    @property
    def reachable(self) -> bool:
        """True when the observer selects at least one route."""
        return bool(self.paths)

    def to_dict(self) -> dict:
        """JSON form served by the HTTP API."""
        return {
            "target": self.target,
            "matched_prefix": self.matched_prefix,
            "origin": self.origin,
            "observer": self.observer,
            "reachable": self.reachable,
            "paths": [list(path) for path in self.paths],
        }


class QueryEngine:
    """Thread-safe cached reader over one immutable prediction artifact."""

    def __init__(
        self,
        artifact: PredictionArtifact,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.artifact = artifact
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self._observer_set = set(artifact.observers)
        self._quarantined_origins = artifact.quarantined_origins()
        self._origin_trie: PrefixTrie[int] = artifact.origin_trie()
        self._observer_tries: dict[int, PrefixTrie] = {}
        registry = get_registry()
        self._queries = registry.counter("serve.queries")
        self._hits = registry.counter("serve.cache_hits")
        self._misses = registry.counter("serve.cache_misses")
        self._errors = registry.counter("serve.errors")
        self._latency = registry.histogram("serve.query_seconds")
        registry.gauge("serve.cache_size").set(0)
        self._cache_gauge = registry.gauge("serve.cache_size")
        # Registry counters are process-global (shared across engines, by
        # design — 'repro stats' wants totals); cache_stats() reports
        # this engine alone, so it keeps its own tallies.
        self._own = {"queries": 0, "hits": 0, "misses": 0, "errors": 0}

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------

    def paths(self, origin: int, observer: int) -> PathsAnswer:
        """The predicted AS-path set of one (origin, observer) pair."""
        return self._answer(("paths", origin, observer), self._paths_uncached)

    def diversity(self, origin: int, observer: int) -> DiversityAnswer:
        """Route-diversity summary of one (origin, observer) pair."""
        return self._answer(
            ("diversity", origin, observer), self._diversity_uncached
        )

    def lookup(self, target: str | int | Prefix, observer: int) -> LookupAnswer:
        """Longest-prefix-match ``target`` and answer for its origin.

        ``target`` may be a dotted address, a CIDR string, a bare 32-bit
        address or a :class:`~repro.net.prefix.Prefix`.
        """
        key = ("lookup", str(target), observer)
        return self._answer(key, lambda k: self._lookup_uncached(target, observer))

    def paths_batch(
        self, pairs: Iterable[tuple[int, int]]
    ) -> list[PathsAnswer]:
        """``paths`` for many (origin, observer) pairs, in input order."""
        return [self.paths(origin, observer) for origin, observer in pairs]

    def diversity_batch(
        self, pairs: Iterable[tuple[int, int]]
    ) -> list[DiversityAnswer]:
        """``diversity`` for many (origin, observer) pairs, in input order."""
        return [self.diversity(origin, observer) for origin, observer in pairs]

    def lookup_batch(
        self, targets: Sequence[str | int | Prefix], observer: int
    ) -> list[LookupAnswer]:
        """``lookup`` for many targets at one observer, in input order."""
        return [self.lookup(target, observer) for target in targets]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict:
        """Cache occupancy and hit counters (for /healthz and tests)."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "capacity": self.cache_size,
                **self._own,
            }

    def describe(self) -> dict:
        """Artifact summary for /healthz."""
        return {
            "schema": self.artifact.schema,
            "checksum": self.artifact.checksum,
            "origins": len(self.artifact.origins),
            "observers": len(self.artifact.observers),
            "pairs": self.artifact.pair_count,
            "quarantined": len(self.artifact.quarantined),
            "meta": self.artifact.meta,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _answer(self, key: tuple, compute):
        """One cache-or-compute round with metrics, under the lock."""
        with self._lock:
            self._queries.inc()
            self._own["queries"] += 1
            with self._latency.time():
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits.inc()
                    self._own["hits"] += 1
                    return cached
                self._misses.inc()
                self._own["misses"] += 1
                try:
                    answer = compute(key)
                except QueryError:
                    self._errors.inc()
                    self._own["errors"] += 1
                    raise
                self._cache[key] = answer
                if len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                self._cache_gauge.set(len(self._cache))
                return answer

    def _validate_pair(self, origin: int, observer: int) -> Prefix:
        artifact = self.artifact
        prefix = artifact.origins.get(origin)
        if prefix is None:
            raise QueryError(
                UNKNOWN_ORIGIN,
                f"origin AS {origin} is not in the artifact",
            )
        if observer not in self._observer_set:
            raise QueryError(
                UNKNOWN_OBSERVER,
                f"observer AS {observer} is not in the artifact",
            )
        if origin in self._quarantined_origins:
            raise QueryError(
                QUARANTINED,
                f"the canonical prefix of AS {origin} was quarantined at "
                "compile time (no trustworthy answers); recompile after "
                "fixing the model",
            )
        return prefix

    def _paths_uncached(self, key: tuple) -> PathsAnswer:
        _, origin, observer = key
        prefix = self._validate_pair(origin, observer)
        path_set = self.artifact.paths.get((origin, observer), ())
        return PathsAnswer(
            origin=origin, observer=observer, prefix=str(prefix),
            paths=path_set,
        )

    def _diversity_uncached(self, key: tuple) -> DiversityAnswer:
        _, origin, observer = key
        prefix = self._validate_pair(origin, observer)
        path_set = self.artifact.paths.get((origin, observer), ())
        lengths = [len(path) - 1 for path in path_set]  # hops, not nodes
        next_hops = tuple(sorted({
            path[1] for path in path_set if len(path) > 1
        }))
        return DiversityAnswer(
            origin=origin,
            observer=observer,
            prefix=str(prefix),
            path_count=len(path_set),
            next_hops=next_hops,
            min_length=min(lengths) if lengths else 0,
            max_length=max(lengths) if lengths else 0,
        )

    def _lookup_uncached(
        self, target: str | int | Prefix, observer: int
    ) -> LookupAnswer:
        if observer not in self._observer_set:
            raise QueryError(
                UNKNOWN_OBSERVER,
                f"observer AS {observer} is not in the artifact",
            )
        resolved = self._parse_target(target)
        trie = self._observer_tries.get(observer)
        if trie is None:
            trie = self.artifact.observer_trie(observer)
            self._observer_tries[observer] = trie
        hit = trie.longest_match(resolved)
        if hit is not None:
            matched, (origin, path_set) = hit
            return LookupAnswer(
                target=str(target), matched_prefix=str(matched),
                origin=origin, observer=observer, paths=path_set,
            )
        # Not in this observer's table: either the covering origin is
        # unreachable from here (a real empty answer) or nothing covers
        # the target at all.
        fallback = self._origin_trie.longest_match(resolved)
        if fallback is None:
            raise QueryError(
                UNKNOWN_TARGET,
                f"no canonical prefix covers {target}",
            )
        matched, origin = fallback
        if origin in self._quarantined_origins:
            raise QueryError(
                QUARANTINED,
                f"the canonical prefix of AS {origin} was quarantined at "
                "compile time (no trustworthy answers)",
            )
        return LookupAnswer(
            target=str(target), matched_prefix=str(matched),
            origin=origin, observer=observer, paths=(),
        )

    @staticmethod
    def _parse_target(target: str | int | Prefix) -> Prefix | int:
        """Normalise a lookup target to what the trie understands."""
        if isinstance(target, (Prefix, int)):
            return target
        text = str(target).strip()
        try:
            if "/" in text:
                return Prefix(text)
            return ip_from_string(text)
        except ParseError as error:
            raise QueryError(
                BAD_TARGET, f"cannot parse lookup target {target!r}: {error}"
            ) from error
