"""Supervised multi-worker serving over ``SO_REUSEPORT``.

``repro serve --workers N`` must survive what a single process cannot:
a ``kill -9``, a segfault, an OOM kill.  The supervisor owns no sockets
that serve traffic — it reserves the port, forks N worker processes that
each bind it with ``SO_REUSEPORT`` (the kernel load-balances accepts
between them), and then does nothing but watch:

* **Port reservation** — a placeholder socket is bound (never listened)
  with ``SO_REUSEPORT`` before the first fork, so ``--port 0`` resolves
  to one concrete port that every worker (including restarts, minutes
  later) can still bind.  Only listening sockets receive connections,
  so the placeholder steals no traffic.
* **Liveness** — workers heartbeat over a pipe (reusing the PR-4 worker
  protocol's ``MSG_READY``/``MSG_HEARTBEAT``); a dead process or a
  silent one past the grace period is killed and replaced while its
  siblings keep answering.  Spawns/deaths/restarts are accounted through
  the shared :class:`~repro.parallel.supervisor.SupervisionLedger`
  (``serve.workers_spawned`` / ``serve.worker_deaths`` /
  ``serve.worker_restarts``).
* **Boot-loop protection** — a worker that keeps dying before it ever
  reports ready (bad artifact, port stolen) stops the whole supervisor
  after ``max_boot_failures`` consecutive failures instead of forking
  forever.
* **Signal fan-out** — SIGTERM/SIGINT drain every worker gracefully
  (each worker runs the full single-process drain contract) and the
  supervisor exits 0; SIGHUP is forwarded so one signal hot-swaps the
  artifact in every worker.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from pathlib import Path

from repro.parallel.protocol import MSG_ERROR, MSG_HEARTBEAT, MSG_READY
from repro.parallel.supervisor import SupervisionLedger

logger = logging.getLogger(__name__)

_TICK_SECONDS = 0.1
"""Upper bound on how long the watch loop blocks waiting for messages."""

BOOT_FAILURE_EXIT = 1
"""Supervisor exit code when workers cannot boot at all."""


class _ServeWorker:
    """Parent-side record of one serve worker process."""

    def __init__(self, index, generation, process, conn):
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.pid = process.pid
        self.ready = False
        self.spawned_at = time.monotonic()
        self.last_beat = self.spawned_at


def _serve_worker_main(
    conn, artifact_path: str, host: str, port: int, options: dict
) -> None:
    """Entry point of one serve worker process.

    Loads its own copy of the artifact (workers share nothing but the
    port), reports readiness + heartbeats over ``conn``, and runs the
    full single-process serve loop — including its own SIGTERM drain
    contract and its own reload coordinator, so a forwarded SIGHUP
    hot-swaps this worker independently of its siblings.
    """
    from repro.errors import ArtifactError
    from repro.obs.metrics import get_registry
    from repro.serve.admission import AdmissionController
    from repro.serve.artifact import PredictionArtifact
    from repro.serve.engine import QueryEngine
    from repro.serve.http import run_server

    get_registry().reset()
    try:
        artifact = PredictionArtifact.load(artifact_path)
        engine = QueryEngine(
            artifact, cache_size=options.get("cache_size", 4096)
        )
    except (ArtifactError, ValueError) as error:
        try:
            conn.send((MSG_ERROR, 0, f"worker boot failed: {error}"))
        except (BrokenPipeError, OSError):
            pass
        os._exit(BOOT_FAILURE_EXIT)
        return  # pragma: no cover - unreachable

    stop_beats = threading.Event()
    interval = options.get("heartbeat_interval", 0.5)

    def beat() -> None:
        while not stop_beats.wait(interval):
            try:
                conn.send((MSG_HEARTBEAT,))
            except (BrokenPipeError, OSError):
                return  # supervisor is gone; SIGTERM will follow

    def announce_ready(server) -> None:
        try:
            conn.send((MSG_READY, os.getpid(), server.address))
        except (BrokenPipeError, OSError):
            pass
        threading.Thread(
            target=beat, name="serve-heartbeat", daemon=True
        ).start()

    admission = None
    if options.get("max_inflight"):
        admission = AdmissionController(
            max_inflight=options["max_inflight"],
            deadline_seconds=options.get("deadline_seconds", 5.0),
        )
    code = run_server(
        engine,
        host=host,
        port=port,
        request_timeout=options.get("request_timeout", 10.0),
        artifact_path=artifact_path,
        cache_size=options.get("cache_size", 4096),
        admission=admission,
        watch_interval=options.get("watch_interval"),
        handler_delay=options.get("handler_delay", 0.0),
        reuse_port=True,
        announce=False,
        on_ready=announce_ready,
    )
    stop_beats.set()
    os._exit(code)


class ServeSupervisor:
    """Forks, watches, and replaces N ``SO_REUSEPORT`` serve workers."""

    def __init__(
        self,
        artifact_path: str | Path,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        options: dict | None = None,
        heartbeat_grace: float = 10.0,
        drain_grace: float = 10.0,
        max_boot_failures: int = 3,
        restart_backoff: float = 0.05,
    ) -> None:
        if workers < 2:
            raise ValueError(
                f"ServeSupervisor needs workers >= 2, got {workers}; "
                "use run_server for a single process"
            )
        if not hasattr(socket, "SO_REUSEPORT"):
            raise OSError(
                "SO_REUSEPORT is not available on this platform; "
                "run without --workers"
            )
        self.artifact_path = str(artifact_path)
        self.host = host
        self.requested_port = port
        self.options = dict(options or {})
        self.heartbeat_grace = heartbeat_grace
        self.drain_grace = drain_grace
        self.max_boot_failures = max_boot_failures
        self.restart_backoff = restart_backoff
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        self._ctx = get_context("fork" if "fork" in methods else "spawn")
        self._workers: list[_ServeWorker | None] = [None] * workers
        self._ledger = SupervisionLedger("serve", workers)
        self._boot_failures = 0
        self._stop_signum: int | None = None
        self._hup_pending = False
        self._announced = False
        self._placeholder: socket.socket | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def summary(self) -> dict:
        """Supervision counts for reports and the chaos harness."""
        return {
            **self._ledger.summary(),
            "boot_failures": self._boot_failures,
            "drained": self._stop_signum is not None,
        }

    def run(self) -> int:
        """Serve until SIGINT/SIGTERM; returns 0 on a clean drain."""
        self._reserve_port()
        previous = self._install_signal_handlers()
        try:
            for index in range(len(self._workers)):
                self._workers[index] = self._spawn(index)
            while self._stop_signum is None:
                if self._hup_pending:
                    self._hup_pending = False
                    self._forward(signal.SIGHUP)
                self._pump_messages()
                if self._boot_failures >= self.max_boot_failures:
                    logger.error(
                        "giving up after %d consecutive worker boot "
                        "failures; check the artifact and port",
                        self._boot_failures,
                    )
                    self._shutdown_workers(signal.SIGTERM)
                    return BOOT_FAILURE_EXIT
                self._check_workers()
        finally:
            self._restore_signal_handlers(previous)
            if self._stop_signum is not None:
                self._shutdown_workers(signal.SIGTERM)
            if self._placeholder is not None:
                self._placeholder.close()
                self._placeholder = None
        summary = self.summary()
        print(
            f"drained on signal {self._stop_signum}: supervised "
            f"{summary['workers']} worker(s), {summary['restarts']} "
            "restart(s), shut down cleanly",
            flush=True,
        )
        return 0

    # ------------------------------------------------------------------
    # Port and process lifecycle
    # ------------------------------------------------------------------

    def _reserve_port(self) -> None:
        """Bind (never listen) the serving port so it survives restarts.

        Only listening sockets receive connections, so this placeholder
        pins ``--port 0``'s kernel-chosen port for the supervisor's
        whole lifetime without stealing a single accept.
        """
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            placeholder.bind((self.host, self.requested_port))
        except OSError:
            placeholder.close()
            raise
        self._placeholder = placeholder
        self.port = placeholder.getsockname()[1]

    def _spawn(self, index: int) -> _ServeWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_serve_worker_main,
            args=(
                child_conn,
                self.artifact_path,
                self.host,
                self.port,
                self.options,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        generation, _ = self._ledger.record_spawn(index, process.pid)
        return _ServeWorker(index, generation, process, parent_conn)

    def _replace(self, worker: _ServeWorker, reason: str) -> None:
        """Account one loss and restart the slot (unless stopping)."""
        self._ledger.record_death(
            worker.index, worker.pid, worker.generation, reason
        )
        if not worker.ready:
            self._boot_failures += 1
        else:
            self._boot_failures = 0
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(2.0)
        worker.conn.close()
        self._workers[worker.index] = None
        if self._stop_signum is not None:
            return
        if self._boot_failures >= self.max_boot_failures:
            return  # the run loop turns this into BOOT_FAILURE_EXIT
        if self._boot_failures:
            time.sleep(self.restart_backoff * self._boot_failures)
        self._workers[worker.index] = self._spawn(worker.index)

    def _live_workers(self) -> list[_ServeWorker]:
        return [w for w in self._workers if w is not None]

    # ------------------------------------------------------------------
    # Watch loop pieces
    # ------------------------------------------------------------------

    def _pump_messages(self) -> None:
        conns = {w.conn: w for w in self._live_workers()}
        if not conns:
            time.sleep(_TICK_SECONDS)
            return
        ready = mp_connection.wait(list(conns), timeout=_TICK_SECONDS)
        for conn in ready:
            worker = conns[conn]
            if self._workers[worker.index] is not worker:
                continue
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._replace(worker, "crash")
                    break
                self._handle_message(worker, message)
                if self._workers[worker.index] is not worker:
                    break

    def _handle_message(self, worker: _ServeWorker, message: tuple) -> None:
        worker.last_beat = time.monotonic()
        kind = message[0]
        if kind == MSG_READY:
            worker.ready = True
            self._boot_failures = 0
            logger.info(
                "serve worker %d (pid %s) ready on %s",
                worker.index, message[1], message[2],
            )
            if not self._announced:
                self._announced = True
                print(
                    f"serving predictions on http://{self.address}",
                    flush=True,
                )
        elif kind == MSG_ERROR:
            logger.error(
                "serve worker %d (pid %s): %s",
                worker.index, worker.pid, message[2],
            )

    def _check_workers(self) -> None:
        now = time.monotonic()
        for worker in self._live_workers():
            if not worker.process.is_alive() and not worker.conn.poll():
                self._replace(worker, "crash")
                continue
            if now - worker.last_beat > self.heartbeat_grace:
                self._replace(worker, "stalled")

    # ------------------------------------------------------------------
    # Signals and shutdown
    # ------------------------------------------------------------------

    def _install_signal_handlers(self):
        def handle_stop(signum, frame):  # noqa: ARG001
            self._stop_signum = signum

        def handle_hup(signum, frame):  # noqa: ARG001
            self._hup_pending = True

        previous = {}
        handled = [(signal.SIGINT, handle_stop), (signal.SIGTERM, handle_stop)]
        if hasattr(signal, "SIGHUP"):
            handled.append((signal.SIGHUP, handle_hup))
        for signum, handler in handled:
            try:
                previous[signum] = signal.signal(signum, handler)
            except ValueError:  # not the main thread
                break
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    def _forward(self, signum: int) -> None:
        for worker in self._live_workers():
            if worker.process.is_alive():
                try:
                    os.kill(worker.pid, signum)
                except (ProcessLookupError, OSError):
                    pass

    def _shutdown_workers(self, signum: int) -> None:
        """Drain every worker, bounded by ``drain_grace``, then kill."""
        self._forward(signum)
        deadline = time.monotonic() + self.drain_grace
        for worker in self._live_workers():
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                logger.warning(
                    "serve worker %d (pid %s) ignored the drain; killing",
                    worker.index, worker.pid,
                )
                worker.process.kill()
                worker.process.join(2.0)
            worker.conn.close()
        self._workers = [None] * len(self._workers)


def run_supervised(
    artifact_path: str | Path,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    options: dict | None = None,
    **supervisor_kwargs,
) -> int:
    """Run the multi-worker serve supervisor until drained; returns its
    exit code (0 clean drain, nonzero on boot failure)."""
    supervisor = ServeSupervisor(
        artifact_path,
        workers,
        host=host,
        port=port,
        options=options,
        **supervisor_kwargs,
    )
    return supervisor.run()
