"""Compile a refined model into a prediction artifact.

The expensive half of the serving split: simulate every canonical prefix
of an :class:`~repro.core.model.ASRoutingModel` exactly once (through the
resilient retry layer, and through the supervised parallel pool when a
:class:`~repro.parallel.ParallelConfig` is given), then collect the
selected path set of every (origin, observer) pair via the same
:func:`repro.core.predict.selected_paths` code path the live prediction
API uses.  Equality between artifact answers and live answers is
therefore structural, not coincidental — both read the same Loc-RIBs
through the same collector.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.certify import certify_network
from repro.core.model import ASRoutingModel
from repro.core.predict import selected_paths
from repro.errors import ModelError
from repro.net.prefix import Prefix
from repro.obs.meta import run_metadata
from repro.obs.metrics import get_registry
from repro.obs.profile import get_profiler
from repro.relationships.types import RelationshipMap
from repro.resilience.retry import ResilienceStats, RetryPolicy
from repro.serve.artifact import PredictionArtifact, build_artifact

logger = logging.getLogger(__name__)


@dataclass
class CompileReport:
    """What one compilation did, for logs and health reporting."""

    prefixes: int = 0
    converged: int = 0
    quarantined: list[str] = field(default_factory=list)
    pairs: int = 0
    simulate_seconds: float = 0.0
    collect_seconds: float = 0.0
    certify_seconds: float = 0.0
    certified_findings: int = 0
    stats: ResilienceStats | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable summary."""
        return {
            "prefixes": self.prefixes,
            "converged": self.converged,
            "quarantined": sorted(self.quarantined),
            "pairs": self.pairs,
            "simulate_seconds": round(self.simulate_seconds, 6),
            "collect_seconds": round(self.collect_seconds, 6),
            "certify_seconds": round(self.certify_seconds, 6),
            "certified_findings": self.certified_findings,
        }


def compile_artifact(
    model: ASRoutingModel,
    observers: Iterable[int] | None = None,
    retry: RetryPolicy | None = None,
    parallel=None,
    meta: dict | None = None,
    relationships: RelationshipMap | None = None,
) -> tuple[PredictionArtifact, CompileReport]:
    """Simulate ``model`` once and freeze every answer into an artifact.

    ``observers`` restricts the answer set (default: every AS in the
    model).  ``parallel`` (a :class:`~repro.parallel.ParallelConfig`)
    fans the per-prefix simulation out to the PR-4 supervised pool;
    ``retry`` controls budget escalation for diverging prefixes.
    Prefixes that still diverge (or get classified poison/timeout by the
    supervisor) are recorded as quarantined: the artifact refuses queries
    for their origins instead of freezing empty answers.

    Raises :class:`~repro.errors.ShutdownRequested` if a SIGINT/SIGTERM
    drains the parallel phase, exactly like ``repro refine --workers``.
    """
    observer_list = (
        sorted(observers) if observers is not None
        else sorted(model.network.ases)
    )
    unknown = [asn for asn in observer_list if asn not in model.network.ases]
    if unknown:
        raise ModelError(
            f"observer AS {unknown[0]} is not in the model; cannot compile "
            "answers for it"
        )
    registry = get_registry()
    profiler = get_profiler()
    report = CompileReport(prefixes=len(model.prefix_by_origin))

    # Certify before simulating: the certificates describe the *static*
    # model, so the findings frozen into the artifact are exactly what a
    # later `repro lint` of the same model would report.
    started = time.perf_counter()
    with profiler.phase("compile.certify"):
        store = certify_network(model.network, relationships=relationships)
        certificates = store.to_dict()
    report.certify_seconds = time.perf_counter() - started
    report.certified_findings = len(store.report().findings)
    registry.counter("serve.compile.certified_findings").inc(
        report.certified_findings
    )

    started = time.perf_counter()
    with profiler.phase("compile.simulate"):
        stats = model.simulate_all_resilient(
            policy=retry or RetryPolicy(), parallel=parallel
        )
    report.simulate_seconds = time.perf_counter() - started
    report.stats = stats
    quarantined: set[Prefix] = set(
        stats.diverged + stats.unsafe + stats.poison + stats.timed_out
    )
    report.quarantined = sorted(str(prefix) for prefix in quarantined)
    report.converged = report.prefixes - len(quarantined)
    registry.counter("serve.compile.prefixes").inc(report.prefixes)
    registry.counter("serve.compile.quarantined").inc(len(quarantined))
    if quarantined:
        logger.warning(
            "compiling around %d quarantined prefix(es): %s",
            len(quarantined), " ".join(report.quarantined),
        )

    started = time.perf_counter()
    with profiler.phase("compile.collect"):
        paths: dict[tuple[int, int], set[tuple[int, ...]]] = {}
        for origin in sorted(model.prefix_by_origin):
            if model.prefix_by_origin[origin] in quarantined:
                continue
            for observer in observer_list:
                selected = selected_paths(model, origin, observer)
                if selected:
                    paths[(origin, observer)] = selected
    report.collect_seconds = time.perf_counter() - started
    report.pairs = len(paths)
    registry.counter("serve.compile.pairs").inc(report.pairs)
    registry.histogram("serve.compile.seconds").observe(
        report.simulate_seconds + report.collect_seconds
    )

    artifact = build_artifact(
        origins=dict(model.prefix_by_origin),
        observers=observer_list,
        paths=paths,
        quarantined=quarantined,
        meta=meta if meta is not None else run_metadata(),
        model_stats=model.stats(),
        certificates=certificates,
    )
    logger.info(
        "compiled artifact: %d origins x %d observers, %d pairs with paths, "
        "%d quarantined, %d certified finding(s), "
        "%.1fs simulate + %.1fs collect",
        len(artifact.origins), len(artifact.observers), report.pairs,
        len(quarantined), report.certified_findings,
        report.simulate_seconds, report.collect_seconds,
    )
    return artifact, report


def write_artifact(artifact: PredictionArtifact, path) -> int:
    """Persist one artifact under the ``compile.write`` profiler phase.

    The atomic temp + ``os.replace`` write in
    :meth:`~repro.serve.artifact.PredictionArtifact.save` is what makes
    hot reloads safe to trigger from a file watcher — a server can never
    observe a half-written artifact, only the old file or the new one.
    Returns bytes written and counts them (``serve.compile.bytes``).
    """
    with get_profiler().phase("compile.write"):
        size = artifact.save(path)
    get_registry().counter("serve.compile.bytes").inc(size)
    return size
