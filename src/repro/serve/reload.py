"""Hot-swap artifact reloads: stage off-thread, validate, swap atomically.

The serving split compiles artifacts out of band (``repro
compile-artifact``) and serves them forever — but "forever" must survive
the *next* compilation.  This module lets a running server pick up a
recompiled artifact with zero dropped requests:

``EngineRef``
    An RCU-style mutable reference to the live
    :class:`~repro.serve.engine.QueryEngine`.  Handler threads read the
    reference once per request and keep answering from that engine even
    if a swap happens mid-request; the swap itself is a single
    lock-guarded pointer write, so readers never block on a reload and a
    reload never waits for readers.

``ReloadCoordinator``
    The only writer of the reference.  A reload stages the candidate
    artifact completely off the request path — read, checksum, schema
    check, payload decode, engine construction — and only then swaps.
    Every validation failure leaves the old engine serving and marks the
    server **degraded**: ``/healthz`` keeps answering with the old
    artifact's checksum, the last reload error, and the staleness age so
    operators (and load balancers) can tell "serving but stale" from
    "healthy".

``ArtifactWatcher``
    A polling thread that triggers the coordinator when the artifact
    file on disk changes (new mtime/size signature).  Each distinct
    signature is attempted exactly once — a corrupt artifact does not
    spin the reload loop; the next *write* of the file does.

Reload triggers — SIGHUP, ``POST /-/reload``, and the watcher — all
funnel into :meth:`ReloadCoordinator.reload`, which serialises them with
a non-blocking lock: concurrent triggers get a ``busy`` outcome instead
of queueing redundant reloads.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ArtifactError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.serve.artifact import PredictionArtifact
from repro.serve.engine import QueryEngine

logger = logging.getLogger(__name__)

EVENT_SERVE_RELOAD = "serve-reload"
"""A reload attempt finished (fields: outcome, checksum/error)."""


@dataclass
class ReloadState:
    """What the last reload attempts did, for ``/healthz``.

    ``degraded`` means the most recent attempt failed and the server is
    still answering from the previous artifact; ``loaded_wall`` is the
    wall-clock time the *serving* artifact was loaded, so staleness age
    keeps growing while degraded.
    """

    generation: int = 0
    checksum: str = ""
    source: str = ""
    degraded: bool = False
    last_error: str = ""
    loaded_wall: float = field(default_factory=time.time)
    attempts: int = 0
    failures: int = 0

    def to_dict(self) -> dict:
        """JSON-serialisable summary (staleness computed at call time)."""
        return {
            "generation": self.generation,
            "checksum": self.checksum,
            "degraded": self.degraded,
            "last_error": self.last_error,
            "staleness_seconds": round(time.time() - self.loaded_wall, 3),
            "attempts": self.attempts,
            "failures": self.failures,
        }


class EngineRef:
    """Atomic reference to the live query engine (RCU-style).

    Readers call :meth:`get` once per request and use that engine for
    the whole request; the old engine stays fully functional after a
    swap (it owns its artifact and cache), so in-flight requests finish
    on it and it is garbage-collected once the last one returns.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self._engine = engine
        self._lock = threading.Lock()

    def get(self) -> QueryEngine:
        """The engine new requests should answer from."""
        with self._lock:
            return self._engine

    def swap(self, engine: QueryEngine) -> QueryEngine:
        """Install ``engine``; returns the one it replaced."""
        with self._lock:
            old, self._engine = self._engine, engine
            return old


class ReloadCoordinator:
    """Serialises reload attempts and owns the only :meth:`EngineRef.swap`.

    ``on_swap`` (optional) is called with the new engine after a
    successful swap — the server uses it to refresh log lines, tests use
    it to observe swaps.
    """

    def __init__(
        self,
        ref: EngineRef,
        artifact_path: str | Path,
        cache_size: int = 4096,
        on_swap: Callable[[QueryEngine], None] | None = None,
    ) -> None:
        self.ref = ref
        self.artifact_path = Path(artifact_path)
        self.cache_size = cache_size
        self.on_swap = on_swap
        self._reload_lock = threading.Lock()
        self._state_lock = threading.Lock()
        initial = ref.get().artifact
        self.state = ReloadState(
            generation=1, checksum=initial.checksum, source=str(artifact_path)
        )
        registry = get_registry()
        self._reloads = registry.counter("serve.reloads")
        self._reload_failures = registry.counter("serve.reload_failures")
        self._reload_seconds = registry.histogram("serve.reload_seconds")

    def describe(self) -> dict:
        """Snapshot of the reload state for ``/healthz``."""
        with self._state_lock:
            return self.state.to_dict()

    @property
    def degraded(self) -> bool:
        with self._state_lock:
            return self.state.degraded

    def reload(self, reason: str = "request") -> dict:
        """Attempt one hot swap; never raises.

        Returns ``{"outcome": ...}`` with one of:

        ``reloaded``   new artifact validated and swapped in
        ``unchanged``  file re-read cleanly but carries the serving checksum
        ``failed``     validation failed; old engine still serving (degraded)
        ``busy``       another reload is in progress; nothing was done
        """
        if not self._reload_lock.acquire(blocking=False):
            return {"outcome": "busy", "reason": reason}
        started = time.perf_counter()
        try:
            with self._state_lock:
                self.state.attempts += 1
            # Stage entirely off the request path: any failure below this
            # point leaves the reference untouched.
            artifact = PredictionArtifact.load(self.artifact_path)
            with self._state_lock:
                unchanged = artifact.checksum == self.state.checksum
            if unchanged:
                with self._state_lock:
                    self.state.degraded = False
                    self.state.last_error = ""
                return {
                    "outcome": "unchanged",
                    "reason": reason,
                    "checksum": artifact.checksum,
                }
            engine = QueryEngine(artifact, cache_size=self.cache_size)
            self.ref.swap(engine)
            with self._state_lock:
                self.state.generation += 1
                self.state.checksum = artifact.checksum
                self.state.degraded = False
                self.state.last_error = ""
                self.state.loaded_wall = time.time()
                generation = self.state.generation
            self._reloads.inc()
            get_tracer().event(
                EVENT_SERVE_RELOAD,
                outcome="reloaded",
                reason=reason,
                checksum=artifact.checksum,
            )
            logger.info(
                "hot-swapped artifact %s (generation %d, checksum %s..., "
                "%d pairs) via %s",
                self.artifact_path, generation, artifact.checksum[:12],
                artifact.pair_count, reason,
            )
            if self.on_swap is not None:
                self.on_swap(engine)
            return {
                "outcome": "reloaded",
                "reason": reason,
                "generation": generation,
                "checksum": artifact.checksum,
            }
        except ArtifactError as error:
            with self._state_lock:
                self.state.degraded = True
                self.state.last_error = str(error)
                self.state.failures += 1
            self._reload_failures.inc()
            get_tracer().event(
                EVENT_SERVE_RELOAD,
                outcome="failed",
                reason=reason,
                error=str(error),
            )
            logger.warning(
                "reload of %s failed (%s); still serving the previous "
                "artifact in degraded mode", self.artifact_path, error,
            )
            return {"outcome": "failed", "reason": reason, "error": str(error)}
        finally:
            self._reload_seconds.observe(time.perf_counter() - started)
            self._reload_lock.release()


class ArtifactWatcher:
    """Polls the artifact file and reloads when its signature changes.

    The signature is ``(mtime_ns, size)`` — atomic ``os.replace`` writes
    (the only way artifacts are produced) always change it.  A signature
    is attempted at most once, so a corrupted write degrades the server
    exactly once instead of hammering the reload path every tick.
    """

    def __init__(
        self,
        coordinator: ReloadCoordinator,
        interval: float = 2.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"watch interval must be positive, got {interval}")
        self.coordinator = coordinator
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._attempted = self._signature()

    def _signature(self) -> tuple[int, int] | None:
        try:
            stat = self.coordinator.artifact_path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def poll_once(self) -> dict | None:
        """One watch tick; returns the reload result if one was triggered."""
        signature = self._signature()
        if signature is None or signature == self._attempted:
            return None
        self._attempted = signature
        return self.coordinator.reload(reason="watcher")

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="artifact-watcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
