"""The ``repro serve`` HTTP/JSON API (stdlib only).

A :class:`PredictionServer` wraps one :class:`~repro.serve.engine.QueryEngine`
in a threaded ``http.server`` with six GET endpoints and one POST::

    /paths?origin=ASN&observer=ASN        predicted AS-path set
    /diversity?origin=ASN&observer=ASN    route-diversity summary
    /lookup?target=IP|CIDR&observer=ASN   longest-prefix-match + paths
    /healthz                              liveness + artifact + reload state
    /readyz                               readiness (503 while draining)
    /metrics                              metrics-registry snapshot
    POST /-/reload                        trigger a hot-swap reload

``/metrics`` defaults to the JSON snapshot but serves the Prometheus
text exposition when asked — either explicitly (``?format=prometheus``)
or through Accept-header negotiation (``Accept: text/plain`` or an
OpenMetrics type), so a stock Prometheus scrape config works unchanged.

The engine lives behind an RCU-style :class:`~repro.serve.reload.EngineRef`:
each request reads the reference once and answers entirely from that
engine, so a hot swap (SIGHUP, ``POST /-/reload``, or the artifact
watcher) never disturbs an in-flight request.  Query endpoints pass
through the :class:`~repro.serve.admission.AdmissionController` when one
is configured — overload sheds fast 503s with ``Retry-After`` instead of
queueing unboundedly; ``/healthz`` / ``/readyz`` / ``/metrics`` bypass
admission so an overloaded server can still tell its load balancer.

Every response body is JSON.  Failures are structured, not stack traces:
``{"error": {"status": 400, "kind": "...", "message": "..."}}`` with 400
for malformed requests, 404 for unknown ASNs/targets, 503 for origins
the compiler quarantined (and for shed or draining requests), and 500
(with the exception name, not the traceback) for anything unexpected.
``serve.http_responses`` counts *successes only*; errors flow through
``serve.http_errors``, and clients that hang up mid-response are
swallowed and counted as ``serve.client_disconnects``, never raised out
of the handler thread.  Each connection gets a socket timeout so a stuck
client cannot pin a handler thread forever.

Shutdown mirrors the PR-4 supervised-pool contract: SIGINT/SIGTERM stops
accepting, in-flight requests get a bounded grace period to finish
(``block_on_close`` + non-daemon handler threads), a ``drain`` event and
counter flow through the observability layer, and :func:`run_server`
returns cleanly so the CLI can exit 0 — a server asked to stop that
stops *is* success.  While draining, ``/healthz`` answers 503 with
``"status": "draining"`` so load balancers eject the instance.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.obs.metrics import get_registry, render_prometheus
from repro.obs.trace import get_tracer
from repro.serve.admission import AdmissionController, Rejection, Ticket
from repro.serve.engine import (
    BAD_TARGET,
    QUARANTINED,
    UNKNOWN_OBSERVER,
    UNKNOWN_ORIGIN,
    UNKNOWN_TARGET,
    QueryEngine,
    QueryError,
)
from repro.serve.reload import ArtifactWatcher, EngineRef, ReloadCoordinator

logger = logging.getLogger(__name__)

DEFAULT_PORT = 8321
DEFAULT_REQUEST_TIMEOUT = 10.0

RELOAD_ROUTE = "/-/reload"
"""POST here to trigger a hot-swap reload (mirrors SIGHUP)."""

_STATUS_BY_KIND = {
    UNKNOWN_ORIGIN: 404,
    UNKNOWN_OBSERVER: 404,
    UNKNOWN_TARGET: 404,
    BAD_TARGET: 400,
    QUARANTINED: 503,
}

_OPS_ROUTES = frozenset({"/healthz", "/readyz", "/metrics"})
"""Endpoints exempt from admission control (observability must survive
the very overload it reports)."""

EVENT_SERVE_DRAIN = "serve-drain"
"""Tracer event emitted when a signal starts the drain."""


class _Handler(BaseHTTPRequestHandler):
    """One request; the server instance carries the engine and counters."""

    server: "PredictionServer"
    protocol_version = "HTTP/1.1"
    # Set per-server in PredictionServer.__init__ (socket read timeout).
    timeout = DEFAULT_REQUEST_TIMEOUT

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        started = time.perf_counter()
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        ticket: Ticket | None = None
        try:
            if route == RELOAD_ROUTE:
                self._send_error(
                    405, "method-not-allowed",
                    f"use POST {RELOAD_ROUTE} to trigger a reload",
                )
                return
            handler = self.server.routes.get(route)
            if handler is None:
                self._send_error(
                    404, "unknown-route",
                    f"no such endpoint {route!r}; try /paths /diversity "
                    "/lookup /healthz /readyz /metrics",
                )
                return
            if route not in _OPS_ROUTES:
                ticket = self._pass_admission(route)
                if ticket is None and self.server.admission is not None:
                    return  # shed or draining; the 503 is already sent
                if self.server.handler_delay > 0:
                    time.sleep(self.server.handler_delay)
            status, body = handler(self, query)
            if isinstance(body, str):
                self._send_text(status, body)
            else:
                self._send_json(status, body)
        except QueryError as error:
            self._send_error(
                _STATUS_BY_KIND.get(error.kind, 400), error.kind, str(error)
            )
        except (BrokenPipeError, ConnectionResetError):
            self._count_disconnect()
        except Exception as error:  # noqa: BLE001 - 500 boundary
            logger.exception("unhandled error serving %s", self.path)
            self._send_error(
                500, "internal-error",
                f"{type(error).__name__} while serving {route}",
            )
        finally:
            if ticket is not None:
                self.server.admission.release(ticket)
            self.server.request_seconds.observe(time.perf_counter() - started)

    def do_POST(self) -> None:  # noqa: N802 - http.server's naming
        started = time.perf_counter()
        route = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            if route != RELOAD_ROUTE:
                self._send_error(
                    404, "unknown-route",
                    f"no such POST endpoint {route!r}; only {RELOAD_ROUTE}",
                )
                return
            reloader = self.server.reloader
            if reloader is None:
                self._send_error(
                    503, "reload-unavailable",
                    "this server was started without an artifact path; "
                    "restart 'repro serve' to change artifacts",
                )
                return
            result = reloader.reload(reason="http")
            outcome = result["outcome"]
            if outcome in ("reloaded", "unchanged"):
                self._send_json(200, result)
            elif outcome == "busy":
                self._send_json(409, result)
            else:  # failed: old artifact still serving, degraded
                self._send_json(500, result)
                self.server.error_responses.inc()
        except (BrokenPipeError, ConnectionResetError):
            self._count_disconnect()
        except Exception as error:  # noqa: BLE001 - 500 boundary
            logger.exception("unhandled error serving %s", self.path)
            self._send_error(
                500, "internal-error",
                f"{type(error).__name__} while serving {route}",
            )
        finally:
            self.server.request_seconds.observe(time.perf_counter() - started)

    def _pass_admission(self, route: str) -> Ticket | None:
        """Run the admission gate; sends the 503 itself on rejection.

        Returns the ticket to release, or None when there is no gate or
        the request was shed (callers distinguish via ``server.admission``).
        """
        admission = self.server.admission
        if admission is None:
            return None
        if self.server.draining.is_set():
            self._send_error(
                503, "draining",
                "server is draining; retry against another instance",
                retry_after=1,
            )
            return None
        outcome = admission.admit(route)
        if isinstance(outcome, Rejection):
            self._send_error(
                503, outcome.reason,
                "overloaded: request shed by admission control "
                f"({outcome.reason}); retry after the indicated delay",
                retry_after=outcome.retry_after,
            )
            return None
        return outcome

    # ------------------------------------------------------------------
    # Endpoint bodies (return (status, payload))
    # ------------------------------------------------------------------

    def _endpoint_paths(self, query: dict) -> tuple[int, dict]:
        origin = self._asn_param(query, "origin")
        observer = self._asn_param(query, "observer")
        return 200, self.server.engine.paths(origin, observer).to_dict()

    def _endpoint_diversity(self, query: dict) -> tuple[int, dict]:
        origin = self._asn_param(query, "origin")
        observer = self._asn_param(query, "observer")
        return 200, self.server.engine.diversity(origin, observer).to_dict()

    def _endpoint_lookup(self, query: dict) -> tuple[int, dict]:
        target = self._str_param(query, "target")
        observer = self._asn_param(query, "observer")
        return 200, self.server.engine.lookup(target, observer).to_dict()

    def _endpoint_healthz(self, query: dict) -> tuple[int, dict]:
        del query
        server = self.server
        draining = server.draining.is_set()
        degraded = (
            server.reloader is not None and server.reloader.degraded
        )
        engine = server.engine
        body = {
            "status": (
                "draining" if draining
                else "degraded" if degraded
                else "ok"
            ),
            "version": __version__,
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - server.started_at, 3),
            "artifact": engine.describe(),
            "cache": engine.cache_stats(),
        }
        if server.reloader is not None:
            body["reload"] = server.reloader.describe()
        if server.admission is not None:
            body["admission"] = server.admission.describe()
        # Liveness stays 200 while degraded (the old artifact still
        # answers); draining is 503 so load balancers stop routing here.
        return (503 if draining else 200), body

    def _endpoint_readyz(self, query: dict) -> tuple[int, dict]:
        del query
        server = self.server
        if server.draining.is_set():
            return 503, {"ready": False, "status": "draining"}
        degraded = (
            server.reloader is not None and server.reloader.degraded
        )
        return 200, {
            "ready": True,
            "status": "degraded" if degraded else "ok",
        }

    def _endpoint_metrics(self, query: dict) -> tuple[int, dict | str]:
        if self._wants_prometheus(query):
            return 200, render_prometheus()
        return 200, get_registry().snapshot()

    def _wants_prometheus(self, query: dict) -> bool:
        """Explicit ``?format=`` wins; otherwise negotiate on Accept."""
        values = query.get("format")
        if values and values[0]:
            fmt = values[0].lower()
            if fmt == "prometheus":
                return True
            if fmt == "json":
                return False
            raise QueryError(
                BAD_TARGET,
                f"unknown metrics format {fmt!r}; try 'json' or 'prometheus'",
            )
        accept = self.headers.get("Accept") or ""
        return "text/plain" in accept or "openmetrics" in accept

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _asn_param(self, query: dict, name: str) -> int:
        raw = self._str_param(query, name)
        try:
            return int(raw)
        except ValueError:
            raise QueryError(
                BAD_TARGET, f"query parameter {name}={raw!r} is not an ASN"
            ) from None

    def _str_param(self, query: dict, name: str) -> str:
        values = query.get(name)
        if not values or not values[0]:
            raise QueryError(
                BAD_TARGET, f"missing required query parameter {name!r}"
            )
        return values[0]

    def _send_json(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("ascii")
        self._write_response(
            status, "application/json", body, extra_headers
        )
        if status < 400:
            self.server.responses.inc()

    def _send_text(self, status: int, body_text: str) -> None:
        body = body_text.encode("utf-8")
        self._write_response(
            status, "text/plain; version=0.0.4; charset=utf-8", body
        )
        if status < 400:
            self.server.responses.inc()

    def _send_error(
        self,
        status: int,
        kind: str,
        message: str,
        retry_after: int | None = None,
    ) -> None:
        self.server.error_responses.inc()
        headers = (
            {"Retry-After": str(retry_after)}
            if retry_after is not None
            else None
        )
        self._send_json(
            status,
            {"error": {"status": status, "kind": kind, "message": message}},
            extra_headers=headers,
        )

    def _write_response(
        self,
        status: int,
        content_type: str,
        body: bytes,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        """The only place bytes hit the socket: disconnect-safe.

        A client that hangs up while we write its 4xx/5xx (or 2xx) body
        must cost us a counter bump, never an exception escaping the
        handler thread."""
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self._count_disconnect()

    def _count_disconnect(self) -> None:
        self.server.client_disconnects.inc()
        self.close_connection = True
        logger.debug("client %s disconnected mid-response", self.client_address)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)


# Route table: bound methods are looked up per request so handler
# subclassing in tests stays possible.
_ROUTES: dict[str, Callable] = {
    "/paths": _Handler._endpoint_paths,
    "/diversity": _Handler._endpoint_diversity,
    "/lookup": _Handler._endpoint_lookup,
    "/healthz": _Handler._endpoint_healthz,
    "/readyz": _Handler._endpoint_readyz,
    "/metrics": _Handler._endpoint_metrics,
}


class PredictionServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one hot-swappable query engine.

    Handler threads are non-daemon and ``block_on_close`` is on, so
    :meth:`drain` (shutdown + close) waits for in-flight requests — the
    graceful part of the shutdown contract.  The per-connection socket
    timeout bounds how long that wait can take.

    ``engine`` is a read-only property over the :class:`EngineRef`; a
    :class:`~repro.serve.reload.ReloadCoordinator` attached as
    ``self.reloader`` swaps the reference without the server noticing.
    ``reuse_port`` sets ``SO_REUSEPORT`` before binding so N sibling
    processes can share one port under the serve supervisor.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        admission: AdmissionController | None = None,
        reuse_port: bool = False,
        handler_delay: float = 0.0,
    ) -> None:
        self.engine_ref = EngineRef(engine)
        self.reloader: ReloadCoordinator | None = None
        self.admission = admission
        self.reuse_port = reuse_port
        self.handler_delay = handler_delay
        self.routes = dict(_ROUTES)
        self.started_at = time.monotonic()
        self.draining = threading.Event()
        registry = get_registry()
        self.responses = registry.counter("serve.http_responses")
        self.error_responses = registry.counter("serve.http_errors")
        self.client_disconnects = registry.counter("serve.client_disconnects")
        self.request_seconds = registry.histogram("serve.request_seconds")
        handler = type(
            "_BoundHandler", (_Handler,), {"timeout": request_timeout}
        )
        super().__init__((host, port), handler)

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        super().server_bind()

    @property
    def engine(self) -> QueryEngine:
        """The engine new requests answer from (reads the live ref)."""
        return self.engine_ref.get()

    @property
    def address(self) -> str:
        """The bound ``host:port`` (port resolved when 0 was requested)."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def drain(self, signum: int | None = None) -> None:
        """Stop accepting, finish in-flight requests, close sockets."""
        if self.draining.is_set():
            return
        self.draining.set()
        get_registry().counter("serve.drains").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(EVENT_SERVE_DRAIN, signal=signum, address=self.address)
        logger.warning(
            "draining on signal %s: no new connections, in-flight requests "
            "get up to the request timeout to finish", signum,
        )
        self.shutdown()      # stops the serve_forever loop
        self.server_close()  # block_on_close waits for handler threads


def run_server(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ready: threading.Event | None = None,
    install_signal_handlers: bool = True,
    artifact_path: str | Path | None = None,
    cache_size: int = 4096,
    admission: AdmissionController | None = None,
    watch_interval: float | None = None,
    reuse_port: bool = False,
    handler_delay: float = 0.0,
    announce: bool = True,
    on_ready: Callable[[PredictionServer], None] | None = None,
) -> int:
    """Serve until SIGINT/SIGTERM, then drain gracefully; returns 0.

    The accept loop runs in a worker thread while the calling thread
    waits for the stop event, so a signal handler (which Python always
    runs on the main thread) can trigger ``shutdown()`` without
    deadlocking the loop it interrupts.  ``ready`` (if given) is set once
    the socket is bound and accepting — tests use it to know when to
    connect; ``on_ready`` (if given) receives the bound server — the
    serve supervisor's workers use it to report their address upstream.

    When ``artifact_path`` is given the server supports hot-swap
    reloads: SIGHUP and ``POST /-/reload`` both re-stage the artifact
    through a :class:`~repro.serve.reload.ReloadCoordinator`, and
    ``watch_interval`` (seconds, None disables) additionally starts an
    :class:`~repro.serve.reload.ArtifactWatcher` that reloads whenever
    the file on disk changes.  The server is constructed (and the port
    bound) *before* any signal handler is touched, so a failed bind
    leaves the caller's handlers exactly as they were.
    """
    stop = threading.Event()
    received: list[int] = []
    hup_pending = threading.Event()

    wake = threading.Event()

    def handle_stop(signum, frame):  # noqa: ARG001 - signal signature
        received.append(signum)
        stop.set()
        wake.set()

    def handle_hup(signum, frame):  # noqa: ARG001 - signal signature
        hup_pending.set()
        wake.set()

    server = PredictionServer(
        engine,
        host=host,
        port=port,
        request_timeout=request_timeout,
        admission=admission,
        reuse_port=reuse_port,
        handler_delay=handler_delay,
    )
    watcher: ArtifactWatcher | None = None
    if artifact_path is not None:
        server.reloader = ReloadCoordinator(
            server.engine_ref, artifact_path, cache_size=cache_size
        )
        if watch_interval is not None:
            watcher = ArtifactWatcher(server.reloader, interval=watch_interval)
    previous = {}
    if install_signal_handlers:
        handled = [(signal.SIGINT, handle_stop), (signal.SIGTERM, handle_stop)]
        if server.reloader is not None and hasattr(signal, "SIGHUP"):
            handled.append((signal.SIGHUP, handle_hup))
        for signum, handler_fn in handled:
            try:
                previous[signum] = signal.signal(signum, handler_fn)
            except ValueError:  # not the main thread
                break
    loop = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=False
    )
    loop.start()
    if watcher is not None:
        watcher.start()
    logger.info("serving predictions on http://%s", server.address)
    if announce:
        print(f"serving predictions on http://{server.address}", flush=True)
    if on_ready is not None:
        on_ready(server)
    if ready is not None:
        ready.set()
    try:
        while not stop.is_set():
            wake.wait()
            wake.clear()
            if hup_pending.is_set() and server.reloader is not None:
                hup_pending.clear()
                server.reloader.reload(reason="sighup")
    finally:
        if watcher is not None:
            watcher.stop()
        signum = received[0] if received else None
        server.drain(signum)
        loop.join()
        for restored_signum, handler_fn in previous.items():
            signal.signal(restored_signum, handler_fn)
        stats = server.engine.cache_stats()
        if announce:
            print(
                f"drained on signal {signum}: served {stats['queries']} "
                f"quer{'y' if stats['queries'] == 1 else 'ies'} "
                f"({stats['hits']} cache hits), shut down cleanly",
                flush=True,
            )
    return 0
