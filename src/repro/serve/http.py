"""The ``repro serve`` HTTP/JSON API (stdlib only).

A :class:`PredictionServer` wraps one :class:`~repro.serve.engine.QueryEngine`
in a threaded ``http.server`` with five GET endpoints::

    /paths?origin=ASN&observer=ASN        predicted AS-path set
    /diversity?origin=ASN&observer=ASN    route-diversity summary
    /lookup?target=IP|CIDR&observer=ASN   longest-prefix-match + paths
    /healthz                              liveness + artifact summary
    /metrics                              metrics-registry snapshot

``/metrics`` defaults to the JSON snapshot but serves the Prometheus
text exposition when asked — either explicitly (``?format=prometheus``)
or through Accept-header negotiation (``Accept: text/plain`` or an
OpenMetrics type), so a stock Prometheus scrape config works unchanged.

Every response body is JSON.  Failures are structured, not stack traces:
``{"error": {"status": 400, "kind": "...", "message": "..."}}`` with 400
for malformed requests, 404 for unknown ASNs/targets, 503 for origins
the compiler quarantined, and 500 (with the exception name, not the
traceback) for anything unexpected.  Each connection gets a socket
timeout so a stuck client cannot pin a handler thread forever.

Shutdown mirrors the PR-4 supervised-pool contract: SIGINT/SIGTERM stops
accepting, in-flight requests get a bounded grace period to finish
(``block_on_close`` + non-daemon handler threads), a ``drain`` event and
counter flow through the observability layer, and :func:`run_server`
returns cleanly so the CLI can exit 0 — a server asked to stop that
stops *is* success.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.obs.metrics import get_registry, render_prometheus
from repro.obs.trace import get_tracer
from repro.serve.engine import (
    BAD_TARGET,
    QUARANTINED,
    UNKNOWN_OBSERVER,
    UNKNOWN_ORIGIN,
    UNKNOWN_TARGET,
    QueryEngine,
    QueryError,
)

logger = logging.getLogger(__name__)

DEFAULT_PORT = 8321
DEFAULT_REQUEST_TIMEOUT = 10.0

_STATUS_BY_KIND = {
    UNKNOWN_ORIGIN: 404,
    UNKNOWN_OBSERVER: 404,
    UNKNOWN_TARGET: 404,
    BAD_TARGET: 400,
    QUARANTINED: 503,
}

EVENT_SERVE_DRAIN = "serve-drain"
"""Tracer event emitted when a signal starts the drain."""


class _Handler(BaseHTTPRequestHandler):
    """One request; the server instance carries the engine and counters."""

    server: "PredictionServer"
    protocol_version = "HTTP/1.1"
    # Set per-server in PredictionServer.__init__ (socket read timeout).
    timeout = DEFAULT_REQUEST_TIMEOUT

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        started = time.perf_counter()
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        try:
            handler = self.server.routes.get(route)
            if handler is None:
                self._send_error(
                    404, "unknown-route",
                    f"no such endpoint {route!r}; try /paths /diversity "
                    "/lookup /healthz /metrics",
                )
                return
            status, body = handler(self, query)
            if isinstance(body, str):
                self._send_text(status, body)
            else:
                self._send_json(status, body)
        except QueryError as error:
            self._send_error(
                _STATUS_BY_KIND.get(error.kind, 400), error.kind, str(error)
            )
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to answer
        except Exception as error:  # noqa: BLE001 - 500 boundary
            logger.exception("unhandled error serving %s", self.path)
            self._send_error(
                500, "internal-error",
                f"{type(error).__name__} while serving {route}",
            )
        finally:
            self.server.request_seconds.observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Endpoint bodies (return (status, payload))
    # ------------------------------------------------------------------

    def _endpoint_paths(self, query: dict) -> tuple[int, dict]:
        origin = self._asn_param(query, "origin")
        observer = self._asn_param(query, "observer")
        return 200, self.server.engine.paths(origin, observer).to_dict()

    def _endpoint_diversity(self, query: dict) -> tuple[int, dict]:
        origin = self._asn_param(query, "origin")
        observer = self._asn_param(query, "observer")
        return 200, self.server.engine.diversity(origin, observer).to_dict()

    def _endpoint_lookup(self, query: dict) -> tuple[int, dict]:
        target = self._str_param(query, "target")
        observer = self._asn_param(query, "observer")
        return 200, self.server.engine.lookup(target, observer).to_dict()

    def _endpoint_healthz(self, query: dict) -> tuple[int, dict]:
        del query
        server = self.server
        return 200, {
            "status": "draining" if server.draining.is_set() else "ok",
            "version": __version__,
            "uptime_seconds": round(time.monotonic() - server.started_at, 3),
            "artifact": server.engine.describe(),
            "cache": server.engine.cache_stats(),
        }

    def _endpoint_metrics(self, query: dict) -> tuple[int, dict | str]:
        if self._wants_prometheus(query):
            return 200, render_prometheus()
        return 200, get_registry().snapshot()

    def _wants_prometheus(self, query: dict) -> bool:
        """Explicit ``?format=`` wins; otherwise negotiate on Accept."""
        values = query.get("format")
        if values and values[0]:
            fmt = values[0].lower()
            if fmt == "prometheus":
                return True
            if fmt == "json":
                return False
            raise QueryError(
                BAD_TARGET,
                f"unknown metrics format {fmt!r}; try 'json' or 'prometheus'",
            )
        accept = self.headers.get("Accept") or ""
        return "text/plain" in accept or "openmetrics" in accept

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _asn_param(self, query: dict, name: str) -> int:
        raw = self._str_param(query, name)
        try:
            return int(raw)
        except ValueError:
            raise QueryError(
                BAD_TARGET, f"query parameter {name}={raw!r} is not an ASN"
            ) from None

    def _str_param(self, query: dict, name: str) -> str:
        values = query.get(name)
        if not values or not values[0]:
            raise QueryError(
                BAD_TARGET, f"missing required query parameter {name!r}"
            )
        return values[0]

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("ascii")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.responses.inc()

    def _send_text(self, status: int, body_text: str) -> None:
        body = body_text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.responses.inc()

    def _send_error(self, status: int, kind: str, message: str) -> None:
        self.server.error_responses.inc()
        self._send_json(
            status,
            {"error": {"status": status, "kind": kind, "message": message}},
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)


# Route table: bound methods are looked up per request so handler
# subclassing in tests stays possible.
_ROUTES: dict[str, Callable] = {
    "/paths": _Handler._endpoint_paths,
    "/diversity": _Handler._endpoint_diversity,
    "/lookup": _Handler._endpoint_lookup,
    "/healthz": _Handler._endpoint_healthz,
    "/metrics": _Handler._endpoint_metrics,
}


class PredictionServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one query engine.

    Handler threads are non-daemon and ``block_on_close`` is on, so
    :meth:`drain` (shutdown + close) waits for in-flight requests — the
    graceful part of the shutdown contract.  The per-connection socket
    timeout bounds how long that wait can take.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.engine = engine
        self.routes = dict(_ROUTES)
        self.started_at = time.monotonic()
        self.draining = threading.Event()
        registry = get_registry()
        self.responses = registry.counter("serve.http_responses")
        self.error_responses = registry.counter("serve.http_errors")
        self.request_seconds = registry.histogram("serve.request_seconds")
        handler = type(
            "_BoundHandler", (_Handler,), {"timeout": request_timeout}
        )
        super().__init__((host, port), handler)

    @property
    def address(self) -> str:
        """The bound ``host:port`` (port resolved when 0 was requested)."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def drain(self, signum: int | None = None) -> None:
        """Stop accepting, finish in-flight requests, close sockets."""
        if self.draining.is_set():
            return
        self.draining.set()
        get_registry().counter("serve.drains").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(EVENT_SERVE_DRAIN, signal=signum, address=self.address)
        logger.warning(
            "draining on signal %s: no new connections, in-flight requests "
            "get up to the request timeout to finish", signum,
        )
        self.shutdown()      # stops the serve_forever loop
        self.server_close()  # block_on_close waits for handler threads


def run_server(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ready: threading.Event | None = None,
    install_signal_handlers: bool = True,
) -> int:
    """Serve until SIGINT/SIGTERM, then drain gracefully; returns 0.

    The accept loop runs in a worker thread while the calling thread
    waits for the stop event, so a signal handler (which Python always
    runs on the main thread) can trigger ``shutdown()`` without
    deadlocking the loop it interrupts.  ``ready`` (if given) is set once
    the socket is bound and accepting — tests use it to know when to
    connect.
    """
    stop = threading.Event()
    received: list[int] = []

    def handle_signal(signum, frame):  # noqa: ARG001 - signal signature
        received.append(signum)
        stop.set()

    server = PredictionServer(
        engine, host=host, port=port, request_timeout=request_timeout
    )
    previous = {}
    if install_signal_handlers:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handle_signal)
            except ValueError:  # not the main thread
                break
    loop = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=False
    )
    loop.start()
    logger.info("serving predictions on http://%s", server.address)
    print(f"serving predictions on http://{server.address}", flush=True)
    if ready is not None:
        ready.set()
    try:
        stop.wait()
    finally:
        signum = received[0] if received else None
        server.drain(signum)
        loop.join()
        for restored_signum, handler in previous.items():
            signal.signal(restored_signum, handler)
        stats = engine.cache_stats()
        print(
            f"drained on signal {signum}: served {stats['queries']} "
            f"quer{'y' if stats['queries'] == 1 else 'ies'} "
            f"({stats['hits']} cache hits), shut down cleanly",
            flush=True,
        )
    return 0
