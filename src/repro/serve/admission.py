"""Overload protection for the serving path: admit, shed, or break.

An unprotected ``ThreadingHTTPServer`` admits every connection and
spawns a thread for it; under overload that queues unboundedly, latency
climbs past any useful deadline, and the server falls over serving
requests nobody is still waiting for.  This module bounds the damage
with three nested mechanisms, all metered through the registry:

**Bounded admission.**  At most ``max_inflight`` requests execute at
once.  The excess is shed *immediately* with a 503 carrying
``Retry-After`` — a fast rejection the client can act on beats a slow
answer it already timed out on.

**Per-request deadlines.**  Every admitted request carries a deadline
(``deadline_seconds`` from admission).  Handlers that finish late are
counted (``serve.deadline_exceeded``) and the headroom distribution is
recorded, so "p99 within deadline" is a measurable contract, not a hope.

**Sliding-window breaker.**  When sheds keep happening (more than
``breaker_threshold`` inside ``breaker_window`` seconds), bounded
admission alone is not clearing the overload — so the breaker opens on
the *most expensive route* (highest observed mean cost in the window)
and sheds it outright for ``breaker_cooloff`` seconds.  Cheap endpoints
keep answering; the endpoint that is burning the capacity pays for it.

Operational endpoints (``/healthz``, ``/readyz``, ``/metrics``) never
pass through admission — an overloaded server that cannot tell its load
balancer it is overloaded cannot recover.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs.metrics import get_registry, labelled

DEFAULT_MAX_INFLIGHT = 64
"""Concurrent requests admitted before load-shedding starts."""

DEFAULT_DEADLINE_SECONDS = 5.0
"""Wall-clock budget one admitted request may spend."""


@dataclass
class Ticket:
    """One admitted request: its route, start time, and deadline."""

    route: str
    started: float
    deadline_seconds: float

    @property
    def remaining(self) -> float:
        """Seconds left before the deadline (negative when blown)."""
        return self.deadline_seconds - (time.monotonic() - self.started)


@dataclass
class Rejection:
    """Why a request was shed, and when to come back."""

    reason: str
    retry_after: int
    """Whole seconds for the ``Retry-After`` header (always >= 1)."""


class AdmissionController:
    """Thread-safe admission gate shared by all handler threads."""

    def __init__(
        self,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        deadline_seconds: float = DEFAULT_DEADLINE_SECONDS,
        breaker_window: float = 10.0,
        breaker_threshold: int = 20,
        breaker_cooloff: float = 5.0,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        self.max_inflight = max_inflight
        self.deadline_seconds = deadline_seconds
        self.breaker_window = breaker_window
        self.breaker_threshold = breaker_threshold
        self.breaker_cooloff = breaker_cooloff
        self._lock = threading.Lock()
        self._inflight = 0
        # Sliding windows: shed timestamps, and (timestamp, seconds) cost
        # samples per route, trimmed lazily to `breaker_window`.
        self._sheds: deque[float] = deque()
        self._costs: dict[str, deque[tuple[float, float]]] = {}
        self._broken_route: str | None = None
        self._broken_until = 0.0
        registry = get_registry()
        self._inflight_gauge = registry.gauge("serve.inflight")
        self._admitted = registry.counter("serve.admitted")
        self._shed = registry.counter("serve.shed")
        self._breaker_opens = registry.counter("serve.breaker_opens")
        self._deadline_exceeded = registry.counter("serve.deadline_exceeded")
        self._headroom = registry.histogram("serve.deadline_headroom_seconds")

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------

    def admit(self, route: str) -> Ticket | Rejection:
        """Admit ``route`` or explain the shed; callers must
        :meth:`release` every :class:`Ticket` they receive."""
        now = time.monotonic()
        with self._lock:
            if self._broken_route == route:
                if now < self._broken_until:
                    remaining = self._broken_until - now
                    self._record_shed(now, route, "breaker-open")
                    return Rejection(
                        reason="breaker-open",
                        retry_after=max(1, math.ceil(remaining)),
                    )
                self._broken_route = None  # cooloff elapsed: half-open
            if self._inflight >= self.max_inflight:
                self._record_shed(now, route, "overload")
                self._maybe_open_breaker(now)
                return Rejection(reason="overload", retry_after=1)
            self._inflight += 1
            self._inflight_gauge.add(1)
            self._admitted.inc()
        return Ticket(
            route=route, started=now, deadline_seconds=self.deadline_seconds
        )

    def release(self, ticket: Ticket) -> None:
        """Finish one admitted request: record its cost and headroom."""
        now = time.monotonic()
        elapsed = now - ticket.started
        headroom = ticket.deadline_seconds - elapsed
        self._headroom.observe(headroom)
        if headroom < 0:
            self._deadline_exceeded.inc()
        with self._lock:
            self._inflight -= 1
            self._inflight_gauge.add(-1)
            samples = self._costs.setdefault(ticket.route, deque())
            samples.append((now, elapsed))
            self._trim(samples, now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def describe(self) -> dict:
        """Snapshot for ``/healthz``."""
        now = time.monotonic()
        with self._lock:
            self._trim(self._sheds, now)
            broken = (
                self._broken_route if now < self._broken_until else None
            )
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "deadline_seconds": self.deadline_seconds,
                "recent_sheds": len(self._sheds),
                "breaker_open_route": broken,
            }

    # ------------------------------------------------------------------
    # Internals (call with self._lock held)
    # ------------------------------------------------------------------

    def _record_shed(self, now: float, route: str, reason: str) -> None:
        self._sheds.append(now)
        self._trim(self._sheds, now)
        self._shed.inc()
        get_registry().counter(
            labelled("serve.shed", route=route, reason=reason)
        ).inc()

    def _maybe_open_breaker(self, now: float) -> None:
        if self._broken_route is not None and now < self._broken_until:
            return
        if len(self._sheds) <= self.breaker_threshold:
            return
        route = self._most_expensive_route(now)
        if route is None:
            return
        self._broken_route = route
        self._broken_until = now + self.breaker_cooloff
        self._breaker_opens.inc()
        get_registry().counter(
            labelled("serve.breaker_opens", route=route)
        ).inc()

    def _most_expensive_route(self, now: float) -> str | None:
        """Highest mean in-window cost; the route the breaker sheds."""
        best_route, best_cost = None, -1.0
        for route, samples in self._costs.items():
            self._trim(samples, now)
            if not samples:
                continue
            mean = sum(seconds for _, seconds in samples) / len(samples)
            if mean > best_cost:
                best_route, best_cost = route, mean
        return best_route

    def _trim(self, window: deque, now: float) -> None:
        horizon = now - self.breaker_window
        while window and _stamp(window[0]) < horizon:
            window.popleft()


def _stamp(entry: float | tuple[float, float]) -> float:
    return entry[0] if isinstance(entry, tuple) else entry
