"""Prediction serving: compile once, answer cheaply, serve over HTTP.

The ROADMAP's read path.  Every question the refined model can answer —
"which AS-paths would observer X use to reach origin Y?" — used to cost
a full per-prefix simulation through :mod:`repro.core.predict`.  This
package splits that cost in two:

* :mod:`repro.serve.compile` — simulate every canonical prefix *once*
  (optionally through the supervised parallel pool) and freeze every
  (origin, observer) answer into a versioned, checksummed
  :class:`~repro.serve.artifact.PredictionArtifact` file.
* :mod:`repro.serve.engine` — load an artifact read-only and answer
  ``paths`` / ``diversity`` / ``lookup`` (plus batch variants) through a
  bounded LRU cache, with ``serve.*`` metrics flowing through the
  observability registry.
* :mod:`repro.serve.http` — a stdlib-only threaded HTTP/JSON API
  (``repro serve``) with structured errors and a graceful
  SIGINT/SIGTERM drain.

CLI: ``repro compile-artifact``, ``repro query``, ``repro serve``.
"""

from repro.serve.artifact import (
    MAGIC,
    SCHEMA_VERSION,
    PredictionArtifact,
    build_artifact,
)
from repro.serve.compile import CompileReport, compile_artifact
from repro.serve.engine import (
    DiversityAnswer,
    LookupAnswer,
    PathsAnswer,
    QueryEngine,
    QueryError,
)
from repro.serve.http import PredictionServer, run_server

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "CompileReport",
    "DiversityAnswer",
    "LookupAnswer",
    "PathsAnswer",
    "PredictionArtifact",
    "PredictionServer",
    "QueryEngine",
    "QueryError",
    "build_artifact",
    "compile_artifact",
    "run_server",
]
