"""Prediction serving: compile once, answer cheaply, serve over HTTP.

The ROADMAP's read path.  Every question the refined model can answer —
"which AS-paths would observer X use to reach origin Y?" — used to cost
a full per-prefix simulation through :mod:`repro.core.predict`.  This
package splits that cost in two:

* :mod:`repro.serve.compile` — simulate every canonical prefix *once*
  (optionally through the supervised parallel pool) and freeze every
  (origin, observer) answer into a versioned, checksummed
  :class:`~repro.serve.artifact.PredictionArtifact` file.
* :mod:`repro.serve.engine` — load an artifact read-only and answer
  ``paths`` / ``diversity`` / ``lookup`` (plus batch variants) through a
  bounded LRU cache, with ``serve.*`` metrics flowing through the
  observability registry.
* :mod:`repro.serve.http` — a stdlib-only threaded HTTP/JSON API
  (``repro serve``) with structured errors and a graceful
  SIGINT/SIGTERM drain.
* :mod:`repro.serve.reload` — zero-downtime hot swaps: SIGHUP /
  ``POST /-/reload`` / an :class:`~repro.serve.reload.ArtifactWatcher`
  stage a recompiled artifact off-thread and swap the engine behind an
  RCU-style :class:`~repro.serve.reload.EngineRef`; failed validation
  keeps the old artifact serving in degraded mode.
* :mod:`repro.serve.admission` — overload protection: bounded
  admission with per-request deadlines, load-shedding 503s carrying
  ``Retry-After``, and a sliding-window breaker that sheds the most
  expensive route first.
* :mod:`repro.serve.supervisor` — ``repro serve --workers N``: N
  ``SO_REUSEPORT`` server processes under a watchdog/heartbeat/restart
  supervisor, so a ``kill -9`` costs one worker, never the service.

CLI: ``repro compile-artifact``, ``repro query``, ``repro serve``.
"""

from repro.serve.admission import AdmissionController, Rejection, Ticket
from repro.serve.artifact import (
    MAGIC,
    SCHEMA_VERSION,
    PredictionArtifact,
    build_artifact,
)
from repro.serve.compile import CompileReport, compile_artifact
from repro.serve.engine import (
    DiversityAnswer,
    LookupAnswer,
    PathsAnswer,
    QueryEngine,
    QueryError,
)
from repro.serve.http import PredictionServer, run_server
from repro.serve.reload import (
    ArtifactWatcher,
    EngineRef,
    ReloadCoordinator,
    ReloadState,
)
from repro.serve.supervisor import ServeSupervisor, run_supervised

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "AdmissionController",
    "ArtifactWatcher",
    "CompileReport",
    "DiversityAnswer",
    "EngineRef",
    "LookupAnswer",
    "PathsAnswer",
    "PredictionArtifact",
    "PredictionServer",
    "QueryEngine",
    "QueryError",
    "Rejection",
    "ReloadCoordinator",
    "ReloadState",
    "ServeSupervisor",
    "Ticket",
    "build_artifact",
    "compile_artifact",
    "run_server",
    "run_supervised",
]
