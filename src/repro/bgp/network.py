"""The simulated network: ASes, routers, sessions and originations.

:class:`Network` is the mutable topology object shared by the ground-truth
substrate and the quasi-router model.  It owns routers (grouped into
:class:`ASNode` objects), directed sessions, prefix originations, and the
bookkeeping the engine needs to clear per-prefix state between simulation
runs.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.bgp.igp import IGPTopology
from repro.bgp.route import Route
from repro.bgp.router import Router, make_router_id
from repro.bgp.session import Session
from repro.errors import TopologyError
from repro.net.prefix import Prefix


class ASNode:
    """One autonomous system: a set of routers plus an optional IGP graph."""

    __slots__ = ("asn", "routers", "igp", "name")

    def __init__(self, asn: int, name: str | None = None):
        self.asn = asn
        self.routers: list[Router] = []
        self.igp = IGPTopology()
        self.name = name or f"AS{asn}"

    def router_ids(self) -> list[int]:
        """Ids of this AS's routers, in creation order."""
        return [router.router_id for router in self.routers]

    def __repr__(self) -> str:
        return f"ASNode({self.name}, routers={len(self.routers)})"


class Network:
    """A topology of ASes, routers and directed BGP sessions."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.ases: dict[int, ASNode] = {}
        self.routers: dict[int, Router] = {}
        self.sessions: dict[int, Session] = {}
        self._session_by_endpoints: dict[tuple[int, int], Session] = {}
        self._next_session_id = 1
        self.originations: dict[Prefix, list[int]] = {}
        self._touched: dict[Prefix, set[int]] = {}

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_as(self, asn: int, name: str | None = None) -> ASNode:
        """Create (or return the existing) AS ``asn``."""
        node = self.ases.get(asn)
        if node is None:
            node = ASNode(asn, name)
            self.ases[asn] = node
        return node

    def add_router(self, asn: int, name: str | None = None) -> Router:
        """Create a new router in AS ``asn`` with the next deterministic id."""
        node = self.add_as(asn)
        index = len(node.routers) + 1
        router_id = make_router_id(asn, index)
        if router_id in self.routers:
            raise TopologyError(f"duplicate router id {router_id:#x}")
        router = Router(router_id, asn, index, name)
        node.routers.append(router)
        node.igp.add_router(router_id)
        self.routers[router_id] = router
        return router

    def get_session(self, src: Router, dst: Router) -> Session | None:
        """The directed session from ``src`` to ``dst``, if any."""
        return self._session_by_endpoints.get((src.router_id, dst.router_id))

    def add_session(self, src: Router, dst: Router) -> Session:
        """Create the directed session ``src -> dst``."""
        key = (src.router_id, dst.router_id)
        if src is dst:
            raise TopologyError(f"session from {src.name} to itself")
        if key in self._session_by_endpoints:
            raise TopologyError(f"duplicate session {src.name} -> {dst.name}")
        session = Session(self._next_session_id, src, dst)
        self._next_session_id += 1
        self.sessions[session.session_id] = session
        self._session_by_endpoints[key] = session
        src.sessions_out.append(session)
        dst.sessions_in.append(session)
        return session

    def connect(self, a: Router, b: Router) -> tuple[Session, Session]:
        """Create the bidirectional peering between ``a`` and ``b``."""
        return self.add_session(a, b), self.add_session(b, a)

    def disconnect(self, a: Router, b: Router) -> None:
        """Tear down the peering between ``a`` and ``b`` (both directions)."""
        for src, dst in ((a, b), (b, a)):
            session = self.get_session(src, dst)
            if session is None:
                continue
            del self._session_by_endpoints[(src.router_id, dst.router_id)]
            del self.sessions[session.session_id]
            src.sessions_out.remove(session)
            dst.sessions_in.remove(session)

    def ibgp_route_reflection(
        self, reflectors: list[Router], clients: list[Router]
    ) -> None:
        """Wire an RFC 4456 route-reflection cluster.

        Every reflector peers with every client (marking the client) and
        the reflectors form a full mesh among themselves.  All routers
        must belong to the same AS.
        """
        asns = {router.asn for router in reflectors + clients}
        if len(asns) != 1:
            raise TopologyError(f"route reflection across ASes: {sorted(asns)}")
        for i, a in enumerate(reflectors):
            for b in reflectors[i + 1 :]:
                if self.get_session(a, b) is None:
                    self.connect(a, b)
        for reflector in reflectors:
            for client in clients:
                if self.get_session(reflector, client) is None:
                    self.connect(reflector, client)
                reflector.rr_clients.add(client.router_id)

    def ibgp_full_mesh(self, asn: int) -> None:
        """Create iBGP sessions between every router pair of AS ``asn``."""
        node = self.ases[asn]
        for i, a in enumerate(node.routers):
            for b in node.routers[i + 1 :]:
                if self.get_session(a, b) is None:
                    self.connect(a, b)

    def originate(self, router: Router, prefix: Prefix) -> Route:
        """Originate ``prefix`` at ``router``."""
        origins = self.originations.setdefault(prefix, [])
        if router.router_id in origins:
            raise TopologyError(f"{router.name} already originates {prefix}")
        origins.append(router.router_id)
        return router.originate(prefix)

    def withdraw(self, router: Router, prefix: Prefix) -> None:
        """Stop ``router`` originating ``prefix`` (anycast site failure).

        Removes the origination bookkeeping and the router's local route;
        callers must ``clear_prefix`` + re-simulate for the withdrawal to
        propagate.  Raises :class:`TopologyError` if the router does not
        originate the prefix — silently "withdrawing" nothing would mask
        a scenario-construction bug.
        """
        origins = self.originations.get(prefix)
        if origins is None or router.router_id not in origins:
            raise TopologyError(f"{router.name} does not originate {prefix}")
        origins.remove(router.router_id)
        if not origins:
            del self.originations[prefix]
        router.local_routes.pop(prefix, None)

    def originators(self, prefix: Prefix) -> list[int]:
        """Router ids originating ``prefix`` (empty list if none)."""
        return self.originations.get(prefix, [])

    def prefixes(self) -> list[Prefix]:
        """All originated prefixes, sorted for deterministic iteration."""
        return sorted(self.originations)

    # ------------------------------------------------------------------
    # Quasi-router support (Section 4.6: duplication)
    # ------------------------------------------------------------------

    def duplicate_router(self, original: Router) -> Router:
        """Clone ``original`` with the same neighbours and session policies.

        The clone receives its own (higher) router index, duplicated eBGP
        sessions to the same neighbour routers, and *copies* of every
        per-session route-map so the clone's policies can diverge from the
        original's.  iBGP sessions are deliberately not cloned: quasi-routers
        are isolated from each other (Section 4.6).
        """
        clone = self.add_router(original.asn)
        for session in list(original.sessions_in):
            if session.is_ibgp:
                continue
            new_session = self.add_session(session.src, clone)
            if session.import_map is not None:
                new_session.import_map = session.import_map.copy()
            if session.export_map is not None:
                new_session.export_map = session.export_map.copy()
        for session in list(original.sessions_out):
            if session.is_ibgp:
                continue
            new_session = self.add_session(clone, session.dst)
            if session.import_map is not None:
                new_session.import_map = session.import_map.copy()
            if session.export_map is not None:
                new_session.export_map = session.export_map.copy()
        for prefix in original.local_routes:
            self.originate(clone, prefix)
        return clone

    # ------------------------------------------------------------------
    # Engine bookkeeping
    # ------------------------------------------------------------------

    def note_touched(self, prefix: Prefix, router_id: int) -> None:
        """Record that ``router_id`` holds state for ``prefix``."""
        self._touched.setdefault(prefix, set()).add(router_id)

    def touched_routers(self, prefix: Prefix) -> frozenset[int]:
        """Router ids holding any state for ``prefix``.

        The parallel task protocol uses this to capture exactly the RIB
        slice a worker's simulation produced, so the supervisor can
        replay it onto the parent network.
        """
        return frozenset(self._touched.get(prefix, ()))

    def clear_prefix(self, prefix: Prefix) -> None:
        """Wipe all routing state for ``prefix`` ahead of a re-simulation."""
        touched = self._touched.pop(prefix, None)
        if touched is None:
            return
        for router_id in touched:
            router = self.routers.get(router_id)
            if router is not None:
                router.clear_prefix(prefix)

    def clear_routing(self) -> None:
        """Wipe all routing state for every prefix."""
        for prefix in list(self._touched):
            self.clear_prefix(prefix)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def as_routers(self, asn: int) -> list[Router]:
        """The routers of AS ``asn`` (empty if the AS is unknown)."""
        node = self.ases.get(asn)
        return list(node.routers) if node else []

    def ebgp_sessions(self) -> Iterator[Session]:
        """Iterate over all eBGP sessions."""
        return (s for s in self.sessions.values() if s.is_ebgp)

    def as_adjacencies(self) -> set[tuple[int, int]]:
        """Undirected AS-level edges realised by at least one eBGP session."""
        edges: set[tuple[int, int]] = set()
        for session in self.ebgp_sessions():
            a, b = session.src.asn, session.dst.asn
            edges.add((min(a, b), max(a, b)))
        return edges

    def stats(self) -> dict[str, int]:
        """Size summary used by reports and the scaling benchmark."""
        return {
            "ases": len(self.ases),
            "routers": len(self.routers),
            "sessions": len(self.sessions),
            "ebgp_sessions": sum(1 for _ in self.ebgp_sessions()),
            "prefixes": len(self.originations),
        }

    def validate(self) -> None:
        """Check internal consistency; raises :class:`TopologyError`."""
        for session in self.sessions.values():
            if session.src.router_id not in self.routers:
                raise TopologyError(f"{session!r} has unknown source")
            if session.dst.router_id not in self.routers:
                raise TopologyError(f"{session!r} has unknown destination")
        for prefix, origins in self.originations.items():
            for router_id in origins:
                if router_id not in self.routers:
                    raise TopologyError(
                        f"prefix {prefix} originated at unknown router {router_id:#x}"
                    )
        for node in self.ases.values():
            for router in node.routers:
                if router.asn != node.asn:
                    raise TopologyError(
                        f"router {router.name} filed under AS {node.asn}"
                    )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"Network({self.name}: {stats['ases']} ASes, {stats['routers']} routers, "
            f"{stats['sessions']} sessions, {stats['prefixes']} prefixes)"
        )


def build_clique(network: Network, asns: Iterable[int]) -> None:
    """Fully mesh single-router ASes for the given ASNs (testing helper)."""
    routers = []
    for asn in asns:
        existing = network.as_routers(asn)
        routers.append(existing[0] if existing else network.add_router(asn))
    for i, a in enumerate(routers):
        for b in routers[i + 1 :]:
            if network.get_session(a, b) is None:
                network.connect(a, b)
