"""The BGP route object used throughout the engine.

Routes are treated as immutable: policy application and export produce new
:class:`Route` instances via :meth:`Route.replace`.  The AS-path is a plain
tuple of ints (head = most recent AS, tail = origin AS) for speed; use
:class:`repro.net.aspath.ASPath` for dataset-level path manipulation.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.bgp.attributes import DEFAULT_LOCAL_PREF, DEFAULT_MED, Origin, RouteSource
from repro.net.prefix import Prefix

_EMPTY_COMMUNITIES: FrozenSet[int] = frozenset()


class Route:
    """One BGP route: a prefix plus its path attributes and bookkeeping.

    ``peer_router``/``peer_asn`` identify the session the route was learned
    over (0 for locally-originated routes); ``next_hop`` is the router id of
    the NEXT_HOP, which for iBGP-learned routes is the remote egress border
    router and drives the IGP-cost (hot-potato) decision step.
    """

    __slots__ = (
        "prefix",
        "as_path",
        "next_hop",
        "local_pref",
        "med",
        "origin",
        "communities",
        "source",
        "peer_router",
        "peer_asn",
        "originator_id",
        "cluster_list",
    )

    def __init__(
        self,
        prefix: Prefix,
        as_path: tuple[int, ...] = (),
        next_hop: int = 0,
        local_pref: int = DEFAULT_LOCAL_PREF,
        med: int = DEFAULT_MED,
        origin: Origin = Origin.IGP,
        communities: FrozenSet[int] = _EMPTY_COMMUNITIES,
        source: RouteSource = RouteSource.EBGP,
        peer_router: int = 0,
        peer_asn: int = 0,
        originator_id: int = 0,
        cluster_list: tuple[int, ...] = (),
    ):
        self.prefix = prefix
        self.as_path = as_path
        self.next_hop = next_hop
        self.local_pref = local_pref
        self.med = med
        self.origin = origin
        self.communities = communities
        self.source = source
        self.peer_router = peer_router
        self.peer_asn = peer_asn
        self.originator_id = originator_id
        self.cluster_list = cluster_list

    @classmethod
    def originate(cls, prefix: Prefix, router_id: int) -> "Route":
        """Create the locally-originated route for ``prefix`` at ``router_id``."""
        return cls(
            prefix,
            as_path=(),
            next_hop=router_id,
            source=RouteSource.LOCAL,
            peer_router=0,
            peer_asn=0,
        )

    def replace(self, **changes) -> "Route":
        """Return a copy of this route with the given attributes replaced."""
        kwargs = {
            "prefix": self.prefix,
            "as_path": self.as_path,
            "next_hop": self.next_hop,
            "local_pref": self.local_pref,
            "med": self.med,
            "origin": self.origin,
            "communities": self.communities,
            "source": self.source,
            "peer_router": self.peer_router,
            "peer_asn": self.peer_asn,
            "originator_id": self.originator_id,
            "cluster_list": self.cluster_list,
        }
        kwargs.update(changes)
        return Route(**kwargs)

    def attributes_equal(self, other: "Route | None") -> bool:
        """True if ``other`` carries the same announcement (ignoring bookkeeping).

        Used to suppress redundant UPDATE messages: a route needs to be
        re-sent over a session only if an attribute visible to the peer
        changed.
        """
        if other is None:
            return False
        return (
            self.prefix == other.prefix
            and self.as_path == other.as_path
            and self.next_hop == other.next_hop
            and self.med == other.med
            and self.origin == other.origin
            and self.communities == other.communities
            and self.local_pref == other.local_pref
            and self.originator_id == other.originator_id
            and self.cluster_list == other.cluster_list
        )

    def path_str(self) -> str:
        """The AS-path as a space-separated string (dump format)."""
        return " ".join(str(asn) for asn in self.as_path)

    def __repr__(self) -> str:
        return (
            f"Route({self.prefix}, path=[{self.path_str()}], lp={self.local_pref}, "
            f"med={self.med}, src={self.source.name}, from={self.peer_router:#x})"
        )
