"""Route-maps: the policy mechanism applied on session import and export.

A :class:`RouteMap` is an ordered list of :class:`Clause` objects.  Each
clause has a :class:`Match` (which route announcements it applies to) and
an :class:`Action` (deny, or permit with attribute modifications).  The
first matching clause wins; routes matching no clause are permitted
unmodified.

The paper's refinement heuristic installs exactly two kinds of clause
(Section 4.6):

* a *filter*: ``deny`` routes for one prefix whose AS-path is shorter than
  the observed path (``Match(prefix=p, path_len_lt=n)``), and
* a *ranking*: set a low MED on routes for one prefix learned from the
  preferred neighbour (``Match(prefix=p) -> set_med``), relying on
  always-compare MED.

The ground-truth substrate and the Table 2 baseline additionally use
local-pref settings, neighbour matches and community-driven filtering.

Route-maps keep an index of clauses whose match names an exact prefix, so
that models carrying hundreds of thousands of per-prefix clauses evaluate
each route against only the handful of clauses for its own prefix.
"""

from __future__ import annotations

import enum
import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.bgp.route import Route
from repro.net.prefix import Prefix

class RouteMapStats:
    """Process-wide route-map evaluation counters.

    The engine snapshots these around each per-prefix simulation to
    attribute clause work to prefixes (see ``simulate_prefix``), and the
    profiler surfaces them as ``engine.clauses_*`` metrics.  Plain
    integer adds on a module singleton keep the always-on cost of the
    accounting to a few instructions per evaluated clause; route-map
    evaluation is single-threaded like the engine that drives it.
    """

    __slots__ = ("applications", "clauses_evaluated", "clauses_matched")

    def __init__(self) -> None:
        self.applications = 0
        self.clauses_evaluated = 0
        self.clauses_matched = 0

    def snapshot(self) -> tuple[int, int, int]:
        """The three counters as one tuple (for cheap delta arithmetic)."""
        return (self.applications, self.clauses_evaluated, self.clauses_matched)


MAP_STATS = RouteMapStats()
"""The process-wide counter singleton every :meth:`RouteMap.apply` feeds."""


_REGEX_CACHE: "OrderedDict[str, re.Pattern[str]]" = OrderedDict()

_REGEX_CACHE_LIMIT = 1024
"""Upper bound on cached compiled patterns.  Long refinement runs that
sweep many distinct AS-path patterns must not grow the cache without
limit, so the cache evicts in LRU order once full."""


def _compiled(pattern: str) -> "re.Pattern[str]":
    """Compile-and-cache an AS-path regular expression (bounded LRU)."""
    compiled = _REGEX_CACHE.get(pattern)
    if compiled is None:
        compiled = re.compile(pattern)
        _REGEX_CACHE[pattern] = compiled
        if len(_REGEX_CACHE) > _REGEX_CACHE_LIMIT:
            _REGEX_CACHE.popitem(last=False)
    else:
        _REGEX_CACHE.move_to_end(pattern)
    return compiled


class Action(enum.Enum):
    """What a matching clause does with the route."""

    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class Match:
    """Predicate over a route announcement.

    All given conditions must hold (logical AND).  An empty match matches
    every route.
    """

    prefix: Prefix | None = None
    path_len_lt: int | None = None
    path_len_gt: int | None = None
    from_asn: int | None = None
    from_router: int | None = None
    path_contains: int | None = None
    path_regex: str | None = None
    """Regular expression over the space-separated AS-path string, in the
    style of C-BGP / Cisco as-path access-lists (e.g. ``"^3356 .* 701$"``).
    Anchors match the path head (most recent AS) and the origin."""
    community: int | None = None

    def matches(self, route: Route) -> bool:
        """True if ``route`` satisfies every condition of this match."""
        if self.prefix is not None and route.prefix != self.prefix:
            return False
        if self.path_len_lt is not None and not len(route.as_path) < self.path_len_lt:
            return False
        if self.path_len_gt is not None and not len(route.as_path) > self.path_len_gt:
            return False
        if self.from_asn is not None and route.peer_asn != self.from_asn:
            return False
        if self.from_router is not None and route.peer_router != self.from_router:
            return False
        if self.path_contains is not None and self.path_contains not in route.as_path:
            return False
        if self.path_regex is not None and not _compiled(self.path_regex).search(
            route.path_str()
        ):
            return False
        if self.community is not None and self.community not in route.communities:
            return False
        return True

    def is_satisfiable(self) -> bool:
        """False if no route can ever satisfy this match.

        The only contradiction expressible within one match is between the
        two path-length bounds: ``len < lt`` and ``len > gt`` admit no
        length when ``gt + 1 >= lt`` (and ``lt == 0`` admits nothing at
        all, lengths being non-negative).
        """
        if self.path_len_lt is not None and self.path_len_lt <= 0:
            return False
        if self.path_len_lt is not None and self.path_len_gt is not None:
            return self.path_len_gt + 1 < self.path_len_lt
        return True

    def subsumes(self, other: "Match") -> bool:
        """True if every route matched by ``other`` is matched by ``self``.

        This is the foundation of the static shadowing analysis: with
        first-match-wins route-maps, a clause whose match is subsumed by an
        earlier clause's match can never be evaluated.  The check is
        conservative (sound, not complete): a ``True`` answer guarantees
        subsumption, a ``False`` answer makes no claim — regexes, for
        instance, are only recognised as subsuming when textually equal.
        """
        if not other.is_satisfiable():
            return True
        if self.prefix is not None and self.prefix != other.prefix:
            return False
        if self.path_len_lt is not None and (
            other.path_len_lt is None or other.path_len_lt > self.path_len_lt
        ):
            return False
        if self.path_len_gt is not None and (
            other.path_len_gt is None or other.path_len_gt < self.path_len_gt
        ):
            return False
        if self.from_asn is not None:
            # A match pinned to one neighbour router implies its AS: router
            # ids encode the ASN in their high bits (Section 4.5).
            other_asn = other.from_asn
            if other_asn is None and other.from_router is not None:
                other_asn = other.from_router >> 16
            if other_asn != self.from_asn:
                return False
        if self.from_router is not None and other.from_router != self.from_router:
            return False
        if self.path_contains is not None and other.path_contains != self.path_contains:
            return False
        if self.path_regex is not None and other.path_regex != self.path_regex:
            return False
        if self.community is not None and other.community != self.community:
            return False
        return True

    def describe(self) -> str:
        """Human-readable form used in C-BGP config export and __repr__."""
        parts = []
        if self.prefix is not None:
            parts.append(f"prefix is {self.prefix}")
        if self.path_len_lt is not None:
            parts.append(f"path-length < {self.path_len_lt}")
        if self.path_len_gt is not None:
            parts.append(f"path-length > {self.path_len_gt}")
        if self.from_asn is not None:
            parts.append(f"from-as {self.from_asn}")
        if self.from_router is not None:
            parts.append(f"from-router {self.from_router:#010x}")
        if self.path_contains is not None:
            parts.append(f"path contains {self.path_contains}")
        if self.path_regex is not None:
            parts.append(f"path matches {self.path_regex!r}")
        if self.community is not None:
            parts.append(f"community {self.community}")
        return " and ".join(parts) if parts else "any"


@dataclass
class Clause:
    """One route-map entry: a match plus an action and attribute changes."""

    match: Match = field(default_factory=Match)
    action: Action = Action.PERMIT
    set_local_pref: int | None = None
    set_med: int | None = None
    prepend: int = 0
    add_communities: frozenset[int] = frozenset()
    strip_communities: bool = False
    tag: str | None = None
    """Free-form label; the refiner tags its clauses so they can be deleted."""
    iteration: int | None = None
    """Refinement iteration that installed this clause, when known.

    Decision provenance for ``repro explain``: a clause consulted during
    a replay can name the Figure 6 cycle that created it.  Not part of
    clause identity — the refiner's duplicate-install check deliberately
    ignores it — and round-trips through the C-BGP dialect (``iter N``)
    so checkpoints and saved models keep the attribution."""

    def apply(self, route: Route) -> Route | None:
        """Apply this clause to ``route``; None means denied.

        Must only be called when ``self.match.matches(route)`` is True.
        """
        if self.action is Action.DENY:
            return None
        changes: dict = {}
        if self.set_local_pref is not None:
            changes["local_pref"] = self.set_local_pref
        if self.set_med is not None:
            changes["med"] = self.set_med
        if self.prepend and route.as_path:
            head = route.as_path[0]
            changes["as_path"] = (head,) * self.prepend + route.as_path
        if self.strip_communities:
            changes["communities"] = frozenset(self.add_communities)
        elif self.add_communities:
            changes["communities"] = route.communities | self.add_communities
        if not changes:
            return route
        return route.replace(**changes)


class RouteMap:
    """An ordered sequence of clauses with first-match-wins semantics."""

    __slots__ = ("_clauses", "_by_prefix", "_generic", "default_action")

    def __init__(
        self,
        clauses: Iterable[Clause] = (),
        default_action: Action = Action.PERMIT,
    ):
        self._clauses: list[tuple[int, Clause]] = []
        self._by_prefix: dict[Prefix, list[tuple[int, Clause]]] = {}
        self._generic: list[tuple[int, Clause]] = []
        self.default_action = default_action
        for clause in clauses:
            self.append(clause)

    def append(self, clause: Clause) -> None:
        """Add ``clause`` after all existing clauses."""
        position = len(self._clauses)
        entry = (position, clause)
        self._clauses.append(entry)
        if clause.match.prefix is not None:
            self._by_prefix.setdefault(clause.match.prefix, []).append(entry)
        else:
            self._generic.append(entry)

    def prepend(self, clause: Clause) -> None:
        """Add ``clause`` before all existing clauses.

        With first-match-wins semantics this makes the clause shadow any
        later clause matching the same routes (the fault-injection harness
        relies on this to override relationship policies).
        """
        position = (self._clauses[0][0] - 1) if self._clauses else 0
        entry = (position, clause)
        self._clauses.insert(0, entry)
        if clause.match.prefix is not None:
            self._by_prefix.setdefault(clause.match.prefix, []).insert(0, entry)
        else:
            self._generic.insert(0, entry)

    def remove(self, clause: Clause) -> bool:
        """Remove the first occurrence of ``clause`` (by identity); True if found."""
        for entry in self._clauses:
            if entry[1] is clause:
                self._clauses.remove(entry)
                bucket = (
                    self._by_prefix.get(clause.match.prefix)
                    if clause.match.prefix is not None
                    else self._generic
                )
                if bucket is not None and entry in bucket:
                    bucket.remove(entry)
                return True
        return False

    def remove_if(self, predicate) -> int:
        """Remove every clause for which ``predicate(clause)`` is true."""
        doomed = [clause for _, clause in self._clauses if predicate(clause)]
        for clause in doomed:
            self.remove(clause)
        return len(doomed)

    def clauses(self) -> Iterator[Clause]:
        """Iterate over clauses in evaluation order."""
        return (clause for _, clause in self._clauses)

    def copy(self) -> "RouteMap":
        """Return an independently-mutable copy (clause objects are shared)."""
        return RouteMap(self.clauses(), default_action=self.default_action)

    def entries(self) -> list[tuple[int, Clause]]:
        """All (position, clause) pairs in evaluation order.

        Positions are the stable ordering keys the prefix index sorts by;
        the static analyzer uses them to name clauses in findings.
        """
        return list(self._clauses)

    def entries_for_prefix(self, prefix: Prefix) -> list[tuple[int, Clause]]:
        """The (position, clause) pairs that could match ``prefix``, in order.

        Includes the *generic* clauses (those whose match names no exact
        prefix) alongside the prefix-indexed ones: a shadowing check that
        consulted only the exact-prefix bucket would miss a broad earlier
        clause — e.g. ``Match()`` — that makes every later per-prefix
        clause unreachable.
        """
        indexed = self._by_prefix.get(prefix, [])
        return sorted(indexed + self._generic, key=lambda entry: entry[0])

    def clauses_for_prefix(self, prefix: Prefix) -> Iterator[Clause]:
        """Iterate, in evaluation order, over clauses that could match ``prefix``."""
        return (clause for _, clause in self.entries_for_prefix(prefix))

    def apply(self, route: Route) -> Route | None:
        """Evaluate the route-map on ``route``; None means denied."""
        stats = MAP_STATS
        stats.applications += 1
        indexed = self._by_prefix.get(route.prefix)
        if indexed and self._generic:
            candidates = sorted(indexed + self._generic, key=lambda entry: entry[0])
        elif indexed:
            candidates = indexed
        else:
            candidates = self._generic
        evaluated = 0
        for _, clause in candidates:
            evaluated += 1
            if clause.match.matches(route):
                stats.clauses_evaluated += evaluated
                stats.clauses_matched += 1
                return clause.apply(route)
        stats.clauses_evaluated += evaluated
        if self.default_action is Action.DENY:
            return None
        return route

    def __len__(self) -> int:
        return len(self._clauses)

    def __bool__(self) -> bool:
        # An empty permit-by-default route-map is a no-op, but an empty
        # deny-by-default one is not, so truthiness must account for both.
        return bool(self._clauses) or self.default_action is Action.DENY

    def __repr__(self) -> str:
        lines = [
            f"  {clause.action.value} if {clause.match.describe()}"
            for clause in self.clauses()
        ]
        body = "\n".join(lines)
        return f"RouteMap(default={self.default_action.value}\n{body}\n)"
