"""Intra-AS IGP topology and shortest-path costs.

Each multi-router AS in the ground-truth substrate carries an IGP graph
over its border routers.  The decision process uses the IGP distance from
the deciding router to a route's NEXT_HOP as the hot-potato tie-breaker.
Costs are computed with Dijkstra's algorithm and cached per source router.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable

from repro.errors import TopologyError

INFINITE_COST = math.inf


class IGPTopology:
    """A weighted undirected graph over the router ids of one AS."""

    __slots__ = ("_adjacency", "_cost_cache")

    def __init__(self):
        self._adjacency: dict[int, dict[int, float]] = {}
        self._cost_cache: dict[int, dict[int, float]] = {}

    def add_router(self, router_id: int) -> None:
        """Register a router; idempotent."""
        self._adjacency.setdefault(router_id, {})

    def add_link(self, a: int, b: int, cost: float = 1.0) -> None:
        """Add (or update) an undirected link between routers ``a`` and ``b``."""
        if a == b:
            raise TopologyError(f"IGP self-loop at router {a:#x}")
        if cost <= 0:
            raise TopologyError(f"IGP link cost must be positive, got {cost}")
        self.add_router(a)
        self.add_router(b)
        self._adjacency[a][b] = cost
        self._adjacency[b][a] = cost
        self._cost_cache.clear()

    def routers(self) -> Iterable[int]:
        """All registered router ids."""
        return self._adjacency.keys()

    def neighbors(self, router_id: int) -> dict[int, float]:
        """Adjacent routers and link costs for ``router_id``."""
        return dict(self._adjacency.get(router_id, {}))

    def cost(self, source: int, target: int) -> float:
        """IGP distance from ``source`` to ``target`` (inf if unreachable)."""
        if source == target:
            return 0.0
        if source not in self._adjacency:
            return INFINITE_COST
        cached = self._cost_cache.get(source)
        if cached is None:
            cached = self._dijkstra(source)
            self._cost_cache[source] = cached
        return cached.get(target, INFINITE_COST)

    def shortest_path(self, source: int, target: int) -> list[int] | None:
        """The router sequence of a cheapest path (inclusive), or None.

        Ties are broken towards lower router ids, so the hop sequence is
        deterministic — the data-plane forwarding simulation depends on
        this.
        """
        if source == target:
            return [source]
        if source not in self._adjacency or target not in self._adjacency:
            return None
        distances: dict[int, float] = {source: 0.0}
        predecessor: dict[int, int] = {}
        heap: list[tuple[float, int, int]] = [(0.0, source, source)]
        settled: set[int] = set()
        while heap:
            dist, node, via = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if node != source:
                predecessor[node] = via
            if node == target:
                break
            for neighbor, weight in sorted(self._adjacency[node].items()):
                candidate = dist + weight
                known = distances.get(neighbor, INFINITE_COST)
                if candidate < known or (
                    candidate == known
                    and node < predecessor.get(neighbor, 1 << 62)
                ):
                    distances[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor, node))
        if target not in settled:
            return None
        path = [target]
        while path[-1] != source:
            path.append(predecessor[path[-1]])
        path.reverse()
        return path

    def is_connected(self) -> bool:
        """True if every router can reach every other router."""
        routers = list(self._adjacency)
        if len(routers) <= 1:
            return True
        distances = self._dijkstra(routers[0])
        return len(distances) == len(routers)

    def _dijkstra(self, source: int) -> dict[int, float]:
        """Single-source shortest-path distances from ``source``."""
        distances: dict[int, float] = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        while heap:
            dist, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for neighbor, weight in self._adjacency[node].items():
                candidate = dist + weight
                if candidate < distances.get(neighbor, INFINITE_COST):
                    distances[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return distances

    def __len__(self) -> int:
        return len(self._adjacency)

    def __repr__(self) -> str:
        links = sum(len(peers) for peers in self._adjacency.values()) // 2
        return f"IGPTopology(routers={len(self)}, links={links})"
