"""BGP path-attribute constants and enumerations."""

from __future__ import annotations

import enum

DEFAULT_LOCAL_PREF = 100
"""local-pref assigned to routes that arrive without an import-policy override."""

DEFAULT_MED = 0
"""MED assigned on eBGP export unless an export policy overrides it."""


class Origin(enum.IntEnum):
    """The ORIGIN attribute; lower values are preferred by the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2

    @classmethod
    def parse(cls, text: str) -> "Origin":
        """Parse the one-letter dump code (``i``/``e``/``?``) or a full name."""
        codes = {"i": cls.IGP, "e": cls.EGP, "?": cls.INCOMPLETE}
        key = text.strip().lower()
        if key in codes:
            return codes[key]
        try:
            return cls[key.upper()]
        except KeyError:
            raise ValueError(f"unknown origin code {text!r}") from None

    @property
    def code(self) -> str:
        """The one-letter dump code used by ``show ip bgp`` and bgpdump."""
        return {Origin.IGP: "i", Origin.EGP: "e", Origin.INCOMPLETE: "?"}[self]


class RouteSource(enum.IntEnum):
    """How a route entered a router.

    The numeric order encodes the eBGP-over-iBGP preference of the decision
    process: lower is preferred (locally-originated routes beat everything).
    """

    LOCAL = 0
    EBGP = 1
    IBGP = 2
