"""An event-driven BGP route-propagation engine (C-BGP equivalent).

The engine computes, per prefix, the steady-state outcome of BGP message
exchange over a topology of routers grouped into ASes: every router's
Adj-RIB-In, Loc-RIB (best route) and Adj-RIB-Out after convergence.  It
implements the full decision process of Figure 1 of the paper, import and
export route-maps, eBGP and iBGP sessions, and IGP-cost-based hot-potato
tie-breaking.

The same engine serves two roles in this reproduction:

* as the *ground-truth Internet* (multi-router ASes, full-mesh iBGP,
  realistic and deliberately non-standard policies) producing the observed
  RIB dumps, and
* as the *model simulator* for the paper's quasi-router AS-routing model
  (isolated quasi-routers, per-prefix filter/MED policies).
"""

from repro.bgp.attributes import (
    DEFAULT_LOCAL_PREF,
    DEFAULT_MED,
    Origin,
    RouteSource,
)
from repro.bgp.route import Route
from repro.bgp.decision import (
    DecisionConfig,
    DecisionOutcome,
    Step,
    run_decision,
    select_best,
)
from repro.bgp.policy import Action, Clause, Match, RouteMap
from repro.bgp.igp import IGPTopology
from repro.bgp.session import Session
from repro.bgp.router import Router
from repro.bgp.network import ASNode, Network
from repro.bgp.engine import EngineStats, simulate, simulate_prefix

__all__ = [
    "DEFAULT_LOCAL_PREF",
    "DEFAULT_MED",
    "Origin",
    "RouteSource",
    "Route",
    "DecisionConfig",
    "DecisionOutcome",
    "Step",
    "run_decision",
    "select_best",
    "Action",
    "Clause",
    "Match",
    "RouteMap",
    "IGPTopology",
    "Session",
    "Router",
    "ASNode",
    "Network",
    "EngineStats",
    "simulate",
    "simulate_prefix",
]
