"""Routers (and quasi-routers) with their three RIBs.

A :class:`Router` keeps, per prefix:

* ``adj_rib_in`` — the post-import-policy route from each incoming session,
* ``loc_rib`` — the best route chosen by the decision process,
* ``adj_rib_out`` — the post-export-policy route sent on each outgoing
  session.

Quasi-routers (Section 4.1) are ordinary :class:`Router` instances; what
makes them "quasi" is how the model wires them: no iBGP sessions between
routers of the same AS, duplicated eBGP sessions to neighbour ASes.

Router ids follow Section 4.5: ``(asn << 16) | index`` so that the final
router-id tie-break of the decision process is deterministic and, for
16-bit ASNs, the id reads as an IP address whose high 16 bits are the AS
number.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.bgp.route import Route
from repro.net.ip import ip_to_string
from repro.net.prefix import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.bgp.session import Session


def make_router_id(asn: int, index: int) -> int:
    """Compose the deterministic router id of Section 4.5."""
    if index <= 0 or index > 0xFFFF:
        raise ValueError(f"router index out of range: {index}")
    return (asn << 16) | index


def router_id_asn(router_id: int) -> int:
    """The AS number encoded in ``router_id``."""
    return router_id >> 16


def router_id_index(router_id: int) -> int:
    """The per-AS index encoded in ``router_id``."""
    return router_id & 0xFFFF


def format_router_id(router_id: int) -> str:
    """Format a router id as a dotted quad when it fits in 32 bits."""
    if 0 <= router_id <= 0xFFFFFFFF:
        return ip_to_string(router_id)
    return f"router-{router_id:#x}"


class Router:
    """One BGP speaker."""

    __slots__ = (
        "router_id",
        "asn",
        "index",
        "name",
        "sessions_in",
        "sessions_out",
        "adj_rib_in",
        "loc_rib",
        "adj_rib_out",
        "local_routes",
        "rr_clients",
    )

    def __init__(self, router_id: int, asn: int, index: int, name: str | None = None):
        self.router_id = router_id
        self.asn = asn
        self.index = index
        self.name = name or f"AS{asn}.r{index}"
        self.sessions_in: list["Session"] = []
        self.sessions_out: list["Session"] = []
        self.adj_rib_in: dict[Prefix, dict[int, Route]] = {}
        self.loc_rib: dict[Prefix, Route] = {}
        self.adj_rib_out: dict[Prefix, dict[int, Route]] = {}
        self.local_routes: dict[Prefix, Route] = {}
        self.rr_clients: set[int] = set()
        """Router ids this router acts as a route reflector for (RFC 4456)."""

    def originate(self, prefix: Prefix) -> Route:
        """Register ``prefix`` as locally originated at this router."""
        route = Route.originate(prefix, self.router_id)
        self.local_routes[prefix] = route
        return route

    def candidates(self, prefix: Prefix) -> list[Route]:
        """All routes for ``prefix`` the decision process chooses among."""
        result: list[Route] = []
        local = self.local_routes.get(prefix)
        if local is not None:
            result.append(local)
        rib_in = self.adj_rib_in.get(prefix)
        if rib_in:
            result.extend(rib_in.values())
        return result

    def best(self, prefix: Prefix) -> Route | None:
        """The current best route for ``prefix`` (None if unreachable)."""
        return self.loc_rib.get(prefix)

    def rib_in_routes(self, prefix: Prefix) -> Iterator[Route]:
        """Iterate over the Adj-RIB-In routes for ``prefix``."""
        rib_in = self.adj_rib_in.get(prefix)
        if rib_in:
            yield from rib_in.values()

    def clear_prefix(self, prefix: Prefix) -> None:
        """Forget all routing state for ``prefix`` (used before re-simulation)."""
        self.adj_rib_in.pop(prefix, None)
        self.loc_rib.pop(prefix, None)
        self.adj_rib_out.pop(prefix, None)

    def ebgp_neighbors(self) -> set[int]:
        """The set of neighbour ASNs reachable over this router's eBGP sessions."""
        return {
            session.dst.asn for session in self.sessions_out if session.is_ebgp
        }

    def __repr__(self) -> str:
        return f"Router({self.name}, id={format_router_id(self.router_id)})"
