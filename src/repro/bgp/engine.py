"""Event-driven per-prefix BGP propagation to convergence.

The engine reproduces what C-BGP computes for the paper (Section 2): "the
paths that routers know once the BGP routing has converged", by modelling
the propagation of BGP messages and executing the decision process at each
router.  Routing for different prefixes is independent (Section 4.2:
"Since routing decisions are determined independently for each prefix we
run a separate simulation for each prefix"), so the unit of work is
:func:`simulate_prefix`.

Message processing is FIFO and single-threaded, so results are fully
deterministic.  A message budget guards against policy configurations
that make BGP diverge (e.g. local-pref dispute wheels, Section 4.6's
motivation for avoiding local-pref in the refined model); exceeding it
raises :class:`~repro.errors.ConvergenceError` (a
:class:`~repro.errors.SimulationError`) carrying the prefix and the
exhausted budget, so callers can retry with a bigger budget or
quarantine the prefix (see :mod:`repro.resilience`).
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.bgp.attributes import DEFAULT_LOCAL_PREF, DEFAULT_MED, RouteSource
from repro.bgp.decision import (
    DecisionConfig,
    run_decision,
    select_best,
    step_name,
)
from repro.bgp.network import Network
from repro.bgp.route import Route
from repro.bgp.router import Router
from repro.bgp.session import Session
from repro.errors import ConvergenceError
from repro.bgp.policy import MAP_STATS
from repro.net.community import NO_ADVERTISE, NO_EXPORT
from repro.net.prefix import Prefix
from repro.obs.metrics import get_registry, labelled
from repro.obs.profile import (
    PHASE_DECISION,
    PHASE_DISPATCH,
    PHASE_EXPORT,
    PHASE_RIB_MERGE,
    PHASE_ROUTE_MAP,
    PhaseProfiler,
    get_profiler,
)
from repro.obs.trace import (
    EVENT_BUDGET_EXHAUSTED,
    EVENT_DECISION,
    Tracer,
    get_tracer,
)

logger = logging.getLogger(__name__)


@dataclass
class EngineStats:
    """Counters accumulated while simulating."""

    prefixes: int = 0
    messages: int = 0
    decisions: int = 0
    clauses_evaluated: int = 0
    """Route-map clauses evaluated (import + export maps)."""
    clauses_matched: int = 0
    """Route-map clauses whose match predicate fired."""
    budget_exhaustions: int = 0
    """Times a per-prefix simulation hit its message budget.

    Non-zero means some output was produced by giving up, not by
    converging: either a quarantined prefix (``diverged``) or a retried
    attempt.  Health reports and ``repro stats`` surface this so a
    starved run is visibly reported rather than silently truncated.
    """
    per_prefix_messages: dict[Prefix, int] = field(default_factory=dict)
    diverged: list[Prefix] = field(default_factory=list)

    def merge(self, other: "EngineStats") -> None:
        """Fold ``other`` into this stats object."""
        self.prefixes += other.prefixes
        self.messages += other.messages
        self.decisions += other.decisions
        self.clauses_evaluated += other.clauses_evaluated
        self.clauses_matched += other.clauses_matched
        self.budget_exhaustions += other.budget_exhaustions
        self.per_prefix_messages.update(other.per_prefix_messages)
        self.diverged.extend(other.diverged)


def default_message_budget(network: Network) -> int:
    """The per-prefix message budget used when the caller does not set one.

    Scales with the session count so bigger topologies get proportionally
    more room before a simulation is declared divergent.
    """
    return 2000 + 400 * max(1, len(network.sessions))


def simulate(
    network: Network,
    prefixes: Iterable[Prefix] | None = None,
    config: DecisionConfig = DecisionConfig(),
    max_messages: int | None = None,
    on_divergence: str = "raise",
) -> EngineStats:
    """Simulate every prefix (or the given subset) to convergence.

    ``on_divergence`` controls what happens when one prefix exceeds its
    message budget: ``"raise"`` re-raises the
    :class:`~repro.errors.ConvergenceError` (discarding nothing the caller
    already holds, but ending the run), while ``"quarantine"`` clears the
    prefix's partial routing state, records it in the returned stats'
    ``diverged`` list, and keeps simulating the remaining prefixes.
    """
    if on_divergence not in ("raise", "quarantine"):
        raise ValueError(f"on_divergence must be 'raise' or 'quarantine', got {on_divergence!r}")
    stats = EngineStats()
    targets = list(prefixes) if prefixes is not None else network.prefixes()
    for prefix in targets:
        try:
            stats.merge(simulate_prefix(network, prefix, config, max_messages))
        except ConvergenceError as error:
            if on_divergence == "raise":
                raise
            network.clear_prefix(prefix)
            stats.prefixes += 1
            stats.messages += error.messages_used
            stats.budget_exhaustions += 1
            stats.per_prefix_messages[prefix] = error.messages_used
            stats.diverged.append(prefix)
            logger.warning(
                "quarantined %s after %d messages (budget %d)",
                prefix, error.messages_used, error.budget,
            )
    return stats


def simulate_prefix(
    network: Network,
    prefix: Prefix,
    config: DecisionConfig = DecisionConfig(),
    max_messages: int | None = None,
) -> EngineStats:
    """Clear and recompute all routing state for one prefix.

    On return every router's Adj-RIB-In, Loc-RIB and Adj-RIB-Out for
    ``prefix`` hold the converged state.
    """
    if max_messages is None:
        max_messages = default_message_budget(network)
    network.clear_prefix(prefix)
    stats = EngineStats(prefixes=1)
    tracer = get_tracer()
    profiler = get_profiler()
    # The hot loop pays one None check per hook point when profiling is
    # off (mirroring the tracer's `enabled` idiom).
    prof = profiler if profiler.enabled else None
    map_stats_before = MAP_STATS.snapshot()
    queue: deque[tuple[Session, Route | None]] = deque()

    for router_id in sorted(network.originators(prefix)):
        router = network.routers[router_id]
        router.local_routes[prefix] = Route.originate(prefix, router_id)
        network.note_touched(prefix, router_id)
        _decide_and_export(
            network, router, prefix, config, queue, stats, tracer, prof
        )

    while queue:
        stats.messages += 1
        if stats.messages > max_messages:
            get_registry().counter("engine.budget_exhausted").inc()
            if tracer.enabled:
                tracer.event(
                    EVENT_BUDGET_EXHAUSTED,
                    prefix=str(prefix),
                    messages=stats.messages,
                    budget=max_messages,
                )
            _account_route_map(stats, map_stats_before)
            raise ConvergenceError(prefix, stats.messages, max_messages)
        if prof:
            prof.push(PHASE_DISPATCH)
        session, announced = queue.popleft()
        receiver = session.dst
        accepted = _import_route(session, announced, prof)
        if prof:
            prof.switch(PHASE_RIB_MERGE)
        rib_in = receiver.adj_rib_in.setdefault(prefix, {})
        previous = rib_in.get(session.session_id)
        changed = True
        if accepted is None:
            if previous is None:
                changed = False
            else:
                del rib_in[session.session_id]
        else:
            if accepted.attributes_equal(previous) and (
                previous is not None
                and accepted.source == previous.source
                and accepted.peer_router == previous.peer_router
            ):
                changed = False
            else:
                rib_in[session.session_id] = accepted
        if prof:
            prof.pop()
        if not changed:
            continue
        network.note_touched(prefix, receiver.router_id)
        _decide_and_export(
            network, receiver, prefix, config, queue, stats, tracer, prof
        )

    stats.per_prefix_messages[prefix] = stats.messages
    _account_route_map(stats, map_stats_before)
    registry = get_registry()
    registry.counter("engine.prefixes").inc()
    registry.counter("engine.messages").inc(stats.messages)
    registry.counter("engine.decisions").inc(stats.decisions)
    registry.counter("engine.clauses_evaluated").inc(stats.clauses_evaluated)
    registry.counter("engine.clauses_matched").inc(stats.clauses_matched)
    registry.histogram("engine.messages_per_prefix").observe(stats.messages)
    if prof:
        # Per-prefix hot-path attribution is profiling-only: a labelled
        # instrument per prefix is exactly what `repro profile` wants and
        # exactly what a long refinement run must not accumulate.
        label = str(prefix)
        registry.counter(
            labelled("engine.prefix.messages", prefix=label)
        ).inc(stats.messages)
        registry.counter(
            labelled("engine.prefix.decisions", prefix=label)
        ).inc(stats.decisions)
        registry.counter(
            labelled("engine.prefix.clauses_matched", prefix=label)
        ).inc(stats.clauses_matched)
    return stats


def _account_route_map(
    stats: EngineStats, before: tuple[int, int, int]
) -> None:
    """Fold the route-map counter deltas since ``before`` into ``stats``."""
    _, evaluated, matched = MAP_STATS.snapshot()
    stats.clauses_evaluated += evaluated - before[1]
    stats.clauses_matched += matched - before[2]


def _import_route(
    session: Session,
    announced: Route | None,
    profiler: PhaseProfiler | None = None,
) -> Route | None:
    """Apply receive-side processing: loop rejection, defaults, import map."""
    if announced is None:
        return None
    receiver = session.dst
    if session.is_ebgp:
        if receiver.asn in announced.as_path:
            return None
        route = announced.replace(
            local_pref=DEFAULT_LOCAL_PREF,
            source=RouteSource.EBGP,
            peer_router=session.src.router_id,
            peer_asn=session.src.asn,
        )
    else:
        # RFC 4456 loop prevention: drop reflected routes that already
        # passed through this router (as originator or as a cluster).
        if announced.originator_id == receiver.router_id:
            return None
        if receiver.router_id in announced.cluster_list:
            return None
        route = announced.replace(
            source=RouteSource.IBGP,
            peer_router=session.src.router_id,
            peer_asn=session.src.asn,
        )
    if session.import_map is not None:
        if profiler is not None:
            with profiler.phase(PHASE_ROUTE_MAP):
                return session.import_map.apply(route)
        return session.import_map.apply(route)
    return route


def _decide_and_export(
    network: Network,
    router: Router,
    prefix: Prefix,
    config: DecisionConfig,
    queue: deque,
    stats: EngineStats,
    tracer: Tracer,
    profiler: PhaseProfiler | None = None,
) -> None:
    """Re-run the decision process at ``router`` and propagate any change."""
    stats.decisions += 1
    if profiler is not None:
        profiler.push(PHASE_DECISION)
    try:
        candidates = router.candidates(prefix)
        if candidates:
            node = network.ases[router.asn]

            def igp_cost(route: Route) -> float:
                if route.source is not RouteSource.IBGP:
                    return 0.0
                return node.igp.cost(router.router_id, route.next_hop)

            if tracer.enabled:
                # run_decision is behaviourally identical to select_best but
                # keeps the per-candidate elimination bookkeeping the trace
                # event reports; the slower path only runs while tracing.
                outcome = run_decision(candidates, config, igp_cost)
                best = outcome.best
                tracer.event(
                    EVENT_DECISION,
                    router=router.name,
                    prefix=str(prefix),
                    candidates=len(candidates),
                    best=list(best.as_path) if best is not None else None,
                    step=step_name(
                        outcome.decisive_step if len(candidates) > 1 else None
                    ),
                )
            else:
                best = select_best(candidates, config, igp_cost)
        else:
            best = None

        if profiler is not None:
            profiler.switch(PHASE_RIB_MERGE)
        previous_best = router.loc_rib.get(prefix)
        if best is previous_best and best is not None:
            return
        if best is None and previous_best is None:
            return
        if (
            best is not None
            and previous_best is not None
            and best.attributes_equal(previous_best)
            and best.peer_router == previous_best.peer_router
            and best.source == previous_best.source
        ):
            # Same announcement from the same place: nothing changed for peers,
            # but keep the identical object in the Loc-RIB up to date.
            router.loc_rib[prefix] = best
            return

        if best is None:
            router.loc_rib.pop(prefix, None)
        else:
            router.loc_rib[prefix] = best
        network.note_touched(prefix, router.router_id)

        if profiler is not None:
            profiler.switch(PHASE_EXPORT)
        rib_out = router.adj_rib_out.setdefault(prefix, {})
        for session in router.sessions_out:
            exported = _export_route(session, best, profiler)
            previous = rib_out.get(session.session_id)
            if exported is None and previous is None:
                continue
            if exported is not None and exported.attributes_equal(previous):
                continue
            if exported is None:
                del rib_out[session.session_id]
            else:
                rib_out[session.session_id] = exported
            queue.append((session, exported))
    finally:
        if profiler is not None:
            profiler.pop()


def _export_route(
    session: Session,
    best: Route | None,
    profiler: PhaseProfiler | None = None,
) -> Route | None:
    """Apply send-side processing: export rules, prepending, export map."""
    if best is None:
        return None
    sender = session.src
    if session.is_ibgp:
        if NO_ADVERTISE in best.communities:
            return None
        if best.source is RouteSource.IBGP:
            # Plain iBGP speakers never re-advertise internal routes; a
            # route reflector (RFC 4456) reflects client routes to every
            # internal peer and non-client routes to its clients only,
            # stamping ORIGINATOR_ID and prepending itself (its router id
            # doubles as the cluster id) to the CLUSTER_LIST.
            if not sender.rr_clients:
                return None
            learned_from_client = best.peer_router in sender.rr_clients
            sending_to_client = session.dst.router_id in sender.rr_clients
            if not learned_from_client and not sending_to_client:
                return None
            originator = best.originator_id or best.peer_router
            route = best.replace(
                originator_id=originator,
                cluster_list=(sender.router_id,) + best.cluster_list,
            )
        else:
            # next-hop-self: the receiver's hot-potato step measures the
            # IGP distance to this border router, not the external peer.
            route = best.replace(next_hop=sender.router_id)
    else:
        if NO_ADVERTISE in best.communities or NO_EXPORT in best.communities:
            return None
        if session.dst.asn in best.as_path:
            # The peer would reject the route anyway (loop); skip sending.
            return None
        route = best.replace(
            as_path=(sender.asn,) + best.as_path,
            next_hop=sender.router_id,
            local_pref=DEFAULT_LOCAL_PREF,
            med=DEFAULT_MED,
            # ORIGINATOR_ID/CLUSTER_LIST are AS-internal attributes
            originator_id=0,
            cluster_list=(),
        )
    if session.export_map is not None:
        if profiler is not None:
            with profiler.phase(PHASE_ROUTE_MAP):
                return session.export_map.apply(route)
        return session.export_map.apply(route)
    return route
