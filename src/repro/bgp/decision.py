"""The BGP decision process (Figure 1 of the paper).

Given the candidate routes for one prefix at one router, the decision
process eliminates candidates step by step until a single best route
remains:

1. highest ``local-pref``
2. shortest AS-path
3. lowest ORIGIN code
4. lowest MED — either compared only among routes from the same neighbour
   AS (standard) or across all neighbours ("always-compare", which the
   paper's refinement heuristic requires, Section 4.6)
5. locally-originated over eBGP-learned over iBGP-learned
6. lowest IGP cost to the NEXT_HOP (hot-potato routing)
7. shortest CLUSTER_LIST (RFC 4456, relevant only with route reflection)
8. lowest neighbour router id — the ORIGINATOR_ID when the route was
   reflected (the final tie-break; Section 4.5 assigns router ids so this
   step is deterministic)

:func:`run_decision` also reports, for every eliminated candidate, the step
that eliminated it.  The "potential RIB-Out match" metric of Section 4.2
is exactly "eliminated at :data:`Step.ROUTER_ID`".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bgp.route import Route


class Step(enum.IntEnum):
    """Decision-process steps, in evaluation order."""

    LOCAL_PREF = 1
    PATH_LENGTH = 2
    ORIGIN = 3
    MED = 4
    EBGP_OVER_IBGP = 5
    IGP_COST = 6
    CLUSTER_LIST = 7
    ROUTER_ID = 8


@dataclass(frozen=True)
class DecisionConfig:
    """Tunable behaviour of the decision process.

    ``med_always_compare``
        Compare MED across routes from different neighbour ASes, as the
        paper's model requires ("We require that MED values are always
        compared during the BGP decision process, even for routes learned
        from different neighbor ASes", Section 4.6).
    ``use_igp_cost``
        Enable the hot-potato step; the quasi-router model has no IGP, the
        ground-truth substrate does.
    """

    med_always_compare: bool = False
    use_igp_cost: bool = True


@dataclass
class DecisionOutcome:
    """Result of one decision-process run.

    ``best`` is ``None`` only when there were no candidates.  ``eliminated``
    maps every non-best candidate to the :class:`Step` that removed it.
    """

    best: Route | None
    eliminated: dict[int, Step] = field(default_factory=dict)
    candidates: tuple[Route, ...] = ()

    def elimination_step(self, route: Route) -> Step | None:
        """The step that eliminated ``route``, or None if it is the best route."""
        return self.eliminated.get(id(route))

    @property
    def decisive_step(self) -> Step | None:
        """The step at which the winner became unique.

        Eliminations happen in step order, so the decisive step is the
        latest one that removed a candidate.  None when the decision was
        trivial: no candidates, or a single candidate that never had to
        beat anything.
        """
        if not self.eliminated:
            return None
        return max(self.eliminated.values())

    def survivors_until(self, step: Step) -> list[Route]:
        """Candidates that were still alive when ``step`` began."""
        return [
            route
            for route in self.candidates
            if id(route) not in self.eliminated or self.eliminated[id(route)] >= step
        ]


def step_name(step: Step | None) -> str:
    """Human-readable kebab-case name for a step (``"only-candidate"`` for None).

    The None case names the degenerate decision: one candidate, nothing
    to eliminate — what ``repro explain`` prints when a router never had
    a real choice.
    """
    if step is None:
        return "only-candidate"
    return step.name.lower().replace("_", "-")


IgpCostFn = Callable[[Route], float]


def _zero_igp_cost(route: Route) -> float:
    return 0.0


def run_decision(
    candidates: Sequence[Route],
    config: DecisionConfig = DecisionConfig(),
    igp_cost: IgpCostFn = _zero_igp_cost,
) -> DecisionOutcome:
    """Run the decision process over ``candidates`` and return the outcome.

    ``igp_cost`` maps a route to the IGP distance from the deciding router
    to the route's NEXT_HOP (0 for eBGP-learned and local routes).
    """
    outcome = DecisionOutcome(best=None, candidates=tuple(candidates))
    alive: list[Route] = list(candidates)
    if not alive:
        return outcome

    def eliminate(step: Step, keep: list[Route]) -> None:
        kept_ids = {id(route) for route in keep}
        for route in alive:
            if id(route) not in kept_ids:
                outcome.eliminated[id(route)] = step
        alive[:] = keep

    if len(alive) > 1:
        best_lp = max(route.local_pref for route in alive)
        eliminate(
            Step.LOCAL_PREF, [r for r in alive if r.local_pref == best_lp]
        )
    if len(alive) > 1:
        best_len = min(len(route.as_path) for route in alive)
        eliminate(
            Step.PATH_LENGTH, [r for r in alive if len(r.as_path) == best_len]
        )
    if len(alive) > 1:
        best_origin = min(route.origin for route in alive)
        eliminate(Step.ORIGIN, [r for r in alive if r.origin == best_origin])
    if len(alive) > 1:
        eliminate(Step.MED, _med_survivors(alive, config.med_always_compare))
    if len(alive) > 1:
        best_source = min(route.source for route in alive)
        eliminate(
            Step.EBGP_OVER_IBGP, [r for r in alive if r.source == best_source]
        )
    if len(alive) > 1 and config.use_igp_cost:
        costs = {id(route): igp_cost(route) for route in alive}
        best_cost = min(costs.values())
        eliminate(
            Step.IGP_COST, [r for r in alive if costs[id(r)] == best_cost]
        )
    if len(alive) > 1:
        best_cluster = min(len(route.cluster_list) for route in alive)
        eliminate(
            Step.CLUSTER_LIST,
            [r for r in alive if len(r.cluster_list) == best_cluster],
        )
    if len(alive) > 1:
        # Final tie-break: lowest neighbour router id (ORIGINATOR_ID for
        # reflected routes).  Locally-originated routes carry peer_router 0
        # and therefore win, but they can only tie with another local route
        # if a prefix is originated twice at the same router, which the
        # network builder forbids.
        best_key = min(_router_id_key(route) for route in alive)
        eliminate(
            Step.ROUTER_ID,
            [r for r in alive if _router_id_key(r) == best_key],
        )

    outcome.best = alive[0]
    return outcome


def select_best(
    candidates: Sequence[Route],
    config: DecisionConfig = DecisionConfig(),
    igp_cost: IgpCostFn = _zero_igp_cost,
) -> Route | None:
    """Fast path: the winning route only, without elimination bookkeeping.

    Behaviourally identical to ``run_decision(...).best``; the propagation
    engine calls this in its inner loop, while the metrics layer uses
    :func:`run_decision` when it needs to know *why* a route lost.
    """
    if not candidates:
        return None
    alive = list(candidates)
    if len(alive) > 1:
        best_lp = max(route.local_pref for route in alive)
        alive = [r for r in alive if r.local_pref == best_lp]
    if len(alive) > 1:
        best_len = min(len(route.as_path) for route in alive)
        alive = [r for r in alive if len(r.as_path) == best_len]
    if len(alive) > 1:
        best_origin = min(route.origin for route in alive)
        alive = [r for r in alive if r.origin == best_origin]
    if len(alive) > 1:
        alive = _med_survivors(alive, config.med_always_compare)
    if len(alive) > 1:
        best_source = min(route.source for route in alive)
        alive = [r for r in alive if r.source == best_source]
    if len(alive) > 1 and config.use_igp_cost:
        costs = [igp_cost(route) for route in alive]
        best_cost = min(costs)
        alive = [r for r, c in zip(alive, costs) if c == best_cost]
    if len(alive) > 1:
        best_cluster = min(len(route.cluster_list) for route in alive)
        alive = [r for r in alive if len(r.cluster_list) == best_cluster]
    if len(alive) > 1:
        return min(alive, key=_router_id_key)
    return alive[0]


def _med_survivors(alive: Sequence[Route], always_compare: bool) -> list[Route]:
    """Apply the MED step.

    With ``always_compare`` the MED is a global metric: keep the minimum.
    Otherwise MEDs are only comparable among routes from the same neighbour
    AS: within each neighbour-AS group keep only that group's minimum.
    """
    if always_compare:
        best_med = min(route.med for route in alive)
        return [route for route in alive if route.med == best_med]
    best_per_asn: dict[int, int] = {}
    for route in alive:
        current = best_per_asn.get(route.peer_asn)
        if current is None or route.med < current:
            best_per_asn[route.peer_asn] = route.med
    return [route for route in alive if route.med == best_per_asn[route.peer_asn]]


def _router_id_key(route: Route) -> tuple[int, int, int]:
    """Tie-break key: ORIGINATOR_ID (if reflected), then peer, then next hop."""
    first = route.originator_id if route.originator_id else route.peer_router
    return (first, route.peer_router, route.next_hop)
