"""Directed BGP sessions.

A BGP peering between routers A and B is modelled as two directed
sessions, one per announcement direction.  Policies attach to directed
sessions: ``export_map`` runs at the source before the announcement is
sent, ``import_map`` runs at the destination when it is received.  This
directly supports the paper's placement of refinement policies: "a filter
policy for this prefix at the announcing neighbor" is an export-map clause
on the neighbour's session *towards* one specific quasi-router.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bgp.policy import RouteMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.bgp.router import Router


class Session:
    """One directed announcement channel from ``src`` to ``dst``."""

    __slots__ = ("session_id", "src", "dst", "import_map", "export_map")

    def __init__(self, session_id: int, src: "Router", dst: "Router"):
        self.session_id = session_id
        self.src = src
        self.dst = dst
        self.import_map: RouteMap | None = None
        self.export_map: RouteMap | None = None

    @property
    def is_ebgp(self) -> bool:
        """True if the endpoints are in different ASes."""
        return self.src.asn != self.dst.asn

    @property
    def is_ibgp(self) -> bool:
        """True if the endpoints are in the same AS."""
        return self.src.asn == self.dst.asn

    def ensure_import_map(self) -> RouteMap:
        """Return the import route-map, creating an empty one if needed."""
        if self.import_map is None:
            self.import_map = RouteMap()
        return self.import_map

    def ensure_export_map(self) -> RouteMap:
        """Return the export route-map, creating an empty one if needed."""
        if self.export_map is None:
            self.export_map = RouteMap()
        return self.export_map

    def __repr__(self) -> str:
        kind = "eBGP" if self.is_ebgp else "iBGP"
        return (
            f"Session#{self.session_id}({kind} {self.src.name} -> {self.dst.name})"
        )
