"""The campaign engine: generate → fan out → diff → rank.

``run_campaign`` executes a scenario list against a baseline model.  With
``workers > 1`` every scenario becomes one generic task of the PR-4
:class:`~repro.parallel.SupervisedPool` — crash-isolated, watchdogged,
resubmitted to fresh workers on failure and finally quarantined as
poison/timeout instead of killing the campaign.  Sequentially, the same
``scenario.run`` executes in-process on a fresh unpickled copy of the
network per scenario (identical isolation), so the two paths produce
bit-identical ranked reports.

A JSON scenario checkpoint (atomic temp + ``os.replace``, fingerprinted
over the campaign kind, scenario keys and baseline checksum) records
every finished outcome: the sequential path persists it after each
scenario and a SIGTERM'd campaign writes it again during the drain, so
``resume`` skips the completed scenarios on the next run.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import signal
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.campaign.report import STATUS_OK, CampaignReport, ScenarioOutcome
from repro.campaign.scenarios import CampaignContext
from repro.core.model import MODEL_DECISION_CONFIG, ASRoutingModel
from repro.errors import (
    ArtifactError,
    CheckpointError,
    ReproError,
    ShutdownRequested,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import EVENT_SCENARIO, get_tracer
from repro.parallel.protocol import dump_network
from repro.resilience.retry import POISON, RetryPolicy
from repro.serve.artifact import PredictionArtifact

logger = logging.getLogger(__name__)

CHECKPOINT_FORMAT = "repro/campaign-checkpoint/v1"


def context_from_artifact(artifact: PredictionArtifact) -> CampaignContext:
    """The read-only baseline every scenario diffs against."""
    return CampaignContext(
        baseline_paths=dict(artifact.paths),
        observers=tuple(artifact.observers),
        excluded=frozenset(artifact.quarantined_origins()),
        baseline_checksum=artifact.checksum,
    )


def validate_baseline(
    model: ASRoutingModel, artifact: PredictionArtifact
) -> None:
    """Reject a baseline artifact compiled from a different model.

    Origin sets must match exactly and every artifact observer must be a
    model AS; a mismatched artifact would make every scenario diff
    garbage, so this raises :class:`~repro.errors.ArtifactError` naming
    the first discrepancy before any simulation is spent.
    """
    model_origins = set(model.prefix_by_origin)
    artifact_origins = set(artifact.origins)
    missing = sorted(artifact_origins - model_origins)
    extra = sorted(model_origins - artifact_origins)
    if missing:
        raise ArtifactError(
            f"baseline artifact covers AS {missing[0]} which the model does "
            "not originate; the artifact was compiled from a different model"
        )
    if extra:
        raise ArtifactError(
            f"model originates AS {extra[0]} which the baseline artifact "
            "lacks; recompile the baseline from this model"
        )
    for observer in artifact.observers:
        if observer not in model.network.ases:
            raise ArtifactError(
                f"baseline artifact observer AS {observer} is not in the "
                "model; the artifact was compiled from a different model"
            )


def campaign_fingerprint(
    kind: str, keys: Iterable[str], baseline_checksum: str
) -> str:
    """Identity of one campaign: kind, scenario space and baseline."""
    digest = hashlib.sha256()
    digest.update(kind.encode("ascii"))
    digest.update(b"\0")
    digest.update(baseline_checksum.encode("ascii"))
    for key in sorted(keys):
        digest.update(b"\0")
        digest.update(key.encode("utf-8"))
    return digest.hexdigest()


def write_checkpoint(
    path: str | Path,
    fingerprint: str,
    outcomes: dict[str, ScenarioOutcome],
) -> None:
    """Atomically persist the finished scenario outcomes."""
    target = Path(path)
    document = {
        "format": CHECKPOINT_FORMAT,
        "fingerprint": fingerprint,
        "completed": {
            key: outcomes[key].to_dict() for key in sorted(outcomes)
        },
    }
    temp = target.with_name(target.name + ".tmp")
    temp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(temp, target)


def load_checkpoint(
    path: str | Path, fingerprint: str
) -> dict[str, ScenarioOutcome]:
    """Read a checkpoint back; raises :class:`CheckpointError` loudly.

    A checkpoint whose fingerprint does not match (different scenario
    space, different baseline) is a hard error, never silently ignored —
    resuming the wrong campaign would merge incomparable outcomes.
    """
    target = Path(path)
    try:
        document = json.loads(target.read_text())
    except OSError as error:
        raise CheckpointError(
            f"cannot read campaign checkpoint {path}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"campaign checkpoint {path} is corrupt: {error}"
        ) from error
    if document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} is not a campaign checkpoint "
            f"(format {document.get('format')!r})"
        )
    if document.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"campaign checkpoint {path} belongs to a different campaign "
            "(scenario space or baseline changed); delete it or rerun "
            "without --resume"
        )
    try:
        return {
            key: ScenarioOutcome.from_dict(value)
            for key, value in (document.get("completed") or {}).items()
        }
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"campaign checkpoint {path} has a malformed outcome: {error}"
        ) from error


def run_campaign(
    model: ASRoutingModel,
    kind: str,
    scenarios: Sequence[object],
    context: CampaignContext,
    retry: RetryPolicy | None = None,
    parallel=None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
) -> CampaignReport:
    """Execute every scenario and rank the outcomes by blast radius.

    Raises :class:`~repro.errors.ShutdownRequested` after a graceful
    SIGINT/SIGTERM drain; the checkpoint (when configured) then holds
    every finished outcome and the exception's ``pending`` lists the
    unfinished scenario keys.
    """
    policy = retry or RetryPolicy()
    ordered = sorted(scenarios, key=lambda s: s.key)  # type: ignore[attr-defined]
    fingerprint = campaign_fingerprint(
        kind, (s.key for s in ordered), context.baseline_checksum
    )
    completed: dict[str, ScenarioOutcome] = {}
    if resume and checkpoint is not None and Path(checkpoint).exists():
        completed = load_checkpoint(checkpoint, fingerprint)
        logger.info(
            "resuming campaign: %d of %d scenario(s) already complete",
            len(completed), len(ordered),
        )
    todo = [s for s in ordered if s.key not in completed]

    progress = None
    if checkpoint is not None:
        def progress() -> None:
            write_checkpoint(checkpoint, fingerprint, completed)

    started = time.perf_counter()
    supervision: dict = {}
    try:
        if parallel is not None and parallel.enabled and todo:
            supervision = _run_parallel(
                model, todo, context, policy, parallel, completed
            )
        elif todo:
            _run_sequential(
                model, todo, context, policy, completed, progress
            )
    except ShutdownRequested:
        if checkpoint is not None:
            write_checkpoint(checkpoint, fingerprint, completed)
        raise
    if checkpoint is not None:
        write_checkpoint(checkpoint, fingerprint, completed)

    _emit_observability(completed)
    report = CampaignReport(
        kind=kind,
        baseline_checksum=context.baseline_checksum,
        outcomes=[completed[key] for key in sorted(completed)],
    )
    counts = report.counts()
    report.meta = {
        "elapsed_seconds": round(time.perf_counter() - started, 6),
        "fingerprint": fingerprint,
        "resumed": len(ordered) - len(todo),
        "supervision": supervision,
        **{f"scenarios_{k}": v for k, v in counts.items() if k != "scenarios"},
    }
    return report


def _run_parallel(
    model: ASRoutingModel,
    todo: list,
    context: CampaignContext,
    policy: RetryPolicy,
    parallel,
    completed: dict[str, ScenarioOutcome],
) -> dict:
    """Fan scenarios out as generic tasks of the supervised pool."""
    from repro.parallel.supervisor import SupervisedPool

    by_key = {scenario.key: scenario for scenario in todo}
    pool = SupervisedPool(
        model.network,
        MODEL_DECISION_CONFIG,
        policy,
        parallel,
        context=context,
    )
    try:
        with pool:
            stats = pool.run_tasks(todo)
    except ShutdownRequested as shutdown:
        partial = shutdown.stats
        if partial is not None:
            _fold_generic(partial, by_key, completed)
        raise
    _fold_generic(stats, by_key, completed)
    return stats.supervision


def _fold_generic(stats, by_key: dict, completed: dict[str, ScenarioOutcome]) -> None:
    """Convert the pool's generic results/failures into outcomes."""
    for key in sorted(stats.results):
        completed[key] = _ok_outcome(by_key[key], stats.results[key])
    for key in sorted(stats.failed):
        failure = stats.failed[key]
        completed[key] = ScenarioOutcome(
            key=key,
            kind=getattr(by_key[key], "kind", key.split(":", 1)[0]),
            status=failure.status,
            blast_radius=0.0,
            failures=tuple(failure.failures),
        )


def _run_sequential(
    model: ASRoutingModel,
    todo: list,
    context: CampaignContext,
    policy: RetryPolicy,
    completed: dict[str, ScenarioOutcome],
    progress=None,
) -> None:
    """Run scenarios in-process, one fresh network copy each.

    Uses the same pickled-blob isolation as the pool workers, so the
    sequential and parallel paths compute identical outcomes.  Honors
    SIGINT/SIGTERM between scenarios via the same drain contract.
    ``progress`` (when set) persists the checkpoint after every finished
    scenario, so even a SIGKILL'd campaign resumes from the last one.
    """
    blob = dump_network(model.network)
    drain = {"signum": None}

    def handle(signum, frame):  # noqa: ARG001 - signal signature
        drain["signum"] = signum

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handle)
        except ValueError:  # pragma: no cover - non-main-thread embedding
            break
    try:
        for index, scenario in enumerate(todo):
            if drain["signum"] is not None:
                pending = [s.key for s in todo[index:]]
                raise ShutdownRequested(drain["signum"], None, pending)
            network = pickle.loads(blob)
            try:
                value = scenario.run(
                    network, context, MODEL_DECISION_CONFIG, policy
                )
            except ReproError as error:
                # The in-process analogue of a poison task: the scenario
                # is quarantined with the error recorded, not fatal.
                completed[scenario.key] = ScenarioOutcome(
                    key=scenario.key,
                    kind=getattr(scenario, "kind", "scenario"),
                    status=POISON,
                    blast_radius=0.0,
                    failures=(repr(error),),
                )
                if progress is not None:
                    progress()
                continue
            completed[scenario.key] = _ok_outcome(scenario, value)
            if progress is not None:
                progress()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _ok_outcome(scenario, value: dict) -> ScenarioOutcome:
    return ScenarioOutcome(
        key=scenario.key,
        kind=value.get("kind", getattr(scenario, "kind", "scenario")),
        status=STATUS_OK,
        blast_radius=float(value.get("blast_radius", 0)),
        detail=value,
    )


def _emit_observability(completed: dict[str, ScenarioOutcome]) -> None:
    """Campaign metrics and trace events, in key-sorted order."""
    registry = get_registry()
    tracer = get_tracer()
    for key in sorted(completed):
        outcome = completed[key]
        if outcome.quarantined:
            registry.counter("campaign.scenarios_quarantined").inc()
        else:
            registry.counter("campaign.scenarios_completed").inc()
            registry.histogram("campaign.blast_radius").observe(
                outcome.blast_radius
            )
        if tracer.enabled:
            tracer.event(
                EVENT_SCENARIO,
                key=outcome.key,
                scenario_kind=outcome.kind,
                status=outcome.status,
                blast_radius=outcome.blast_radius,
            )
