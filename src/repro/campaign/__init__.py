"""Scenario campaign engine (ROADMAP item 5).

The paper's whole point is a model accurate enough to ask "what changes
if the topology changes".  This package sweeps entire scenario spaces —
every single-session depeering, tier-1 link failures, prefix hijacks,
anycast catchments — executing each scenario as one crash-isolated task
of the supervised pool, diffing its answers against the baseline serve
artifact, and ranking everything into one deterministic impact report.
"""

from repro.campaign.diffing import ScenarioDiff, diff_path_maps
from repro.campaign.engine import (
    CHECKPOINT_FORMAT,
    campaign_fingerprint,
    context_from_artifact,
    load_checkpoint,
    run_campaign,
    validate_baseline,
    write_checkpoint,
)
from repro.campaign.report import STATUS_OK, CampaignReport, ScenarioOutcome
from repro.campaign.scenarios import (
    CAMPAIGN_KINDS,
    CampaignContext,
    CatchmentScenario,
    EdgeFailureScenario,
    HijackScenario,
    generate_catchment,
    generate_depeer,
    generate_hijack,
    generate_link_failure,
)

__all__ = [
    "CAMPAIGN_KINDS",
    "CHECKPOINT_FORMAT",
    "CampaignContext",
    "CampaignReport",
    "CatchmentScenario",
    "EdgeFailureScenario",
    "HijackScenario",
    "STATUS_OK",
    "ScenarioDiff",
    "ScenarioOutcome",
    "campaign_fingerprint",
    "context_from_artifact",
    "diff_path_maps",
    "generate_catchment",
    "generate_depeer",
    "generate_hijack",
    "generate_link_failure",
    "load_checkpoint",
    "run_campaign",
    "validate_baseline",
    "write_checkpoint",
]
