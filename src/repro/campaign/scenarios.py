"""Campaign scenario types and scenario-space generators.

A scenario is a small frozen dataclass naming one perturbation of the
baseline model.  Scenarios are picklable and self-contained: the engine
fans them out as generic tasks of the PR-4 supervised pool, where each
``run(network, context, config, policy)`` executes on a *fresh* copy of
the baseline network (scenarios mutate topology and originations, so
isolation is mandatory), simulates the perturbed model, and returns a
plain JSON-ready dict — identical whether the scenario ran in-process
or inside a crash-isolated worker.

Four scenario spaces (ROADMAP item 5, the paper's Section 1 what-if
motivation):

* ``depeer`` — remove every session between one AS pair, for every
  AS-level adjacency (or a filtered subset).
* ``link-failure`` — the same removal, but only for adjacencies incident
  to top-degree (or explicitly seeded) ASes: the tier-1 failure sweep.
* ``hijack`` — re-originate a victim's canonical prefix from a candidate
  attacker AS and report which observers are captured.
* ``catchment`` — originate one anycast prefix from k sites and report
  per-observer site attraction, plus one leave-one-site-out scenario per
  site ("Inferring Catchment in Internet Routing").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.campaign.diffing import Pair, diff_path_maps
from repro.core.model import ASRoutingModel
from repro.core.predict import selected_paths
from repro.core.whatif import validate_session_endpoints
from repro.errors import TopologyError
from repro.net.prefix import Prefix
from repro.resilience.retry import (
    CONVERGED,
    TRANSIENT,
    simulate_network_with_retry,
    simulate_prefix_with_retry,
)

KIND_DEPEER = "depeer"
KIND_LINK_FAILURE = "link-failure"
KIND_HIJACK = "hijack"
KIND_CATCHMENT = "catchment"
CAMPAIGN_KINDS = (KIND_DEPEER, KIND_LINK_FAILURE, KIND_HIJACK, KIND_CATCHMENT)

ANYCAST_BASE = 0xF0000000
"""First candidate network (240.0.0.0/24) for the synthetic anycast
prefix — class E space no canonical origin encoding can produce for
real-world ASNs, scanned upward until free."""


@dataclass(frozen=True)
class CampaignContext:
    """Read-only baseline shared by every scenario of one campaign.

    Pickled once and shipped to each pool worker at spawn.  ``excluded``
    origins were quarantined when the baseline artifact was compiled;
    scenarios ignore their pairs instead of reporting spurious diffs.
    """

    baseline_paths: dict[Pair, tuple[tuple[int, ...], ...]]
    observers: tuple[int, ...]
    excluded: frozenset[int] = frozenset()
    baseline_checksum: str = ""


def _collect_paths(
    model: ASRoutingModel,
    observers: Iterable[int],
    skip_origins: Iterable[int] = (),
) -> dict[Pair, set[tuple[int, ...]]]:
    """The scenario-side answer map, via the shared collection kernel."""
    skip = set(skip_origins)
    paths: dict[Pair, set[tuple[int, ...]]] = {}
    for origin in sorted(model.prefix_by_origin):
        if origin in skip:
            continue
        for observer in observers:
            selected = selected_paths(model, origin, observer)
            if selected:
                paths[(origin, observer)] = selected
    return paths


def _paths_for_prefix(network, prefix: Prefix, observer_asn: int) -> set[tuple[int, ...]]:
    """Full paths ``observer_asn`` currently selects for one prefix."""
    paths: set[tuple[int, ...]] = set()
    for router in network.as_routers(observer_asn):
        best = router.best(prefix)
        if best is not None:
            paths.add((observer_asn,) + best.as_path)
    return paths


@dataclass(frozen=True)
class EdgeFailureScenario:
    """Remove every session of one AS-level adjacency and re-simulate.

    Backs both the ``depeer`` sweep (every adjacency) and the
    ``link-failure`` sweep (adjacencies incident to tier-1/top-degree
    ASes); the mechanics are identical, only the generator differs.
    """

    asn_a: int
    asn_b: int
    kind: str = KIND_DEPEER

    @property
    def key(self) -> str:
        return f"{self.kind}:AS{self.asn_a}-AS{self.asn_b}"

    def run(self, network, context: CampaignContext, config, policy) -> dict:
        model = ASRoutingModel.from_network(network)
        validate_session_endpoints(model, [(self.asn_a, self.asn_b)])
        removed = 0
        for router_a in list(model.quasi_routers(self.asn_a)):
            for session in list(router_a.sessions_out):
                if session.dst.asn == self.asn_b:
                    network.disconnect(router_a, session.dst)
                    removed += 1
        model.graph.remove_edge(self.asn_a, self.asn_b)

        stats = simulate_network_with_retry(network, config=config, policy=policy)
        degraded = sorted(
            str(prefix)
            for prefix in (
                stats.diverged + stats.unsafe + stats.poison + stats.timed_out
            )
        )
        degraded_origins = {
            model.origin_by_prefix[prefix]
            for prefix in (
                stats.diverged + stats.unsafe + stats.poison + stats.timed_out
            )
            if prefix in model.origin_by_prefix
        }
        current = _collect_paths(
            model, context.observers, skip_origins=degraded_origins
        )
        diff = diff_path_maps(
            context.baseline_paths,
            current,
            exclude_origins=context.excluded | degraded_origins,
        )
        return {
            "kind": self.kind,
            "key": self.key,
            "params": {"asn_a": self.asn_a, "asn_b": self.asn_b},
            "removed_sessions": removed,
            "degraded": degraded,
            "diff": diff.to_dict(),
            "blast_radius": diff.blast_radius,
        }


@dataclass(frozen=True)
class HijackScenario:
    """Re-originate the victim's canonical prefix from an attacker AS.

    The victim keeps originating (a MOAS conflict, exactly what a prefix
    hijack looks like); after re-convergence each observer outside the
    conflict is classified by where its selected paths terminate:
    *captured* (every path ends at the attacker), *partial* (mixed), or
    *retained* (still reaches the victim); observers that lose the
    prefix entirely are *blackholed*.
    """

    victim: int
    attacker: int

    @property
    def key(self) -> str:
        return f"hijack:AS{self.attacker}->AS{self.victim}"

    def run(self, network, context: CampaignContext, config, policy) -> dict:
        model = ASRoutingModel.from_network(network)
        prefix = model.canonical_prefix(self.victim)
        attacker_routers = model.quasi_routers(self.attacker)
        if not attacker_routers:
            raise TopologyError(f"unknown AS {self.attacker}: not in the model")
        if self.attacker == self.victim:
            raise TopologyError(
                f"attacker AS {self.attacker} is the victim itself"
            )
        for router in attacker_routers:
            network.originate(router, prefix)
        network.clear_prefix(prefix)
        _, outcome = simulate_prefix_with_retry(network, prefix, config, policy)
        result = {
            "kind": KIND_HIJACK,
            "key": self.key,
            "params": {"victim": self.victim, "attacker": self.attacker},
            "status": outcome.status,
        }
        if outcome.status not in (CONVERGED, TRANSIENT):
            # The perturbed simulation itself was quarantined: no capture
            # claims can be made, the scenario reports itself degraded.
            result.update(
                captured=[], partial=[], blackholed=[],
                observers_examined=0, capture_fraction=0.0, blast_radius=0,
                degraded=[str(prefix)],
            )
            return result

        captured: list[int] = []
        partial: list[int] = []
        blackholed: list[int] = []
        examined = 0
        for observer in context.observers:
            if observer in (self.victim, self.attacker):
                continue
            paths = _paths_for_prefix(network, prefix, observer)
            if not paths:
                if (self.victim, observer) in context.baseline_paths:
                    blackholed.append(observer)
                    examined += 1
                continue
            examined += 1
            terminal = {path[-1] for path in paths}
            if terminal == {self.attacker}:
                captured.append(observer)
            elif self.attacker in terminal:
                partial.append(observer)
        capture_fraction = (
            (len(captured) + 0.5 * len(partial)) / examined if examined else 0.0
        )
        result.update(
            captured=captured,
            partial=partial,
            blackholed=blackholed,
            observers_examined=examined,
            capture_fraction=round(capture_fraction, 6),
            blast_radius=len(captured) + len(partial) + len(blackholed),
            degraded=[],
        )
        return result


@dataclass(frozen=True)
class CatchmentScenario:
    """Originate an anycast prefix from k sites; report site attraction.

    With ``failed_site=None`` the scenario reports the baseline
    catchment: which site(s) each observer's selected paths terminate
    at.  With a failed site, the site's origination is withdrawn after
    the first convergence and the prefix re-simulated; the blast radius
    is the number of observers whose attraction shifted.
    """

    sites: tuple[int, ...]
    failed_site: int | None = None

    @property
    def key(self) -> str:
        if self.failed_site is None:
            return "catchment:base"
        return f"catchment:fail-AS{self.failed_site}"

    def run(self, network, context: CampaignContext, config, policy) -> dict:
        for site in self.sites:
            if not network.as_routers(site):
                raise TopologyError(f"unknown AS {site}: not in the model")
        prefix = _free_anycast_prefix(network)
        for site in self.sites:
            for router in network.as_routers(site):
                network.originate(router, prefix)
        _, outcome = simulate_prefix_with_retry(network, prefix, config, policy)
        result = {
            "kind": KIND_CATCHMENT,
            "key": self.key,
            "params": {
                "sites": list(self.sites),
                "failed_site": self.failed_site,
                "prefix": str(prefix),
            },
            "status": outcome.status,
        }
        if outcome.status not in (CONVERGED, TRANSIENT):
            result.update(
                attraction={}, shifted=[], blast_radius=0,
                degraded=[str(prefix)],
            )
            return result
        before = self._attraction(network, prefix, context.observers)

        if self.failed_site is None:
            result.update(
                attraction={str(obs): sites for obs, sites in before.items()},
                shifted=[],
                blast_radius=0,
                degraded=[],
            )
            return result

        for router in network.as_routers(self.failed_site):
            network.withdraw(router, prefix)
        network.clear_prefix(prefix)
        _, outcome = simulate_prefix_with_retry(network, prefix, config, policy)
        result["status"] = outcome.status
        if outcome.status not in (CONVERGED, TRANSIENT):
            result.update(
                attraction={}, shifted=[], blast_radius=0,
                degraded=[str(prefix)],
            )
            return result
        after = self._attraction(network, prefix, context.observers)
        shifted = sorted(
            observer
            for observer in set(before) | set(after)
            if before.get(observer) != after.get(observer)
        )
        result.update(
            attraction={str(obs): sites for obs, sites in after.items()},
            shifted=shifted,
            blast_radius=len(shifted),
            degraded=[],
        )
        return result

    def _attraction(
        self, network, prefix: Prefix, observers: Iterable[int]
    ) -> dict[int, list[int]]:
        """Which site(s) each non-site observer's paths terminate at."""
        site_set = set(self.sites)
        attraction: dict[int, list[int]] = {}
        for observer in observers:
            if observer in site_set:
                continue
            paths = _paths_for_prefix(network, prefix, observer)
            sites = sorted({path[-1] for path in paths})
            if sites:
                attraction[observer] = sites
        return attraction


def _free_anycast_prefix(network) -> Prefix:
    """A deterministic /24 no router currently originates."""
    taken = set(network.originations)
    for index in range(4096):
        candidate = Prefix(ANYCAST_BASE + (index << 8), 24)
        if candidate not in taken:
            return candidate
    raise TopologyError("no free anycast prefix in the scan window")


# ----------------------------------------------------------------------
# Scenario-space generators
# ----------------------------------------------------------------------


def generate_depeer(
    model: ASRoutingModel, ases: Iterable[int] | None = None
) -> list[EdgeFailureScenario]:
    """One depeer scenario per AS-level adjacency (optionally filtered).

    ``ases`` restricts the sweep to adjacencies incident to at least one
    of the named ASes; unknown ASNs raise up front, same contract as
    ``whatif``.
    """
    wanted = None
    if ases is not None:
        wanted = set(ases)
        for asn in sorted(wanted):
            if asn not in model.network.ases:
                raise TopologyError(f"unknown AS {asn}: not in the model")
    scenarios = []
    for asn_a, asn_b in sorted(model.graph.edges()):
        if wanted is not None and asn_a not in wanted and asn_b not in wanted:
            continue
        scenarios.append(EdgeFailureScenario(asn_a, asn_b, KIND_DEPEER))
    return scenarios


def generate_link_failure(
    model: ASRoutingModel,
    top_degree: int = 3,
    seeds: Iterable[int] | None = None,
) -> list[EdgeFailureScenario]:
    """Adjacency failures incident to tier-1-like ASes.

    ``seeds`` names the target ASes explicitly; otherwise the
    ``top_degree`` highest-degree ASes of the graph are used (ties broken
    by lower ASN, so the sweep is deterministic).
    """
    if seeds is not None:
        targets = set(seeds)
        for asn in sorted(targets):
            if asn not in model.network.ases:
                raise TopologyError(f"unknown AS {asn}: not in the model")
    else:
        ranked = sorted(
            model.network.ases, key=lambda asn: (-model.graph.degree(asn), asn)
        )
        targets = set(ranked[: max(0, top_degree)])
    scenarios = []
    for asn_a, asn_b in sorted(model.graph.edges()):
        if asn_a in targets or asn_b in targets:
            scenarios.append(
                EdgeFailureScenario(asn_a, asn_b, KIND_LINK_FAILURE)
            )
    return scenarios


def generate_hijack(
    model: ASRoutingModel,
    victim: int,
    attackers: Iterable[int] | None = None,
) -> list[HijackScenario]:
    """One hijack scenario per candidate attacker AS.

    The victim must originate a canonical prefix; attackers default to
    every other AS in the model.
    """
    model.canonical_prefix(victim)  # raises TopologyError for unknown victims
    if attackers is not None:
        candidates = sorted(set(attackers))
        for asn in candidates:
            if asn not in model.network.ases:
                raise TopologyError(f"unknown AS {asn}: not in the model")
        if victim in candidates:
            raise TopologyError(
                f"attacker AS {victim} is the victim itself"
            )
    else:
        candidates = sorted(asn for asn in model.network.ases if asn != victim)
    return [HijackScenario(victim, attacker) for attacker in candidates]


def generate_catchment(
    model: ASRoutingModel, sites: Iterable[int]
) -> list[CatchmentScenario]:
    """The base catchment scenario plus one site-failure scenario per site."""
    site_tuple = tuple(sorted(set(sites)))
    if len(site_tuple) < 2:
        raise TopologyError(
            "catchment needs at least 2 distinct anycast sites"
        )
    for site in site_tuple:
        if site not in model.network.ases:
            raise TopologyError(f"unknown AS {site}: not in the model")
    scenarios: list[CatchmentScenario] = [CatchmentScenario(site_tuple, None)]
    scenarios.extend(CatchmentScenario(site_tuple, site) for site in site_tuple)
    return scenarios


__all__ = [
    "ANYCAST_BASE",
    "CAMPAIGN_KINDS",
    "CampaignContext",
    "CatchmentScenario",
    "EdgeFailureScenario",
    "HijackScenario",
    "KIND_CATCHMENT",
    "KIND_DEPEER",
    "KIND_HIJACK",
    "KIND_LINK_FAILURE",
    "generate_catchment",
    "generate_depeer",
    "generate_hijack",
    "generate_link_failure",
]
