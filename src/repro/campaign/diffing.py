"""Diff a perturbed scenario's path map against the baseline artifact.

A campaign scenario re-simulates a perturbed copy of the model and
collects the same ``(origin, observer) -> path set`` map the serve
compiler freezes into a :class:`~repro.serve.artifact.PredictionArtifact`.
This module compares that map against the baseline's: which pairs
*changed* their path set, which *lost* all reachability, which *gained*
paths that did not exist before, and how much total path diversity the
perturbation destroyed or created (the "Unexploited Path Diversity"
angle: a failure's real cost is how many distinct paths it removes, not
just whether reachability survives).

Path-level accounting goes through the shared
:func:`repro.diffutil.multiset_diff`, the same pairing the static lint
differ uses, so "N paths removed" means the same thing in a campaign
report and a lint diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.diffutil import multiset_diff

Pair = tuple[int, int]
"""An ``(origin ASN, observer ASN)`` answer pair."""


@dataclass(frozen=True)
class ScenarioDiff:
    """How one scenario's answers differ from the baseline's.

    ``changed`` pairs answer with a different non-empty path set,
    ``lost`` pairs had baseline paths but none now, ``gained`` pairs
    have paths the baseline lacked entirely.  ``paths_removed`` /
    ``paths_added`` count individual AS-paths across all compared pairs
    (multiset semantics), so ``diversity_delta`` is the net change in
    the model's total path diversity.
    """

    changed: tuple[Pair, ...] = ()
    lost: tuple[Pair, ...] = ()
    gained: tuple[Pair, ...] = ()
    paths_added: int = 0
    paths_removed: int = 0
    unchanged_pairs: int = 0

    @property
    def blast_radius(self) -> int:
        """Number of (origin, observer) pairs the scenario touched at all."""
        return len(self.changed) + len(self.lost) + len(self.gained)

    @property
    def diversity_delta(self) -> int:
        """Net AS-path count change (negative: diversity destroyed)."""
        return self.paths_added - self.paths_removed

    def to_dict(self) -> dict:
        """JSON-serialisable diff (deterministic given the contents)."""
        return {
            "changed": [list(pair) for pair in self.changed],
            "lost": [list(pair) for pair in self.lost],
            "gained": [list(pair) for pair in self.gained],
            "paths_added": self.paths_added,
            "paths_removed": self.paths_removed,
            "unchanged_pairs": self.unchanged_pairs,
            "blast_radius": self.blast_radius,
            "diversity_delta": self.diversity_delta,
        }


def diff_path_maps(
    baseline: Mapping[Pair, Iterable[tuple[int, ...]]],
    current: Mapping[Pair, Iterable[tuple[int, ...]]],
    exclude_origins: Iterable[int] = (),
) -> ScenarioDiff:
    """Compare two ``(origin, observer) -> path set`` maps.

    ``exclude_origins`` names origins whose answers are untrustworthy on
    either side (quarantined at compile time, or degraded by this
    scenario's re-simulation); their pairs are ignored entirely rather
    than reported as spurious losses.
    """
    excluded = set(exclude_origins)
    pairs = sorted(set(baseline) | set(current))
    changed: list[Pair] = []
    lost: list[Pair] = []
    gained: list[Pair] = []
    paths_added = 0
    paths_removed = 0
    unchanged_pairs = 0
    for pair in pairs:
        if pair[0] in excluded:
            continue
        before = sorted(tuple(path) for path in baseline.get(pair, ()))
        after = sorted(tuple(path) for path in current.get(pair, ()))
        added, removed, _ = multiset_diff(before, after)
        paths_added += len(added)
        paths_removed += len(removed)
        if not added and not removed:
            unchanged_pairs += 1
        elif before and not after:
            lost.append(pair)
        elif after and not before:
            gained.append(pair)
        else:
            changed.append(pair)
    return ScenarioDiff(
        changed=tuple(changed),
        lost=tuple(lost),
        gained=tuple(gained),
        paths_added=paths_added,
        paths_removed=paths_removed,
        unchanged_pairs=unchanged_pairs,
    )
