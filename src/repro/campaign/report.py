"""The ranked campaign impact report.

A :class:`CampaignReport` orders every scenario by blast radius —
deterministically: blast radius descending, then scenario key — with the
quarantined scenarios (poison / repeated timeout in the pool) accounted
separately, RunHealth-style.  The ranked document itself contains no
wall-clock or host-specific fields; all of that lives under the separate
``meta`` key, so two runs of the same campaign (sequential or parallel,
interrupted-and-resumed or not) produce bit-identical reports once
``meta`` is set aside.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.diffutil import truncate_ranked

STATUS_OK = "ok"
"""The scenario simulation completed and was diffed against the baseline."""


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's contribution to the campaign report.

    ``status`` is :data:`STATUS_OK` for completed scenarios and the
    pool's ``poison`` / ``timeout`` classification for quarantined ones
    (``detail`` is then empty and ``failures`` lists the per-dispatch
    failure reasons).
    """

    key: str
    kind: str
    status: str
    blast_radius: float
    detail: dict = field(default_factory=dict)
    failures: tuple[str, ...] = ()

    @property
    def quarantined(self) -> bool:
        return self.status != STATUS_OK

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "status": self.status,
            "blast_radius": self.blast_radius,
            "detail": self.detail,
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ScenarioOutcome":
        return cls(
            key=str(document["key"]),
            kind=str(document["kind"]),
            status=str(document["status"]),
            blast_radius=float(document["blast_radius"]),
            detail=dict(document.get("detail") or {}),
            failures=tuple(document.get("failures") or ()),
        )

    def summary(self) -> str:
        """One ranked-report line's tail, per scenario kind."""
        if self.quarantined:
            return f"quarantined ({self.status}: {', '.join(self.failures)})"
        detail = self.detail
        diff = detail.get("diff")
        if diff is not None:
            return (
                f"changed {len(diff['changed'])}, lost {len(diff['lost'])}, "
                f"gained {len(diff['gained'])}, "
                f"diversity {diff['diversity_delta']:+d}"
            )
        if "capture_fraction" in detail:
            return (
                f"captured {len(detail['captured'])}, "
                f"partial {len(detail['partial'])}, "
                f"blackholed {len(detail['blackholed'])}, "
                f"capture {detail['capture_fraction']:.2f}"
            )
        if "shifted" in detail:
            if detail.get("params", {}).get("failed_site") is None:
                return f"attraction map over {len(detail['attraction'])} observers"
            return f"shifted {len(detail['shifted'])} observers"
        return ""


@dataclass
class CampaignReport:
    """Every scenario outcome of one campaign, ranked by impact."""

    kind: str
    baseline_checksum: str = ""
    outcomes: list[ScenarioOutcome] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    """Wall-clock, supervision summary and the run-metadata stamp — the
    only non-deterministic part of the report, kept under this one key."""

    def ranked(self) -> list[ScenarioOutcome]:
        """Completed scenarios by blast radius desc, then key; then
        quarantined scenarios by key."""
        completed = sorted(
            (o for o in self.outcomes if not o.quarantined),
            key=lambda o: (-o.blast_radius, o.key),
        )
        quarantined = sorted(
            (o for o in self.outcomes if o.quarantined), key=lambda o: o.key
        )
        return completed + quarantined

    def counts(self) -> dict[str, int]:
        quarantined = sum(1 for o in self.outcomes if o.quarantined)
        return {
            "scenarios": len(self.outcomes),
            "completed": len(self.outcomes) - quarantined,
            "quarantined": quarantined,
        }

    @property
    def exit_code(self) -> int:
        """3 (the quarantine exit code) if any scenario was quarantined."""
        return 3 if any(o.quarantined for o in self.outcomes) else 0

    def to_dict(self, include_meta: bool = True) -> dict:
        document = {
            "kind": self.kind,
            "baseline": self.baseline_checksum,
            "counts": self.counts(),
            "scenarios": [outcome.to_dict() for outcome in self.ranked()],
        }
        if include_meta:
            document["meta"] = self.meta
        return document

    def to_json(self, indent: int = 2, include_meta: bool = True) -> str:
        return json.dumps(
            self.to_dict(include_meta=include_meta),
            indent=indent,
            sort_keys=True,
        )

    def render(self, top: int | None = None) -> str:
        """The ranked text report, capped at ``top`` scenarios."""
        counts = self.counts()
        checksum = (
            f" vs baseline {self.baseline_checksum[:12]}"
            if self.baseline_checksum
            else ""
        )
        lines = [
            f"campaign {self.kind}: {counts['scenarios']} scenario(s), "
            f"{counts['completed']} completed, "
            f"{counts['quarantined']} quarantined{checksum}"
        ]
        ranked = [
            f"  {rank:3d}. blast {outcome.blast_radius:g}  {outcome.key}"
            f"  ({outcome.summary()})"
            for rank, outcome in enumerate(self.ranked(), start=1)
        ]
        lines.extend(truncate_ranked(ranked, top, "scenarios"))
        return "\n".join(lines)
