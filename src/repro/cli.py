"""Command-line interface: ``repro <subcommand>``.

Subcommands mirror the paper's workflow:

* ``repro synthesize`` — generate a synthetic Internet, simulate ground
  truth, and write a bgpdump-style RIB snapshot (plus optionally the
  ground-truth C-BGP config).
* ``repro ingest`` — fault-tolerant ingestion of a real feed (RouteViews
  style ``bgpdump -m`` table dump or CAIDA as-rel file): hardened
  streaming parse with typed record quarantine, sanitization passes
  (loops, bogon ASNs, martian prefixes, prepend collapse), a
  malformed-burst circuit breaker, periodic checkpoints with
  ``--resume``, and an exact JSON/text ``IngestReport``.  Exit codes:
  0 ok, 1 quality-gate failure, 2 bad args, 4 unreadable input,
  5 interrupted.
* ``repro analyze`` — Section 3 analysis of a dump: dataset summary,
  level-1 clique, classification, pruning, Figure 2 / Table 1 statistics.
* ``repro refine`` — build and refine an AS-routing model from a dump,
  evaluate on a held-out split, and optionally save the model as a
  C-BGP-style config.
* ``repro lint`` — static analysis of a saved model config (or of the
  certificates embedded in a compiled artifact), no simulation:
  dispute-wheel safety, route-map lint, topology lint, and — with
  ``--relationships`` — Gao-Rexford valley-free export compliance.
  ``--diff BASE`` statically diffs two models/artifacts into new /
  resolved / unchanged findings.  Exits 1 if any error-severity finding
  (for ``--diff``: any *new* error) is reported, 0 otherwise.
* ``repro whatif`` — load a saved model and predict the impact of
  removing an AS adjacency.
* ``repro chaos`` — run the pipeline over a deterministically
  fault-injected workload (dispute wheels, corrupted dump lines, session
  flaps, budget exhaustion) and emit a JSON run-health report.
* ``repro explain`` — replay one prefix of a saved model with tracing
  forced on and print hop-by-hop decision provenance: candidates, the
  decision step that selected the winner, and the refinement iteration
  that installed each policy consulted.
* ``repro stats`` — render the metrics/metadata slice of a JSON health
  report (counters, gauges, histogram percentiles, phase timings).
* ``repro compile-artifact`` — simulate every canonical prefix of a
  saved model once (``--workers`` fans out to the supervised pool) and
  freeze every (origin, observer) answer into a checksummed prediction
  artifact.
* ``repro query`` — answer one paths/diversity/lookup question from a
  compiled artifact, no simulation.
* ``repro serve`` — serve a compiled artifact over a threaded HTTP/JSON
  API (GET /paths /diversity /lookup /healthz /metrics) until a
  SIGINT/SIGTERM drains it gracefully.
* ``repro profile`` — run a workload (refine, compile-artifact or
  ingest) under the phase-attribution profiler, optionally with the
  statistical stack sampler, and write a versioned ``PROFILE.json``
  (plus a flamegraph-ready ``.folded`` stack file).
* ``repro bench-diff`` — compare the flat ``metrics`` maps of two
  PROFILE.json / ``results/BENCH_*.json`` documents against per-metric
  regression thresholds; exits 1 when anything regressed (the CI perf
  gate).

Global flags: ``--log-level`` / ``--log-json`` configure the ``repro``
logger tree; ``refine`` and ``chaos`` accept ``--trace FILE`` to write a
JSONL span/event trace of the run.

``refine`` and ``chaos`` accept ``--workers N`` to fan per-prefix
simulation out to a supervised worker pool (crash isolation, per-task
watchdogs, poison-prefix quarantine); ``--workers 1`` (the default) keeps
the sequential path bit-for-bit.  SIGINT/SIGTERM during a parallel phase
drains gracefully: in-flight prefixes get a bounded grace period, the
partial results are merged (and checkpointed, for ``refine
--checkpoint``), and the run exits 5 with ``interrupted: true`` in its
health report.

Exit codes follow :mod:`repro.resilience.health`: 0 ok, 1 refinement
stalled (or, for ``repro lint``, error findings), 2 usage, 3 diverged
prefixes quarantined (including poison/timeout prefixes the supervisor
gave up on), 4 unusable data, 5 interrupted by a graceful shutdown.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bgp.engine import simulate
from repro.cbgp.export import export_network
from repro.cbgp.parse import parse_script
from repro.core.build import build_initial_model
from repro.core.metrics import MatchKind
from repro.core.model import ASRoutingModel
from repro.core.predict import evaluate_model
from repro.core.refine import Refiner
from repro.core.split import split_by_observation_points
from repro.core.whatif import depeer
from repro.data.dumps import read_table_dump, write_table_dump
from repro.data.observation import collect_dataset, select_observation_points
from repro.data.synthesis import SyntheticConfig, synthesize_internet
from repro.errors import (
    CheckpointError,
    DatasetError,
    ParseError,
    ShutdownRequested,
    TopologyError,
)
from repro.net.prefix import Prefix
from repro.obs.logs import LEVELS, configure_logging
from repro.obs.meta import run_metadata
from repro.obs.metrics import get_registry
from repro.obs.trace import JsonlTracer, tracing
from repro.resilience.faults import FaultConfig
from repro.resilience.health import EXIT_DATA, EXIT_INTERRUPTED, RunHealth
from repro.resilience.retry import RetryPolicy
from repro.topology.classify import classify_ases
from repro.topology.clique import infer_level1_clique
from repro.topology.diversity import route_diversity_report
from repro.topology.graph import ASGraph
from repro.topology.prune import prune_single_homed_stubs


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_format=args.log_json)
    # Handlers stamp run metadata into health reports; remember the exact
    # invocation even when main() is called programmatically.
    args.invocation = list(argv) if argv is not None else sys.argv[1:]
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    return args.handler(args)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quasi-router AS-topology modelling (SIGCOMM'06 reproduction)",
    )
    parser.add_argument("--log-level", choices=LEVELS, default="warning",
                        help="stdlib logging level for the repro logger tree")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines")
    subparsers = parser.add_subparsers(title="subcommands")

    synth = subparsers.add_parser(
        "synthesize", help="generate a synthetic Internet and RIB dump"
    )
    synth.add_argument("--seed", type=int, default=42)
    synth.add_argument("--scale", type=float, default=0.3,
                       help="population scale factor relative to the default config")
    synth.add_argument("--points", type=int, default=30,
                       help="number of observation ASes")
    synth.add_argument("--out", required=True, help="dump file to write")
    synth.add_argument("--cbgp", help="also write the ground-truth config here")
    synth.set_defaults(handler=cmd_synthesize)

    ingest = subparsers.add_parser(
        "ingest",
        help="fault-tolerant ingestion of a real feed "
             "(bgpdump -m table dump or CAIDA as-rel file)",
    )
    ingest.add_argument("feed", help="raw feed file to ingest")
    ingest.add_argument("--format", choices=("bgpdump", "as-rel"),
                        default="bgpdump",
                        help="feed dialect (default: bgpdump -m)")
    ingest.add_argument("--out",
                        help="write the normalised clean dump here "
                             "(required with --checkpoint)")
    ingest.add_argument("--report",
                        help="write the JSON IngestReport to this path")
    ingest.add_argument("--json", action="store_true", dest="as_json",
                        help="print the IngestReport as JSON instead of text")
    ingest.add_argument("--checkpoint",
                        help="snapshot ingest progress here periodically")
    ingest.add_argument("--resume", action="store_true",
                        help="continue from an existing checkpoint "
                             "instead of starting over")
    ingest.add_argument("--checkpoint-every", type=int, default=20000,
                        help="source lines between checkpoint snapshots")
    ingest.add_argument("--strict", action="store_true",
                        help="raise on the first damaged record "
                             "(with its 1-based line number)")
    ingest.add_argument("--max-malformed-fraction", type=float, default=0.5,
                        help="whole-file damage fraction that fails the "
                             "quality gate (AS_SET skips excluded)")
    ingest.add_argument("--burst-window", type=int, default=500,
                        help="sliding window (record lines) of the "
                             "malformed-burst circuit breaker (0 disables)")
    ingest.add_argument("--burst-threshold", type=float, default=0.95,
                        help="damaged fraction of the window that trips "
                             "the breaker")
    ingest.add_argument("--no-quality-gate", action="store_true",
                        help="disable the malformed-fraction gate and the "
                             "burst breaker (still quarantines records)")
    ingest.add_argument("--synthetic", action="store_true",
                        help="feed is synthetic round-trip data: skip the "
                             "bogon-ASN and martian-prefix passes (their "
                             "number spaces overlap reserved ranges)")
    ingest.add_argument("--keep-bogons", action="store_true",
                        help="do not quarantine reserved/private ASNs")
    ingest.add_argument("--keep-martians", action="store_true",
                        help="do not quarantine reserved-space prefixes")
    ingest.add_argument("--prune", action="store_true",
                        help="chain the clean/prune/graph pipeline over the "
                             "ingested dataset and print its summary")
    ingest.add_argument("--seeds", type=int, nargs="*", default=[],
                        help="known tier-1 seed ASNs for --prune")
    ingest.set_defaults(handler=cmd_ingest)

    analyze = subparsers.add_parser("analyze", help="Section 3 dump analysis")
    analyze.add_argument("dump", help="bgpdump -m style file")
    analyze.add_argument("--seeds", type=int, nargs="*", default=[],
                         help="known tier-1 seed ASNs")
    analyze.set_defaults(handler=cmd_analyze)

    refine = subparsers.add_parser("refine", help="build + refine a model")
    refine.add_argument("dump", help="bgpdump -m style file")
    refine.add_argument("--train-fraction", type=float, default=0.5)
    refine.add_argument("--split-seed", type=int, default=0)
    refine.add_argument("--max-iterations", type=int, default=60)
    refine.add_argument("--out", help="write the refined model config here")
    refine.add_argument("--health-report",
                        help="write a JSON RunHealth report to this path")
    refine.add_argument("--checkpoint",
                        help="snapshot the run here; resumes if the file exists")
    refine.add_argument("--checkpoint-every", type=int, default=5,
                        help="iterations between checkpoint snapshots")
    refine.add_argument("--retry-attempts", type=int, default=0,
                        help="retry diverging prefixes with escalating budgets "
                             "this many times, then quarantine (0 = raise)")
    refine.add_argument("--lint-gate", action="store_true",
                        help="statically quarantine dispute-wheel prefixes "
                             "before simulating (zero attempts spent on them)")
    refine.add_argument("--trace",
                        help="write a JSONL span/event trace of the run here")
    _add_parallel_arguments(refine)
    refine.set_defaults(handler=cmd_refine)

    lint = subparsers.add_parser(
        "lint", help="static safety/policy/topology analysis of a model"
    )
    lint.add_argument("model", help="model config written by 'repro refine "
                                    "--out', or a compiled artifact with "
                                    "embedded certificates")
    lint.add_argument("--dump", help="training dump enabling the dataset-"
                                     "dependent rules (blocking filters, "
                                     "stale refinement clauses, reachability)")
    lint.add_argument("--passes", nargs="*", default=None,
                      metavar="PASS", help="subset of passes to run "
                                           "(safety policy topology gao)")
    lint.add_argument("--relationships", metavar="AS_REL",
                      help="CAIDA as-rel file enabling the Gao-Rexford "
                           "valley-free export pass")
    lint.add_argument("--diff", metavar="BASE",
                      help="statically diff against BASE (a model config or "
                           "compiled artifact) and report new / resolved / "
                           "unchanged findings; exits 1 only on new errors")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the full report as JSON instead of text")
    lint.add_argument("--max-findings", type=int, default=50,
                      help="findings shown in text mode (JSON is never cut)")
    lint.set_defaults(handler=cmd_lint)

    chaos = subparsers.add_parser(
        "chaos", help="run the pipeline over a fault-injected workload"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--scale", type=float, default=0.25,
                       help="population scale of the synthetic Internet")
    chaos.add_argument("--points", type=int, default=12,
                       help="number of observation ASes")
    chaos.add_argument("--dispute-wheels", type=int, default=2,
                       help="prefixes sabotaged with local-pref dispute wheels")
    chaos.add_argument("--corrupt-fraction", type=float, default=0.1,
                       help="fraction of dump lines garbled")
    chaos.add_argument("--truncate-fraction", type=float, default=0.05,
                       help="fraction of dump lines truncated")
    chaos.add_argument("--flap-sessions", type=int, default=2,
                       help="eBGP peerings torn down before simulation")
    chaos.add_argument("--message-budget", type=int, default=None,
                       help="sabotaged initial per-prefix message budget")
    chaos.add_argument("--retry-attempts", type=int, default=3)
    chaos.add_argument("--lint-gate", action="store_true",
                       help="statically quarantine wheel prefixes before "
                            "simulating instead of burning retry budget")
    chaos.add_argument("--refine-iterations", type=int, default=10)
    chaos.add_argument("--health-report",
                       help="write the JSON RunHealth report to this path "
                            "(default: stdout)")
    chaos.add_argument("--trace",
                       help="write a JSONL span/event trace of the run here")
    _add_parallel_arguments(chaos)
    chaos.add_argument("--kill-prefixes", type=int, default=0,
                       help="prefixes whose parallel task kills its worker "
                            "outright (needs --workers >= 2)")
    chaos.add_argument("--hang-prefixes", type=int, default=0,
                       help="prefixes whose parallel task hangs until the "
                            "task watchdog fires (needs --workers >= 2)")
    chaos.add_argument("--serve", action="store_true", dest="serve_campaign",
                       help="run the serve-path resilience campaign (hot "
                            "reloads, worker kills, overload, drain) "
                            "against a real 'repro serve' process tree "
                            "instead of the pipeline campaign")
    chaos.add_argument("--serve-workers", type=int, default=2,
                       help="SO_REUSEPORT workers for the --serve campaign")
    chaos.add_argument("--bench-out", metavar="PATH",
                       help="with --serve: write the campaign's "
                            "BENCH_serve_resilience.json here")
    chaos.set_defaults(handler=cmd_chaos)

    explain = subparsers.add_parser(
        "explain", help="hop-by-hop decision provenance for one prefix"
    )
    explain.add_argument("model", help="model config written by 'repro refine --out'")
    explain.add_argument("prefix", help="canonical model prefix, e.g. 0.10.0.0/24")
    explain.add_argument("--observer", type=int, metavar="ASN",
                         help="walk the winning quasi-router chain from this "
                              "AS to the origin (default: explain every AS)")
    explain.add_argument("--retry-attempts", type=int, default=3,
                         help="budget-escalation attempts for the replay")
    explain.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the explanation as JSON instead of text")
    explain.set_defaults(handler=cmd_explain)

    stats = subparsers.add_parser(
        "stats", help="render the metrics slice of a JSON health report"
    )
    stats.add_argument("report", help="health report written with --health-report")
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the stats slice as JSON instead of text")
    stats.set_defaults(handler=cmd_stats)

    whatif = subparsers.add_parser("whatif", help="predict a link removal")
    whatif.add_argument("model", help="model config written by 'repro refine --out'")
    whatif.add_argument("--remove", type=int, nargs=2, metavar=("ASN_A", "ASN_B"),
                        required=True)
    whatif.add_argument("--max-changes", type=int, default=10,
                        help="how many changed pairs to print")
    whatif.set_defaults(handler=cmd_whatif)

    compile_ = subparsers.add_parser(
        "compile-artifact",
        help="simulate a saved model once and freeze all answers "
             "into a prediction artifact",
    )
    compile_.add_argument("model",
                          help="model config written by 'repro refine --out'")
    compile_.add_argument("--out", required=True,
                          help="artifact file to write")
    compile_.add_argument("--observers", type=int, nargs="*", metavar="ASN",
                          help="restrict answers to these observer ASes "
                               "(default: every AS in the model)")
    compile_.add_argument("--retry-attempts", type=int, default=3,
                          help="budget-escalation attempts before a "
                               "diverging prefix is quarantined")
    compile_.add_argument("--relationships", metavar="AS_REL",
                          help="CAIDA as-rel file; enables the Gao-Rexford "
                               "pass in the embedded safety certificates")
    _add_parallel_arguments(compile_)
    compile_.set_defaults(handler=cmd_compile_artifact)

    query = subparsers.add_parser(
        "query", help="answer one question from a compiled artifact"
    )
    query.add_argument("artifact",
                       help="artifact written by 'repro compile-artifact'")
    query.add_argument("--origin", type=int, metavar="ASN",
                       help="origin AS (with --observer: a paths query)")
    query.add_argument("--observer", type=int, metavar="ASN", required=True,
                       help="observer AS answering the question")
    query.add_argument("--lookup", metavar="IP_OR_PREFIX",
                       help="longest-prefix-match this address/prefix "
                            "instead of naming an origin")
    query.add_argument("--diversity", action="store_true",
                       help="report the route-diversity summary instead "
                            "of the raw path set")
    query.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the answer as JSON instead of text")
    query.set_defaults(handler=cmd_query)

    serve = subparsers.add_parser(
        "serve", help="serve a compiled artifact over HTTP/JSON"
    )
    serve.add_argument("artifact",
                       help="artifact written by 'repro compile-artifact'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="bounded LRU entries in the query cache")
    serve.add_argument("--request-timeout", type=float, default=10.0,
                       help="per-connection socket timeout in seconds")
    serve.add_argument("--workers", type=int, default=1,
                       help="serve from N supervised SO_REUSEPORT "
                            "processes; a killed worker is replaced "
                            "automatically (default: 1, in-process)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="bounded admission: concurrent requests "
                            "before load-shedding 503s (0 disables "
                            "admission control)")
    serve.add_argument("--deadline", type=float, default=5.0,
                       help="per-request deadline in seconds (metered; "
                            "late finishes count serve.deadline_exceeded)")
    serve.add_argument("--watch-artifact", type=float, default=None,
                       metavar="SECONDS",
                       help="poll the artifact file at this interval and "
                            "hot-reload when it changes (SIGHUP and "
                            "POST /-/reload always work)")
    serve.add_argument("--chaos-delay-ms", type=float, default=0.0,
                       help="artificial per-query handler delay for "
                            "overload/chaos testing (milliseconds)")
    serve.add_argument("--stats-report",
                       help="write a 'repro stats'-renderable JSON report "
                            "here after the drain")
    serve.set_defaults(handler=cmd_serve)

    profile = subparsers.add_parser(
        "profile",
        help="run a workload under the phase profiler and write PROFILE.json",
    )
    profile.add_argument("workload",
                         choices=("refine", "compile-artifact", "ingest"),
                         help="pipeline to profile end to end")
    profile.add_argument("dump",
                         help="table dump (refine/compile-artifact) or raw "
                              "feed (ingest) the workload consumes")
    profile.add_argument("--out", default="PROFILE.json",
                         help="PROFILE.json path to write")
    profile.add_argument("--folded", metavar="FILE",
                         help="write a collapsed-stack .folded file here "
                              "(implies --sample)")
    profile.add_argument("--sample", action="store_true",
                         help="run the statistical stack sampler alongside "
                              "the phase profiler")
    profile.add_argument("--sample-mode", choices=("thread", "signal"),
                         default="thread",
                         help="sampler clock: thread=wall-clock (default), "
                              "signal=CPU time via SIGPROF")
    profile.add_argument("--sample-interval", type=float, default=0.005,
                         help="sampling period in seconds")
    profile.add_argument("--trace-memory", action="store_true",
                         help="attribute tracemalloc peak memory per phase "
                              "(slows the run)")
    profile.add_argument("--max-iterations", type=int, default=10,
                         help="refinement iteration cap for the "
                              "refine/compile-artifact workloads")
    profile.set_defaults(handler=cmd_profile)

    bench_diff = subparsers.add_parser(
        "bench-diff",
        help="compare two PROFILE/BENCH JSONs; exit 1 on regression",
    )
    bench_diff.add_argument("base", help="baseline PROFILE.json/BENCH_*.json")
    bench_diff.add_argument("current", help="candidate PROFILE.json/BENCH_*.json")
    bench_diff.add_argument("--default-threshold", type=float, default=20.0,
                            help="percent change tolerated before a metric "
                                 "counts as regressed")
    bench_diff.add_argument("--threshold", action="append", metavar="NAME=PCT",
                            help="per-metric threshold override (repeatable)")
    bench_diff.add_argument("--skip", action="append", metavar="GLOB",
                            help="fnmatch glob of metric names to exclude "
                                 "(repeatable); e.g. '*seconds*' when base "
                                 "and current ran on different machines")
    bench_diff.add_argument("--json", action="store_true", dest="as_json",
                            help="emit the comparison as JSON instead of text")
    bench_diff.set_defaults(handler=cmd_bench_diff)

    campaign = subparsers.add_parser(
        "campaign",
        help="sweep a scenario space (depeer / link-failure / hijack / "
             "catchment) and rank scenarios by blast radius",
    )
    campaign.add_argument(
        "kind", choices=["depeer", "link-failure", "hijack", "catchment"],
        help="which scenario space to sweep")
    campaign.add_argument(
        "model", help="model config written by 'repro refine --out'")
    campaign.add_argument(
        "--baseline", metavar="ARTIFACT",
        help="baseline prediction artifact to diff against "
             "(default: compile one in-process)")
    campaign.add_argument(
        "--ases", type=int, nargs="*", metavar="ASN",
        help="depeer: only adjacencies incident to these ASes")
    campaign.add_argument(
        "--top-degree", type=int, default=3,
        help="link-failure: target the K highest-degree ASes")
    campaign.add_argument(
        "--seeds", type=int, nargs="*", metavar="ASN",
        help="link-failure: explicit target ASes instead of --top-degree")
    campaign.add_argument(
        "--victim", type=int, metavar="ASN",
        help="hijack: the AS whose canonical prefix is re-originated")
    campaign.add_argument(
        "--attackers", type=int, nargs="*", metavar="ASN",
        help="hijack: candidate attacker ASes (default: every other AS)")
    campaign.add_argument(
        "--sites", type=int, nargs="*", metavar="ASN",
        help="catchment: anycast site ASes (at least 2)")
    campaign.add_argument(
        "--max-scenarios", type=int, metavar="N",
        help="cap the scenario space at the first N scenarios (key order); "
             "the dropped tail is reported, never silent")
    campaign.add_argument(
        "--top", type=int, default=10,
        help="ranked scenarios to print (0 = all)")
    campaign.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the ranked report as JSON instead of text")
    campaign.add_argument(
        "--report", metavar="PATH",
        help="also write the full JSON report to this file")
    campaign.add_argument(
        "--checkpoint", metavar="PATH",
        help="scenario checkpoint file (written on completion and during "
             "a signal-driven drain)")
    campaign.add_argument(
        "--resume", action="store_true",
        help="skip scenarios already recorded in --checkpoint")
    campaign.add_argument(
        "--retry-attempts", type=int, default=3,
        help="budget-escalation attempts before a diverging prefix is "
             "quarantined inside a scenario")
    campaign.add_argument(
        "--trace", metavar="PATH",
        help="write campaign and supervision trace events as JSON lines")
    _add_parallel_arguments(campaign)
    campaign.set_defaults(handler=cmd_campaign)
    return parser


def _add_parallel_arguments(subparser) -> None:
    """The supervised-pool flags shared by ``refine`` and ``chaos``."""
    subparser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for per-prefix simulation (1 = sequential, "
             "bit-for-bit the single-process path)")
    subparser.add_argument(
        "--task-timeout", type=float, default=60.0,
        help="per-prefix wall-clock watchdog in seconds; a worker past it "
             "is killed and the prefix resubmitted (0 disables)")
    subparser.add_argument(
        "--max-resubmits", type=int, default=2,
        help="fresh workers a crashing/hanging prefix gets before being "
             "quarantined as poison")


def _parallel_config(args):
    """A :class:`~repro.parallel.ParallelConfig` from CLI flags, or None."""
    if getattr(args, "workers", 1) <= 1:
        return None
    from repro.parallel import ParallelConfig

    return ParallelConfig(
        workers=args.workers,
        task_timeout=args.task_timeout if args.task_timeout > 0 else None,
        max_resubmits=max(0, args.max_resubmits),
    )


def cmd_synthesize(args) -> int:
    """Handle ``repro synthesize``."""
    config = SyntheticConfig(seed=args.seed).scaled(args.scale)
    internet = synthesize_internet(config)
    print(f"synthesized {internet.network}", file=sys.stderr)
    started = time.perf_counter()
    stats = simulate(internet.network)
    print(
        f"ground truth converged: {stats.messages} messages in "
        f"{time.perf_counter() - started:.1f}s",
        file=sys.stderr,
    )
    points = select_observation_points(internet, args.points, seed=args.seed)
    dataset = collect_dataset(internet.network, points)
    lines = write_table_dump(dataset, args.out)
    print(f"wrote {lines} RIB entries to {args.out}", file=sys.stderr)
    print(f"tier-1 seed ASNs: {' '.join(map(str, internet.level1_asns[:3]))}")
    if args.cbgp:
        with open(args.cbgp, "w", encoding="ascii") as handle:
            export_network(internet.network, handle)
        print(f"wrote ground-truth config to {args.cbgp}", file=sys.stderr)
    return 0


def _pruned_pipeline(dataset, seeds: list[int]):
    """Shared cleaned/pruned pipeline over an already-parsed dataset.

    Used by analyze/refine (via :func:`_load_pruned`) and chained onto
    ``repro ingest --prune`` so real feeds flow into the same
    clean -> graph -> clique -> classify -> prune sequence.
    """
    dataset = dataset.cleaned()
    graph = ASGraph.from_dataset(dataset)
    if not graph.ases():
        # A fully-quarantined feed must fail loudly here, not as an
        # opaque ValueError from max() below.
        raise DatasetError(
            "dataset is empty after cleaning; no usable routes survived"
        )
    if not seeds:
        # fall back to the highest-degree AS as the seed
        seeds = [max(graph.ases(), key=graph.degree)]
    level1 = infer_level1_clique(graph, seeds)
    classification = classify_ases(dataset, graph, level1)
    pruned = prune_single_homed_stubs(dataset, graph, classification)
    return dataset, graph, level1, classification, pruned


def _load_pruned(dump_path: str, seeds: list[int]):
    """Shared dump -> cleaned/pruned dataset pipeline for analyze/refine."""
    parsed = read_table_dump(dump_path)
    return (parsed, *_pruned_pipeline(parsed.dataset, seeds))


def _write_ingest_report(args, report) -> None:
    """Emit the IngestReport per the --report/--json flags."""
    if args.report:
        with open(args.report, "w", encoding="ascii") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote ingest report to {args.report}", file=sys.stderr)
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render())


def cmd_ingest(args) -> int:
    """Handle ``repro ingest``.

    Exit codes: 0 ok, 1 quality-gate failure (mostly-garbage feed,
    malformed burst, or a strict-mode parse error), 2 bad arguments,
    4 unreadable input, 5 interrupted (checkpoint saved).
    """
    import signal

    from repro.data.ingest import IngestConfig, ingest_table_dump
    from repro.data.sanitize import SanitizeConfig
    from repro.errors import IngestError

    if args.format == "as-rel":
        if args.checkpoint or args.resume or args.out:
            print(
                "error: --checkpoint/--resume/--out apply only to "
                "--format bgpdump",
                file=sys.stderr,
            )
            return 2
        return _ingest_as_rel(args)
    if args.checkpoint and not args.out:
        print("error: --checkpoint requires --out (the clean dump is what "
              "a resume restores from)", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.synthetic:
        sanitize = SanitizeConfig.for_synthetic()
    else:
        sanitize = SanitizeConfig(
            drop_bogon_asns=not args.keep_bogons,
            drop_martian_prefixes=not args.keep_martians,
        )
    config = IngestConfig(
        sanitize=sanitize,
        strict=args.strict,
        max_malformed_fraction=(
            None if args.no_quality_gate else args.max_malformed_fraction
        ),
        burst_window=0 if args.no_quality_gate else args.burst_window,
        burst_threshold=args.burst_threshold,
        checkpoint_every=max(1, args.checkpoint_every),
    )
    get_registry().reset()

    # A SIGINT/SIGTERM mid-ingest drains gracefully: the loop notices at
    # the next line boundary, writes a final checkpoint, and exits 5.
    received: dict[str, int] = {}

    def _on_signal(signum, frame):  # pragma: no cover - exercised in subproc
        received["signum"] = signum

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
    try:
        result = ingest_table_dump(
            args.feed,
            out_path=args.out,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            config=config,
            should_stop=lambda: received.get("signum"),
        )
    except IngestError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.report is not None:
            _write_ingest_report(args, error.report)
        return 1
    except ParseError as error:  # strict mode names line + field
        print(f"error: {error}", file=sys.stderr)
        return 1
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    except OSError as error:
        print(f"error: cannot read {args.feed}: {error}", file=sys.stderr)
        return EXIT_DATA
    except ShutdownRequested as shutdown:
        print(
            f"interrupted by signal {shutdown.signum}"
            + (f"; checkpoint saved to {args.checkpoint}; rerun with "
               "--resume to continue" if args.checkpoint else ""),
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    if result.resumed_from_line:
        print(f"resumed from line {result.resumed_from_line}",
              file=sys.stderr)
    if args.out:
        print(f"wrote {result.report.accepted} clean records to {args.out}",
              file=sys.stderr)
    _write_ingest_report(args, result.report)
    if args.prune:
        try:
            dataset, graph, level1, classification, pruned = _pruned_pipeline(
                result.dataset, args.seeds
            )
        except DatasetError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"cleaned:           {dataset.summary()['routes']} routes, "
              f"{graph.num_ases()} ASes, {graph.num_edges()} edges")
        print(f"level-1 clique:    {sorted(level1)}")
        print(f"pruned:            {len(pruned.pruned_asns)} single-homed "
              f"stubs, {pruned.transferred_routes} routes transferred, "
              f"{pruned.graph.num_ases()} ASes remain")
    return 0


def _ingest_as_rel(args) -> int:
    """``repro ingest --format as-rel``: CAIDA relationship files."""
    from repro.data.caida import read_as_rel
    from repro.topology.prune import restrict_to_largest_component

    get_registry().reset()
    try:
        result = read_as_rel(
            args.feed,
            strict=args.strict,
            drop_bogons=not (args.keep_bogons or args.synthetic),
            max_malformed_fraction=(
                None if args.no_quality_gate else args.max_malformed_fraction
            ),
        )
    except ParseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except DatasetError as error:  # the mostly-garbage quality gate
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: cannot read {args.feed}: {error}", file=sys.stderr)
        return EXIT_DATA
    graph = result.graph
    if args.prune:
        graph, dropped = restrict_to_largest_component(graph)
        if dropped:
            print(f"pruned {len(dropped)} ASes outside the largest "
                  "connected component", file=sys.stderr)
    _write_ingest_report(args, result.report)
    print(f"as-rel graph:      {graph.num_ases()} ASes, "
          f"{graph.num_edges()} edges ({result.relationships!r})",
          file=sys.stderr)
    return 0


def cmd_analyze(args) -> int:
    """Handle ``repro analyze``."""
    try:
        parsed, dataset, graph, level1, classification, pruned = _load_pruned(
            args.dump, args.seeds
        )
    except DatasetError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    print(f"parsed lines:      {parsed.lines} "
          f"(skipped: {parsed.skipped_as_set} AS_SET, "
          f"{parsed.skipped_malformed} malformed)")
    for key, value in dataset.summary().items():
        print(f"  {key:<20} {value}")
    print(f"level-1 clique:    {sorted(level1)}")
    for key, value in classification.summary().items():
        print(f"  {key:<20} {value}")
    print(
        f"pruned:            {len(pruned.pruned_asns)} single-homed stubs, "
        f"{pruned.transferred_routes} routes transferred"
    )
    report = route_diversity_report(dataset)
    print(f"multipath pairs:   {report.fraction_pairs_multipath:.1%}")
    print("table 1 quantiles: "
          + ", ".join(f"p{p:.0f}={v}" for p, v in report.table1().items()))
    return 0


def cmd_refine(args) -> int:
    """Handle ``repro refine``."""
    health = RunHealth()
    health.record_meta(
        run_metadata(argv=getattr(args, "invocation", None), seed=args.split_seed)
    )
    get_registry().reset()
    if args.trace:
        with tracing(JsonlTracer(args.trace)) as tracer:
            code = _refine_run(args, health)
        print(f"wrote {tracer.records_written} trace records to {args.trace}",
              file=sys.stderr)
        return code
    return _refine_run(args, health)


def _refine_run(args, health: RunHealth) -> int:
    """The ``repro refine`` pipeline body (tracing already configured)."""
    from repro.core.refine import RefinementConfig

    with health.phase("parse"):
        try:
            parsed, _, _, _, _, pruned = _load_pruned(args.dump, [])
        except DatasetError as error:
            print(f"error: {error}", file=sys.stderr)
            health.record_error(error)
            if args.health_report:
                health.record_metrics()
                health.write(args.health_report)
            return EXIT_DATA
    health.record_parse(parsed)
    training, validation = split_by_observation_points(
        pruned.dataset, args.train_fraction, seed=args.split_seed
    )
    retry = RetryPolicy(max_attempts=args.retry_attempts) \
        if args.retry_attempts > 0 else None
    model = build_initial_model(pruned.dataset, pruned.graph)
    if args.lint_gate:
        from repro.analysis import analyze_model

        with health.phase("lint"):
            lint_report = analyze_model(model, dataset=training)
        health.record_lint(lint_report)
        if lint_report.errors:
            print(
                f"lint gate: {len(lint_report.errors)} error finding(s); "
                "statically-unsafe prefixes will be quarantined unsimulated",
                file=sys.stderr,
            )
    refiner = Refiner(
        model,
        training,
        RefinementConfig(
            max_iterations=args.max_iterations,
            retry=retry,
            checkpoint_every=args.checkpoint_every,
            lint_gate=args.lint_gate,
            parallel=_parallel_config(args),
        ),
    )
    started = time.perf_counter()
    with health.phase("refine"):
        try:
            result = refiner.run(checkpoint=args.checkpoint)
        except CheckpointError as error:
            print(f"error: {error}", file=sys.stderr)
            health.record_error(error)
            if args.health_report:
                health.record_metrics()
                health.write(args.health_report)
            return EXIT_DATA
        except ShutdownRequested as shutdown:
            return _refine_interrupted(args, health, refiner, shutdown)
    model = result.model  # a resumed run swaps in the checkpointed model
    print(
        f"refinement: {result.iteration_count} iterations, "
        f"converged={result.converged}, {time.perf_counter() - started:.1f}s"
    )
    print(f"model: {model}")
    unmatched = refiner.unmatched_paths() if not result.converged else []
    health.record_refinement(result, unmatched)
    if refiner.outcomes:
        from repro.resilience.retry import ResilienceStats

        health.record_simulation(
            ResilienceStats(
                outcomes=refiner.outcomes, supervision=refiner.supervision
            )
        )
        quarantined = sorted(set(health.diverged_prefixes))
        if quarantined:
            print(f"quarantined diverged prefixes: {' '.join(quarantined)}",
                  file=sys.stderr)
    with health.phase("evaluate"):
        for label, dataset in (("training", training), ("validation", validation)):
            report = evaluate_model(model, dataset)
            print(
                f"{label:<11} cases={report.total} "
                f"rib-out={report.rib_out_rate:.1%} "
                f"potential={report.rate(MatchKind.POTENTIAL_RIB_OUT):.1%} "
                f"tie-break+={report.tie_break_or_better_rate:.1%} "
                f"rib-in+={report.rib_in_or_better_rate:.1%}"
            )
    if args.out:
        with open(args.out, "w", encoding="ascii") as handle:
            export_network(model.network, handle)
        print(f"wrote model config to {args.out}")
    health.record_metrics()
    if args.health_report:
        health.write(args.health_report)
        print(f"wrote health report to {args.health_report}", file=sys.stderr)
    return health.exit_code


def _refine_interrupted(args, health: RunHealth, refiner, shutdown) -> int:
    """Finish ``repro refine`` after a graceful signal-driven drain.

    The refiner already wrote a final checkpoint (when ``--checkpoint``
    was given); here the partial results land in the health report and
    the run exits :data:`~repro.resilience.health.EXIT_INTERRUPTED`.
    """
    from repro.resilience.retry import ResilienceStats

    health.interrupted = True
    if refiner.outcomes:
        health.record_simulation(
            ResilienceStats(
                outcomes=refiner.outcomes, supervision=refiner.supervision
            )
        )
    print(
        f"interrupted by signal {shutdown.signum}: "
        f"{len(refiner.outcomes)} prefix(es) simulated, "
        f"{len(shutdown.pending)} left"
        + (f"; checkpoint saved to {args.checkpoint}" if args.checkpoint else ""),
        file=sys.stderr,
    )
    health.record_metrics()
    if args.health_report:
        health.write(args.health_report)
        print(f"wrote health report to {args.health_report}", file=sys.stderr)
    return EXIT_INTERRUPTED


def _is_artifact(path: str) -> bool:
    """True when ``path`` starts with the prediction-artifact magic."""
    from repro.serve.artifact import MAGIC

    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _lint_report(path, dataset, passes, relationships, certified):
    """One side of a lint run: a report for a model config or artifact.

    An artifact contributes the certified findings frozen at compile
    time; a model config is analyzed live.  ``certified`` switches the
    live side to the certificate engine's safety/policy/gao passes so a
    ``--diff`` with an artifact on the other side compares
    like-with-like (the dataset- and observer-dependent rules cannot be
    reconstructed from an artifact).
    """
    if _is_artifact(path):
        from repro.analysis.certify import CertificateStore
        from repro.errors import CertificateError
        from repro.serve import PredictionArtifact

        artifact = PredictionArtifact.load(path)
        if not artifact.certificates:
            raise CertificateError(
                f"artifact {path} carries no safety certificates; recompile "
                "it with this build of 'repro compile-artifact'"
            )
        return CertificateStore.from_dict(artifact.certificates).report()
    with open(path, "r", encoding="ascii") as handle:
        network = parse_script(handle)
    model = ASRoutingModel.from_network(network)
    if certified:
        from repro.analysis import certify_network

        return certify_network(
            model.network, relationships=relationships
        ).report()
    from repro.analysis import analyze_model

    return analyze_model(
        model, dataset=dataset, passes=passes, relationships=relationships
    )


def cmd_lint(args) -> int:
    """Handle ``repro lint``."""
    from repro.analysis import ALL_PASSES, diff_reports
    from repro.errors import ArtifactError, CertificateError

    relationships = None
    if args.relationships:
        from repro.data.caida import read_as_rel

        try:
            relationships = read_as_rel(args.relationships).relationships
        except (OSError, DatasetError, ParseError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_DATA
    dataset = None
    if args.dump:
        try:
            dataset = read_table_dump(args.dump).dataset.cleaned()
        except (OSError, DatasetError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_DATA
    passes = tuple(args.passes) if args.passes else ALL_PASSES
    certified = _is_artifact(args.model) or (
        args.diff is not None and _is_artifact(args.diff)
    )
    base = None
    try:
        report = _lint_report(
            args.model, dataset, passes, relationships, certified
        )
        if args.diff is not None:
            base = _lint_report(
                args.diff, dataset, passes, relationships, certified
            )
    except (OSError, ParseError, TopologyError, ArtifactError,
            CertificateError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if base is not None:
        diff = diff_reports(base, report)
        if args.as_json:
            print(diff.to_json())
        else:
            print(diff.render(max_findings=args.max_findings))
        return diff.exit_code
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render(max_findings=args.max_findings))
    return report.exit_code


def cmd_chaos(args) -> int:
    """Handle ``repro chaos``."""
    from repro.experiments.chaos import ChaosConfig, run_chaos

    if args.serve_campaign:
        return _cmd_chaos_serve(args)
    parallel = _parallel_config(args)
    if parallel is None and (args.kill_prefixes or args.hang_prefixes):
        print("error: --kill-prefixes/--hang-prefixes need --workers >= 2",
              file=sys.stderr)
        return 2
    config = ChaosConfig(
        seed=args.seed,
        scale=args.scale,
        points=args.points,
        refine_iterations=args.refine_iterations,
        faults=FaultConfig(
            seed=args.seed,
            dispute_wheels=args.dispute_wheels,
            corrupt_line_fraction=args.corrupt_fraction,
            truncate_line_fraction=args.truncate_fraction,
            session_flaps=args.flap_sessions,
            message_budget=args.message_budget,
            worker_crash_prefixes=args.kill_prefixes,
            worker_hang_prefixes=args.hang_prefixes,
        ),
        retry=RetryPolicy(max_attempts=max(1, args.retry_attempts)),
        lint_gate=args.lint_gate,
        parallel=parallel,
    )
    get_registry().reset()
    if args.trace:
        with tracing(JsonlTracer(args.trace)) as tracer:
            health = run_chaos(config)
        print(f"wrote {tracer.records_written} trace records to {args.trace}",
              file=sys.stderr)
    else:
        health = run_chaos(config)
    health.record_meta(
        run_metadata(argv=getattr(args, "invocation", None), seed=args.seed)
    )
    health.record_metrics()
    if args.health_report:
        health.write(args.health_report)
        print(f"wrote health report to {args.health_report}", file=sys.stderr)
    else:
        print(health.to_json())
    summary = health.to_dict()
    simulation = summary.get("simulation") or {}
    parts = [
        f"chaos: {simulation.get('prefixes', 0)} prefixes",
        f"{simulation.get('attempts', 0)} attempts",
        f"{simulation.get('retries', 0)} retries",
        f"{len(simulation.get('transient') or [])} transient",
        f"{len(simulation.get('diverged') or [])} diverged",
        f"{len(simulation.get('unsafe') or [])} statically unsafe",
    ]
    if parallel is not None:
        parts.append(f"{len(simulation.get('poison') or [])} poison")
        parts.append(f"{len(simulation.get('timeout') or [])} timed out")
    if health.interrupted:
        parts.append("interrupted")
    parts.append(f"exit code {health.exit_code}")
    print(", ".join(parts), file=sys.stderr)
    return health.exit_code


def _cmd_chaos_serve(args) -> int:
    """Handle ``repro chaos --serve``: the serve-resilience campaign.

    Exit codes: 0 contract held, 1 an availability assertion failed.
    """
    from repro.experiments.serve_chaos import (
        ServeChaosConfig,
        run,
        write_bench,
    )

    if args.serve_workers < 2:
        print("error: --serve-workers must be >= 2 (worker-kill recovery "
              "needs a surviving worker)", file=sys.stderr)
        return 2
    config = ServeChaosConfig(seed=args.seed, workers=args.serve_workers)
    try:
        result = run(config)
    except AssertionError as error:
        print(f"serve chaos campaign FAILED: {error}", file=sys.stderr)
        return 1
    print(result.render())
    if args.bench_out:
        path = write_bench(result, args.bench_out)
        print(f"wrote {path}", file=sys.stderr)
    return 0


def cmd_explain(args) -> int:
    """Handle ``repro explain``."""
    import json

    from repro.obs.explain import explain_prefix

    try:
        with open(args.model, "r", encoding="ascii") as handle:
            network = parse_script(handle)
        model = ASRoutingModel.from_network(network)
        prefix = Prefix(args.prefix)
    except (OSError, ParseError, TopologyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    if args.observer is not None and args.observer not in model.network.ases:
        print(f"error: observer AS{args.observer} is not in the model",
              file=sys.stderr)
        return EXIT_DATA
    try:
        explanation = explain_prefix(
            model,
            prefix,
            observer_asn=args.observer,
            retry=RetryPolicy(max_attempts=max(1, args.retry_attempts)),
        )
    except TopologyError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    if args.as_json:
        print(json.dumps(explanation.to_dict(), indent=2, sort_keys=True))
    else:
        print(explanation.render())
    return 0


def cmd_stats(args) -> int:
    """Handle ``repro stats``."""
    import json

    from repro.obs.stats import health_stats, load_health_report, render_stats

    try:
        report = load_health_report(args.report)
    except DatasetError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    if args.as_json:
        print(json.dumps(health_stats(report), indent=2, sort_keys=True))
    else:
        print(render_stats(report))
    return 0


def _load_model(path: str) -> ASRoutingModel:
    """Load a saved model config; raises the load errors unwrapped."""
    with open(path, "r", encoding="ascii") as handle:
        network = parse_script(handle)
    return ASRoutingModel.from_network(network)


def cmd_whatif(args) -> int:
    """Handle ``repro whatif``."""
    try:
        model = _load_model(args.model)
    except (OSError, ParseError, TopologyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    asn_a, asn_b = args.remove
    try:
        # The library validates both endpoints up front: an ASN outside
        # the model is a usage error named to the caller before any
        # simulation, never a silent "no paths changed" report.
        report = depeer(model, asn_a, asn_b)
    except TopologyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"what-if: {report.description}")
    print(
        f"  examined {report.origins_examined} origins x "
        f"{report.observers_examined} observers"
    )
    print(f"  changed pairs:      {report.affected_pairs}")
    print(f"  lost reachability:  {report.unreachable_pairs}")
    for change in report.changes[: args.max_changes]:
        print(f"  AS{change.observer_asn} -> AS{change.origin_asn}:")
        for path in sorted(change.before):
            print(f"    before: {' '.join(map(str, path))}")
        if change.after:
            for path in sorted(change.after):
                print(f"    after:  {' '.join(map(str, path))}")
        else:
            print("    after:  (unreachable)")
    return 0


def cmd_compile_artifact(args) -> int:
    """Handle ``repro compile-artifact``."""
    from repro.errors import ModelError
    from repro.serve import compile_artifact
    from repro.serve.compile import write_artifact

    try:
        model = _load_model(args.model)
    except (OSError, ParseError, TopologyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    relationships = None
    if args.relationships:
        from repro.data.caida import read_as_rel

        try:
            relationships = read_as_rel(args.relationships).relationships
        except (OSError, DatasetError, ParseError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_DATA
    get_registry().reset()
    retry = RetryPolicy(max_attempts=max(1, args.retry_attempts))
    started = time.perf_counter()
    try:
        artifact, report = compile_artifact(
            model,
            observers=args.observers or None,
            retry=retry,
            parallel=_parallel_config(args),
            meta=run_metadata(argv=getattr(args, "invocation", None)),
            relationships=relationships,
        )
    except ModelError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ShutdownRequested as shutdown:
        print(
            f"interrupted by signal {shutdown.signum} before the artifact "
            "was compiled; nothing written", file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    size = write_artifact(artifact, args.out)
    print(
        f"compiled {len(artifact.origins)} origins x "
        f"{len(artifact.observers)} observers -> {report.pairs} pairs "
        f"with paths in {time.perf_counter() - started:.1f}s"
    )
    cert_fingerprint = str(artifact.certificates.get("fingerprint", ""))
    print(
        f"certified {len(artifact.certificates.get('certificates') or ())} "
        f"certificate(s), {report.certified_findings} finding(s), "
        f"store fingerprint {cert_fingerprint[:12] or '(none)'}"
    )
    if report.quarantined:
        print(
            f"quarantined prefixes (refuse queries): "
            f"{' '.join(report.quarantined)}",
            file=sys.stderr,
        )
    print(f"wrote {size} bytes to {args.out}")
    return 3 if report.quarantined else 0


def _load_artifact_engine(path: str, cache_size: int = 4096):
    """Load an artifact into a query engine (raises ``ArtifactError``)."""
    from repro.serve import PredictionArtifact, QueryEngine

    return QueryEngine(PredictionArtifact.load(path), cache_size=cache_size)


def cmd_query(args) -> int:
    """Handle ``repro query``."""
    import json

    from repro.errors import ArtifactError
    from repro.serve.engine import QUARANTINED, QueryError

    if (args.origin is None) == (args.lookup is None):
        print("error: give exactly one of --origin or --lookup",
              file=sys.stderr)
        return 2
    try:
        engine = _load_artifact_engine(args.artifact)
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    try:
        if args.lookup is not None:
            answer = engine.lookup(args.lookup, args.observer)
        elif args.diversity:
            answer = engine.diversity(args.origin, args.observer)
        else:
            answer = engine.paths(args.origin, args.observer)
    except QueryError as error:
        # Unknown ASNs/targets follow the CLI usage contract: exit 2 with
        # the offender named.  Quarantined origins are degraded data (3).
        print(f"error: {error}", file=sys.stderr)
        return 3 if error.kind == QUARANTINED else 2
    if args.as_json:
        print(json.dumps(answer.to_dict(), indent=2, sort_keys=True))
        return 0
    payload = answer.to_dict()
    if "path_count" in payload:  # diversity answer
        print(f"AS{payload['observer']} -> AS{payload['origin']} "
              f"({payload['prefix']}): {payload['path_count']} path(s), "
              f"next hops {payload['next_hops']}, "
              f"lengths {payload['min_length']}..{payload['max_length']}")
        return 0
    label = payload.get("target") or f"AS{payload['origin']}"
    print(f"AS{payload['observer']} -> {label} "
          f"({payload.get('matched_prefix') or payload['prefix']}):")
    if not payload["paths"]:
        print("  (unreachable)")
    for path in payload["paths"]:
        print(f"  {' '.join(map(str, path))}")
    return 0


def cmd_serve(args) -> int:
    """Handle ``repro serve``."""
    from repro.errors import ArtifactError
    from repro.serve import AdmissionController, run_server, run_supervised

    get_registry().reset()
    try:
        engine = _load_artifact_engine(
            args.artifact, cache_size=args.cache_size
        )
    except (ArtifactError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    handler_delay = max(0.0, args.chaos_delay_ms) / 1000.0
    try:
        if args.workers > 1:
            # N SO_REUSEPORT processes under the serve supervisor; each
            # worker loads the artifact itself, so the engine above only
            # served as an upfront validation of the file.
            code = run_supervised(
                args.artifact,
                args.workers,
                host=args.host,
                port=args.port,
                options={
                    "cache_size": args.cache_size,
                    "request_timeout": args.request_timeout,
                    "max_inflight": max(0, args.max_inflight),
                    "deadline_seconds": args.deadline,
                    "watch_interval": args.watch_artifact,
                    "handler_delay": handler_delay,
                },
            )
        else:
            admission = None
            if args.max_inflight > 0:
                admission = AdmissionController(
                    max_inflight=args.max_inflight,
                    deadline_seconds=args.deadline,
                )
            code = run_server(
                engine,
                host=args.host,
                port=args.port,
                request_timeout=args.request_timeout,
                artifact_path=args.artifact,
                cache_size=args.cache_size,
                admission=admission,
                watch_interval=args.watch_artifact,
                handler_delay=handler_delay,
            )
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return EXIT_DATA
    if args.stats_report:
        health = RunHealth()
        health.record_meta(
            run_metadata(argv=getattr(args, "invocation", None))
        )
        health.record_metrics()
        health.write(args.stats_report)
        print(f"wrote stats report to {args.stats_report}", file=sys.stderr)
    return code


def cmd_profile(args) -> int:
    """Handle ``repro profile``.

    Exit codes: 0 profiled, 2 bad arguments, 4 unusable input.
    """
    from repro.experiments.profiling import (
        WORKLOAD_COMPILE,
        WORKLOAD_INGEST,
        compile_workload,
        ingest_workload,
        refine_workload,
        run_profiled,
    )
    from repro.obs.profile import render_profile, write_profile

    workload_info = {"name": args.workload, "dump": args.dump}
    if args.workload == WORKLOAD_INGEST:
        fn = ingest_workload(args.dump)
    else:
        workload_info["max_iterations"] = args.max_iterations
        if args.workload == WORKLOAD_COMPILE:
            fn = compile_workload(args.dump, max_iterations=args.max_iterations)
        else:
            fn = refine_workload(args.dump, max_iterations=args.max_iterations)
    sample = args.sample or args.folded is not None
    try:
        run = run_profiled(
            workload_info,
            fn,
            trace_memory=args.trace_memory,
            sample=sample,
            sample_mode=args.sample_mode,
            sample_interval=args.sample_interval,
            folded_path=args.folded,
            meta=run_metadata(argv=getattr(args, "invocation", None)),
        )
    except (DatasetError, ParseError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    write_profile(run.document, args.out)
    print(render_profile(run.document))
    print(f"wrote profile to {args.out}", file=sys.stderr)
    if args.folded and run.sampler is not None:
        print(
            f"wrote {len(run.sampler.stacks)} collapsed stacks "
            f"({run.sampler.samples} samples) to {args.folded}",
            file=sys.stderr,
        )
    return 0


def cmd_bench_diff(args) -> int:
    """Handle ``repro bench-diff``.

    Exit codes: 0 no regressions, 1 regression(s), 2 bad arguments,
    4 unreadable/invalid input documents.
    """
    from repro.obs.benchdiff import diff_files

    thresholds: dict[str, float] = {}
    for spec in args.threshold or []:
        name, separator, pct = spec.partition("=")
        if not separator or not name:
            print(f"error: --threshold expects NAME=PCT, got {spec!r}",
                  file=sys.stderr)
            return 2
        try:
            thresholds[name] = float(pct)
        except ValueError:
            print(f"error: --threshold {spec!r}: {pct!r} is not a number",
                  file=sys.stderr)
            return 2
    try:
        diff = diff_files(
            args.base,
            args.current,
            default_threshold=args.default_threshold,
            thresholds=thresholds,
            skip=args.skip or [],
        )
    except DatasetError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    if args.as_json:
        print(diff.to_json())
    else:
        print(diff.render())
    return diff.exit_code


def _generate_campaign(args, model):
    """The scenario list for one ``repro campaign`` invocation.

    Raises :class:`~repro.errors.TopologyError` (usage, exit 2) for
    unknown ASNs or missing required per-kind flags.
    """
    from repro.campaign import (
        generate_catchment,
        generate_depeer,
        generate_hijack,
        generate_link_failure,
    )

    if args.kind == "depeer":
        return generate_depeer(model, ases=args.ases or None)
    if args.kind == "link-failure":
        return generate_link_failure(
            model, top_degree=args.top_degree, seeds=args.seeds or None
        )
    if args.kind == "hijack":
        if args.victim is None:
            raise TopologyError("hijack campaigns require --victim ASN")
        return generate_hijack(
            model, victim=args.victim, attackers=args.attackers or None
        )
    if not args.sites or len(args.sites) < 2:
        raise TopologyError(
            "catchment campaigns require --sites with at least 2 ASNs"
        )
    return generate_catchment(model, args.sites)


def cmd_campaign(args) -> int:
    """Handle ``repro campaign``."""
    import json

    from repro.campaign import (
        context_from_artifact,
        run_campaign,
        validate_baseline,
    )
    from repro.errors import ArtifactError, CheckpointError
    from repro.serve import PredictionArtifact

    try:
        model = _load_model(args.model)
    except (OSError, ParseError, TopologyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DATA
    get_registry().reset()
    retry = RetryPolicy(max_attempts=max(1, args.retry_attempts))
    if args.baseline:
        try:
            artifact = PredictionArtifact.load(args.baseline)
            validate_baseline(model, artifact)
        except ArtifactError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_DATA
    else:
        from repro.serve import compile_artifact

        print("no --baseline given; compiling one in-process",
              file=sys.stderr)
        try:
            artifact, _ = compile_artifact(model, retry=retry)
        except ShutdownRequested as shutdown:
            print(
                f"interrupted by signal {shutdown.signum} while compiling "
                "the baseline; nothing to resume", file=sys.stderr,
            )
            return EXIT_INTERRUPTED
        # Scenario workers and the baseline must not share routing state:
        # scenarios re-simulate from a cold network.
        model.network.clear_routing()

    try:
        scenarios = _generate_campaign(args, model)
    except TopologyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scenarios.sort(key=lambda scenario: scenario.key)
    dropped = 0
    if args.max_scenarios is not None and len(scenarios) > args.max_scenarios:
        dropped = len(scenarios) - args.max_scenarios
        scenarios = scenarios[: args.max_scenarios]
        print(
            f"scenario space capped at {args.max_scenarios}: "
            f"{dropped} scenario(s) dropped by --max-scenarios",
            file=sys.stderr,
        )
    if not scenarios:
        print("error: the scenario space is empty", file=sys.stderr)
        return 2

    context = context_from_artifact(artifact)

    def execute() -> int:
        try:
            report = run_campaign(
                model,
                args.kind,
                scenarios,
                context,
                retry=retry,
                parallel=_parallel_config(args),
                checkpoint=args.checkpoint,
                resume=args.resume,
            )
        except CheckpointError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_DATA
        except ShutdownRequested as shutdown:
            where = (
                f"; checkpoint written to {args.checkpoint}"
                if args.checkpoint else " (no --checkpoint, progress lost)"
            )
            print(
                f"interrupted by signal {shutdown.signum}: "
                f"{len(shutdown.pending)} scenario(s) unfinished{where}",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
        report.meta.update(
            run_metadata(argv=getattr(args, "invocation", None))
        )
        if dropped:
            report.meta["scenarios_dropped"] = dropped
        if args.report:
            with open(args.report, "w", encoding="ascii") as handle:
                handle.write(report.to_json() + "\n")
            print(f"wrote report to {args.report}", file=sys.stderr)
        if args.as_json:
            print(report.to_json())
        else:
            print(report.render(top=args.top if args.top > 0 else None))
        return report.exit_code

    if args.trace:
        with tracing(JsonlTracer(args.trace)) as tracer:
            code = execute()
        print(f"wrote {tracer.records_written} trace records to {args.trace}",
              file=sys.stderr)
        return code
    return execute()


if __name__ == "__main__":
    sys.exit(main())
