"""repro — an AS-topology model that captures route diversity.

A reproduction of Mühlbauer, Feldmann, Maennel, Roughan & Uhlig,
"Building an AS-topology model that captures route diversity"
(SIGCOMM 2006), as a complete library: the BGP propagation engine, the
measurement substrate, topology analysis, relationship-inference
baselines, the quasi-router AS-routing model with its iterative
refinement heuristic, and an experiment harness regenerating every table
and figure of the paper's evaluation.

Start at :mod:`repro.core` for the paper's contribution, or run
``python examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "1.0.0"
