"""Structured trace layer: nested spans plus typed events, JSONL on disk.

A *span* is a named phase with a wall-clock duration (``parse``,
``simulate``, ``refine-iteration``, ``prefix``); spans nest, and every
event records the span it happened inside.  An *event* is one typed
occurrence: a decision-process outcome, a policy install/delete, a
quasi-router duplication, a retry attempt, a quarantine.

The default tracer is :class:`NullTracer`, whose ``enabled`` flag lets
hot paths skip even building the event payload::

    tracer = get_tracer()
    ...
    if tracer.enabled:
        tracer.event(EVENT_DECISION, router=router.name, ...)

so tracing costs one attribute check per hook point when off.  Install a
real tracer for the duration of a run with :func:`tracing`::

    with tracing(JsonlTracer(path)):
        refiner.run()

Trace files are JSON Lines: one object per record, ``kind`` one of
``span-start`` / ``span-end`` / ``event``.  Span records carry ``span``
(id), ``parent`` and ``name``; ``span-end`` adds ``elapsed`` seconds.
Event records carry ``type``, ``span`` (the enclosing span id or None)
and the event's own fields.  ``t`` is seconds since the tracer was
created, so a trace is self-contained and diffable across runs.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator

EVENT_DECISION = "decision"
"""One decision-process run: candidates, winner, decisive step."""

EVENT_BUDGET_EXHAUSTED = "budget-exhausted"
"""A per-prefix simulation hit its message budget (ConvergenceError)."""

EVENT_POLICY_INSTALL = "policy-install"
"""The refiner installed filter/ranking clauses at a quasi-router."""

EVENT_POLICY_DELETE = "policy-delete"
"""The refiner removed blocking egress filters (Figure 7)."""

EVENT_ROUTER_DUPLICATE = "router-duplicate"
"""The refiner cloned a quasi-router (Section 4.6 duplication)."""

EVENT_RETRY = "retry"
"""A diverged prefix is being re-simulated with an escalated budget."""

EVENT_QUARANTINE = "quarantine"
"""A prefix exhausted its retry policy and was quarantined."""

EVENT_LINT_QUARANTINE = "lint-quarantine"
"""The static lint gate quarantined a prefix before any simulation."""

EVENT_WORKER_SPAWN = "worker-spawn"
"""The parallel supervisor started (or restarted) a worker process."""

EVENT_WORKER_DEATH = "worker-death"
"""A supervised worker died or lost its heartbeat mid-task."""

EVENT_TASK_TIMEOUT = "task-timeout"
"""A per-task wall-clock watchdog expired; the worker was killed."""

EVENT_TASK_RESUBMIT = "task-resubmit"
"""A task whose worker failed is being handed to a fresh worker."""

EVENT_POISON_PREFIX = "poison-prefix"
"""A prefix exhausted ``max_resubmits`` and was classified poison/timeout."""

EVENT_DRAIN = "drain"
"""SIGINT/SIGTERM received: the supervisor is draining gracefully."""

EVENT_SCENARIO = "campaign-scenario"
"""A campaign scenario finished (or was quarantined) with its impact."""


class Tracer:
    """Base tracer: span bookkeeping plus the record sink interface.

    Subclasses implement :meth:`_record`; everything else (span ids,
    nesting, timestamps) is shared.  Tracers are single-threaded, like
    the engine they observe.
    """

    enabled = True

    def __init__(self) -> None:
        self._next_span = 1
        self._stack: list[int] = []
        self._started = time.monotonic()

    def _now(self) -> float:
        return time.monotonic() - self._started

    def _record(self, record: dict) -> None:
        raise NotImplementedError

    def event(self, type_: str, **fields: Any) -> None:
        """Emit one typed event inside the current span (if any)."""
        record = {
            "kind": "event",
            "type": type_,
            "span": self._stack[-1] if self._stack else None,
            "t": round(self._now(), 6),
        }
        record.update(fields)
        self._record(record)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[int]:
        """Open a nested span; yields the span id."""
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1] if self._stack else None
        start = {
            "kind": "span-start",
            "span": span_id,
            "parent": parent,
            "name": name,
            "t": round(self._now(), 6),
        }
        start.update(fields)
        self._record(start)
        self._stack.append(span_id)
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            elapsed = time.perf_counter() - started
            self._stack.pop()
            self._record(
                {
                    "kind": "span-end",
                    "span": span_id,
                    "name": name,
                    "t": round(self._now(), 6),
                    "elapsed": round(elapsed, 6),
                }
            )

    def close(self) -> None:
        """Release any resources; a no-op by default."""


class _NullSpan:
    """A reusable, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> int:
        return 0

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The default tracer: every operation is a no-op.

    ``enabled`` is False so instrumented code can skip payload
    construction entirely; even when called, nothing is recorded and
    :meth:`span` returns a shared allocation-free context manager.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - deliberately skips base init
        pass

    def event(self, type_: str, **fields: Any) -> None:
        return None

    def span(self, name: str, **fields: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def _record(self, record: dict) -> None:
        return None


class JsonlTracer(Tracer):
    """Write every record as one JSON line to a file or stream.

    Accepts a path (opened for writing, closed by :meth:`close`) or an
    already-open text stream (left open).  Usable as a context manager.
    """

    def __init__(self, sink: str | Path | IO[str]) -> None:
        super().__init__()
        if isinstance(sink, (str, Path)):
            self._handle: IO[str] = open(sink, "w", encoding="ascii")
            self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self.records_written = 0

    def _record(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RecordingTracer(Tracer):
    """Keep every record in memory; the tracer tests and ``explain`` use it."""

    def __init__(self) -> None:
        super().__init__()
        self.records: list[dict] = []

    def _record(self, record: dict) -> None:
        self.records.append(record)

    def events(self, type_: str | None = None) -> list[dict]:
        """The recorded events, optionally filtered by type."""
        return [
            record
            for record in self.records
            if record["kind"] == "event"
            and (type_ is None or record["type"] == type_)
        ]

    def spans(self, name: str | None = None) -> list[dict]:
        """The recorded span-start records, optionally filtered by name."""
        return [
            record
            for record in self.records
            if record["kind"] == "span-start"
            and (name is None or record["name"] == name)
        ]


_TRACER: Tracer = NullTracer()


def get_tracer() -> Tracer:
    """The currently-installed tracer (a shared :class:`NullTracer` by default)."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (None restores the no-op default).

    Returns the previously-installed tracer so callers can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NullTracer()
    return previous


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a block, then restore and close."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
