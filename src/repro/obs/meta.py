"""Run metadata: what produced this report / benchmark result.

A health report or a ``results/BENCH_*.json`` file is only evidence if
it is attributable: which commit, which interpreter, which CLI
invocation, which seed.  :func:`run_metadata` collects exactly that,
degrading gracefully (``git_sha`` is None outside a git checkout — e.g.
an installed wheel — rather than failing the run it describes).
"""

from __future__ import annotations

import platform
import subprocess
import sys
from pathlib import Path
from typing import Any

from repro import __version__


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The HEAD commit of the checkout containing ``cwd`` (None if no git)."""
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def run_metadata(
    argv: list[str] | None = None, seed: int | None = None
) -> dict[str, Any]:
    """The attribution stamp for a run.

    ``argv`` is the CLI argument vector of the invocation (defaults to
    ``sys.argv``); ``seed`` is the workload seed when the caller has one.
    """
    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": git_sha(),
        "argv": list(argv) if argv is not None else list(sys.argv),
        "seed": seed,
    }
