"""Decision provenance: why did the model pick this path? (``repro explain``)

:func:`explain_prefix` replays one canonical prefix with tracing forced
on, then walks the converged state hop by hop and reports, at each AS on
the way from an observer to the origin:

* the candidate routes the deciding quasi-router chose among (with the
  decision-process step that eliminated each loser),
* the step that made the winner unique (:attr:`DecisionOutcome.decisive_step`),
* every policy clause consulted for the prefix on the sessions feeding
  that quasi-router — with the refinement iteration and clause tag that
  installed it, so a MED ranking or egress filter is attributable to the
  Figure 6 cycle that created it.

The walk follows ``Route.peer_router`` links, so it names the *actual*
quasi-router chain the winning announcement travelled, not just the
AS-level path.  Without an observer, every AS holding candidates is
explained flat (no walk).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.attributes import RouteSource
from repro.bgp.decision import DecisionOutcome, run_decision, step_name
from repro.bgp.route import Route
from repro.bgp.router import Router
from repro.core.model import MODEL_DECISION_CONFIG, ASRoutingModel
from repro.net.prefix import Prefix
from repro.obs.trace import EVENT_RETRY, RecordingTracer, tracing
from repro.resilience.retry import RetryPolicy, simulate_prefix_with_retry


@dataclass
class PolicyProvenance:
    """One route-map clause consulted while deciding, with its origin."""

    direction: str
    """``import`` (receiver side) or ``export`` (announcing side)."""
    session: str
    """``src -> dst`` router names of the session carrying the clause."""
    position: int
    action: str
    match: str
    tag: str | None
    iteration: int | None

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "direction": self.direction,
            "session": self.session,
            "position": self.position,
            "action": self.action,
            "match": self.match,
            "tag": self.tag,
            "iteration": self.iteration,
        }

    def render(self) -> str:
        """One text line for the CLI output."""
        provenance = ""
        if self.tag is not None:
            provenance += f"  tag={self.tag}"
        if self.iteration is not None:
            provenance += f"  iter={self.iteration}"
        return (
            f"[{self.direction} {self.session} #{self.position}] "
            f"{self.action} if {self.match}{provenance}"
        )


@dataclass
class CandidateView:
    """One candidate route as the decision process saw it."""

    as_path: tuple[int, ...]
    peer: str
    local_pref: int
    med: int
    source: str
    eliminated_by: str | None
    """Kebab-case step name, or None for the winner."""

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "as_path": list(self.as_path),
            "peer": self.peer,
            "local_pref": self.local_pref,
            "med": self.med,
            "source": self.source,
            "eliminated_by": self.eliminated_by,
        }

    def render(self) -> str:
        """One text line for the CLI output."""
        path = " ".join(map(str, self.as_path)) if self.as_path else "(local)"
        verdict = (
            "<- selected"
            if self.eliminated_by is None
            else f"eliminated at {self.eliminated_by}"
        )
        return (
            f"{path:<24} via {self.peer:<12} "
            f"lp={self.local_pref} med={self.med}  {verdict}"
        )


@dataclass
class HopExplanation:
    """The decision at one quasi-router along the winning chain."""

    asn: int
    router: str
    candidates: list[CandidateView] = field(default_factory=list)
    best_path: tuple[int, ...] | None = None
    decisive_step: str = "no-route"
    policies: list[PolicyProvenance] = field(default_factory=list)
    originates: bool = False

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "asn": self.asn,
            "router": self.router,
            "originates": self.originates,
            "best_path": list(self.best_path) if self.best_path is not None else None,
            "decisive_step": self.decisive_step,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
            "policies": [policy.to_dict() for policy in self.policies],
        }


@dataclass
class PrefixExplanation:
    """Full provenance of one prefix replay."""

    prefix: Prefix
    origin: int
    observer: int | None
    status: str
    attempts: int
    messages: int
    decisions: int
    retries: int
    hops: list[HopExplanation] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serialisable report (``repro explain --json``)."""
        return {
            "prefix": str(self.prefix),
            "origin": self.origin,
            "observer": self.observer,
            "replay": {
                "status": self.status,
                "attempts": self.attempts,
                "messages": self.messages,
                "decisions": self.decisions,
                "retries": self.retries,
            },
            "hops": [hop.to_dict() for hop in self.hops],
        }

    def render(self) -> str:
        """The text report (``repro explain``)."""
        where = f" observed from AS{self.observer}" if self.observer is not None else ""
        lines = [
            f"explain {self.prefix} (origin AS{self.origin}){where}",
            f"replay: {self.status}, {self.attempts} attempt(s), "
            f"{self.messages} messages, {self.decisions} decisions, "
            f"{self.retries} retries",
        ]
        for number, hop in enumerate(self.hops, start=1):
            lines.append(f"hop {number}: AS{hop.asn} quasi-router {hop.router}")
            if hop.originates:
                lines.append("  originates the prefix locally")
            if not hop.candidates:
                lines.append("  no candidate routes")
            else:
                lines.append("  candidates:")
                for candidate in hop.candidates:
                    marker = "*" if candidate.eliminated_by is None else " "
                    lines.append(f"  {marker} {candidate.render()}")
            lines.append(f"  selected by step: {hop.decisive_step}")
            if hop.policies:
                lines.append("  policies consulted:")
                for policy in hop.policies:
                    lines.append(f"    {policy.render()}")
            else:
                lines.append("  policies consulted: (none)")
        return "\n".join(lines)


def explain_prefix(
    model: ASRoutingModel,
    prefix: Prefix,
    observer_asn: int | None = None,
    retry: RetryPolicy | None = None,
) -> PrefixExplanation:
    """Replay ``prefix`` with tracing forced on and explain its outcome.

    With ``observer_asn`` the explanation walks the winning quasi-router
    chain from the observer towards the origin; without it, every AS
    holding candidate routes is explained (sorted by ASN).  Raises
    :class:`~repro.errors.TopologyError` for a prefix the model does not
    originate.
    """
    origin = model.origin_of(prefix)
    tracer = RecordingTracer()
    with tracing(tracer):
        stats, outcome = simulate_prefix_with_retry(
            model.network, prefix, MODEL_DECISION_CONFIG,
            retry if retry is not None else RetryPolicy(),
        )
    explanation = PrefixExplanation(
        prefix=prefix,
        origin=origin,
        observer=observer_asn,
        status=outcome.status,
        attempts=outcome.attempts,
        messages=outcome.messages,
        decisions=stats.decisions,
        retries=len(tracer.events(EVENT_RETRY)),
    )
    if observer_asn is not None:
        explanation.hops = _walk_winning_chain(model, prefix, observer_asn)
    else:
        explanation.hops = [
            _explain_router(model, prefix, router)
            for asn in sorted(model.network.ases)
            for router in model.quasi_routers(asn)
            if router.candidates(prefix)
        ]
    return explanation


def _walk_winning_chain(
    model: ASRoutingModel, prefix: Prefix, observer_asn: int
) -> list[HopExplanation]:
    """Follow ``peer_router`` links from the observer to the origin."""
    routers = [
        router
        for router in model.quasi_routers(observer_asn)
        if router.best(prefix) is not None
    ]
    if not routers:
        # Nothing converged at the observer: explain its routers flat so
        # the user still sees the candidates (if any) and the no-route
        # verdict instead of an empty report.
        return [
            _explain_router(model, prefix, router)
            for router in model.quasi_routers(observer_asn)
        ]
    hops: list[HopExplanation] = []
    current: Router | None = min(routers, key=lambda router: router.router_id)
    seen: set[int] = set()
    while current is not None and current.router_id not in seen:
        seen.add(current.router_id)
        hops.append(_explain_router(model, prefix, current))
        best = current.best(prefix)
        if best is None or best.source is RouteSource.LOCAL or not best.peer_router:
            break
        current = model.network.routers.get(best.peer_router)
    return hops


def _explain_router(
    model: ASRoutingModel, prefix: Prefix, router: Router
) -> HopExplanation:
    """Explain the converged decision at one quasi-router."""
    candidates = router.candidates(prefix)
    outcome: DecisionOutcome = run_decision(candidates, MODEL_DECISION_CONFIG)
    hop = HopExplanation(
        asn=router.asn,
        router=router.name,
        originates=prefix in router.local_routes,
    )
    if outcome.best is not None:
        hop.best_path = outcome.best.as_path
        if len(candidates) <= 1:
            hop.decisive_step = step_name(None)
        else:
            hop.decisive_step = step_name(outcome.decisive_step)
    names = {r.router_id: r.name for r in model.network.routers.values()}
    for route in candidates:
        step = outcome.elimination_step(route)
        hop.candidates.append(
            CandidateView(
                as_path=route.as_path,
                peer=names.get(route.peer_router, "(local)"),
                local_pref=route.local_pref,
                med=route.med,
                source=route.source.name.lower(),
                eliminated_by=None if step is None else step_name(step),
            )
        )
    hop.policies = _consulted_policies(prefix, router)
    return hop


def _consulted_policies(prefix: Prefix, router: Router) -> list[PolicyProvenance]:
    """Every clause that could touch ``prefix`` on the way into ``router``.

    For each inbound session: the announcing side's *export* map (where
    the refiner's egress filters live) and the receiving side's *import*
    map (where its MED rankings live), restricted to clauses whose match
    could apply to the prefix.
    """
    policies: list[PolicyProvenance] = []
    for session in router.sessions_in:
        label = f"{session.src.name}->{session.dst.name}"
        for direction, route_map in (
            ("export", session.export_map),
            ("import", session.import_map),
        ):
            if route_map is None:
                continue
            for position, clause in route_map.entries_for_prefix(prefix):
                policies.append(
                    PolicyProvenance(
                        direction=direction,
                        session=label,
                        position=position,
                        action=_action_text(clause),
                        match=clause.match.describe(),
                        tag=clause.tag,
                        iteration=clause.iteration,
                    )
                )
    return policies


def _action_text(clause) -> str:
    """Compact action description for provenance lines."""
    if clause.action.value == "deny":
        return "deny"
    changes = []
    if clause.set_local_pref is not None:
        changes.append(f"set lp={clause.set_local_pref}")
    if clause.set_med is not None:
        changes.append(f"set med={clause.set_med}")
    if clause.prepend:
        changes.append(f"prepend x{clause.prepend}")
    return "permit" + (" " + ",".join(changes) if changes else "")
