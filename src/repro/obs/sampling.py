"""A stdlib statistical sampling profiler with flamegraph output.

The phase profiler (:mod:`repro.obs.profile`) answers "which engine
phase is hot"; this module answers "which *code* is hot" without any
instrumentation at all: a sampler periodically captures the profiled
thread's Python stack and counts identical stacks.  The result is
written in the collapsed-stack (``.folded``) format that standard
flamegraph tooling consumes directly::

    repro/bgp/engine:simulate_prefix;repro/bgp/engine:_decide_and_export 42

(one line per distinct stack, root first, frames separated by ``;``,
the sample count last — ``flamegraph.pl stacks.folded > flame.svg`` or
any speedscope-style viewer renders it).

Two sampling mechanisms, both dependency-free:

* ``thread`` (default): a daemon thread wakes every ``interval`` seconds
  and reads the target thread's frame out of ``sys._current_frames()``.
  Works everywhere, samples wall-clock time (blocked frames keep getting
  sampled), and cannot interrupt the profiled code mid-bytecode.
* ``signal``: ``signal.setitimer(ITIMER_PROF)`` delivers SIGPROF on
  consumed CPU time and the handler samples its own interrupted frame.
  Main-thread only (CPython restriction), but samples CPU time, which is
  the right clock for kernel-bound workloads.

The sampler deliberately keeps whole stacks (bounded by ``max_depth``)
rather than leaf counts: the flamegraph's value is attribution through
call chains, e.g. how much of ``select_best`` is reached via export
re-decisions versus initial announcements.
"""

from __future__ import annotations

import signal
import sys
import threading
from collections import Counter
from contextlib import contextmanager
from pathlib import Path
from types import FrameType
from typing import Iterator

DEFAULT_INTERVAL = 0.005
"""Default sampling period in seconds (200 Hz)."""


def _frame_label(frame: FrameType) -> str:
    """One collapsed-stack frame token: ``package/module:function``.

    Slashes keep the token free of the ``;`` and space separators the
    folded format reserves; the module path makes same-named functions
    (``run``, ``apply``) distinguishable in the flamegraph.
    """
    module = frame.f_globals.get("__name__", "?")
    return f"{module.replace('.', '/')}:{frame.f_code.co_name}"


def _collapse(frame: FrameType | None, max_depth: int) -> tuple[str, ...]:
    """The root-first stack of labels above (and including) ``frame``."""
    labels: list[str] = []
    while frame is not None and len(labels) < max_depth:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class StackSampler:
    """Count collapsed stacks of one thread at a fixed interval.

    Usable directly (``start()`` / ``stop()``) or as a context manager.
    ``samples`` is the total number of captures; ``stacks`` maps each
    distinct collapsed stack to its count.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        mode: str = "thread",
        max_depth: int = 64,
    ) -> None:
        if mode not in ("thread", "signal"):
            raise ValueError(f"mode must be 'thread' or 'signal', got {mode!r}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.mode = mode
        self.max_depth = max_depth
        self.stacks: Counter[tuple[str, ...]] = Counter()
        self.samples = 0
        self._target_ident: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._previous_handler = None
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin sampling the *calling* thread."""
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        if self.mode == "signal":
            self._start_signal()
        else:
            self._start_thread()

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        if not self._running:
            return
        self._running = False
        if self.mode == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGPROF, self._previous_handler)
                self._previous_handler = None
        else:
            self._stop.set()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Thread mode
    # ------------------------------------------------------------------

    def _start_thread(self) -> None:
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:  # target thread exited
                return
            self._record(frame)
            del frame  # drop the reference promptly; frames pin locals

    # ------------------------------------------------------------------
    # Signal mode
    # ------------------------------------------------------------------

    def _start_signal(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError("signal-mode sampling requires the main thread")
        self._target_ident = threading.get_ident()
        self._previous_handler = signal.signal(signal.SIGPROF, self._on_signal)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)

    def _on_signal(self, signum, frame) -> None:  # noqa: ARG002
        # The handler's own frame is not on the interrupted stack; `frame`
        # *is* the interrupted code.
        self._record(frame)

    # ------------------------------------------------------------------
    # Recording and output
    # ------------------------------------------------------------------

    def _record(self, frame: FrameType) -> None:
        self.stacks[_collapse(frame, self.max_depth)] += 1
        self.samples += 1

    def folded_lines(self) -> list[str]:
        """The collapsed-stack lines, most-sampled stack first."""
        ordered = sorted(
            self.stacks.items(), key=lambda item: (-item[1], item[0])
        )
        return [f"{';'.join(stack)} {count}" for stack, count in ordered]

    def write_folded(self, path: str | Path) -> int:
        """Write the ``.folded`` file; returns the number of lines."""
        lines = self.folded_lines()
        Path(path).write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="ascii"
        )
        return len(lines)

    def summary(self, folded_path: str | Path | None = None) -> dict:
        """The ``sampling`` section of a PROFILE.json document."""
        return {
            "mode": self.mode,
            "interval_seconds": self.interval,
            "samples": self.samples,
            "distinct_stacks": len(self.stacks),
            "folded": str(folded_path) if folded_path is not None else None,
        }


@contextmanager
def sampling(sampler: StackSampler) -> Iterator[StackSampler]:
    """Run ``sampler`` for the duration of a block."""
    sampler.start()
    try:
        yield sampler
    finally:
        sampler.stop()
