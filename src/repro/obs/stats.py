"""Render the metrics section of a health report (``repro stats``).

A :class:`~repro.resilience.health.RunHealth` JSON report carries a
``metrics`` snapshot (see :class:`~repro.obs.metrics.MetricsRegistry`)
plus ``meta`` and per-phase timings.  ``repro stats`` extracts and
renders that slice so operators can read counters and latency
percentiles without spelunking the full report.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import DatasetError

_HISTO_COLUMNS = ("count", "sum", "min", "max", "p50", "p95", "p99")


def load_health_report(path: str | Path) -> dict:
    """Read a RunHealth JSON report, raising ``DatasetError`` when unusable."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise DatasetError(f"cannot read health report {path}: {error}") from error
    try:
        report = json.loads(text)
    except json.JSONDecodeError as error:
        raise DatasetError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(report, dict):
        raise DatasetError(f"{path} is not a health report (expected an object)")
    return report


def health_stats(report: dict) -> dict:
    """The stats slice of a health report (``repro stats --json``)."""
    return {
        "meta": report.get("meta"),
        "phases_seconds": report.get("phases_seconds") or {},
        "metrics": report.get("metrics")
        or {"counters": {}, "gauges": {}, "histograms": {}},
        "simulation": _simulation_slice(report.get("simulation")),
        "interrupted": bool(report.get("interrupted")),
        "exit_code": report.get("exit_code"),
    }


_OUTCOME_KINDS = ("transient", "diverged", "unsafe", "poison", "timeout")


def _simulation_slice(simulation: dict | None) -> dict | None:
    """Outcome counts plus worker-supervision counters, if simulated."""
    if not simulation:
        return None
    slice_: dict = {
        "prefixes": simulation.get("prefixes", 0),
        "converged": simulation.get("converged", 0),
        "outcomes": {
            kind: len(simulation.get(kind) or []) for kind in _OUTCOME_KINDS
        },
    }
    if simulation.get("supervision"):
        slice_["supervision"] = dict(simulation["supervision"])
    return slice_


def render_stats(report: dict) -> str:
    """Text rendering of the stats slice for the terminal."""
    stats = health_stats(report)
    lines: list[str] = []
    meta = stats["meta"]
    if meta:
        lines.append("run:")
        for key in ("repro_version", "python", "platform", "git_sha", "seed"):
            if meta.get(key) is not None:
                lines.append(f"  {key:<16} {meta[key]}")
        if meta.get("argv"):
            lines.append(f"  {'argv':<16} {' '.join(map(str, meta['argv']))}")
    phases = stats["phases_seconds"]
    if phases:
        lines.append("phases:")
        for name, seconds in phases.items():
            lines.append(f"  {name:<16} {seconds:.3f}s")
    metrics = stats["metrics"]
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<32} {counters[name]}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<32} {gauges[name]:g}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            summary = histograms[name]
            if not summary.get("count"):
                lines.append(f"  {name:<32} (empty)")
                continue
            cells = "  ".join(
                f"{column}={_format(summary[column])}"
                for column in _HISTO_COLUMNS
                if column in summary
            )
            lines.append(f"  {name}:")
            lines.append(f"    {cells}")
    if not (counters or gauges or histograms):
        lines.append("metrics: (none recorded — re-run with a recent repro)")
    simulation = stats["simulation"]
    if simulation:
        lines.append("simulation:")
        lines.append(f"  {'prefixes':<16} {simulation['prefixes']}")
        lines.append(f"  {'converged':<16} {simulation['converged']}")
        for kind, count in simulation["outcomes"].items():
            if count:
                lines.append(f"  {kind:<16} {count}")
        supervision = simulation.get("supervision")
        if supervision:
            lines.append("supervision:")
            for key in sorted(supervision):
                lines.append(f"  {key:<16} {supervision[key]}")
    if stats["interrupted"]:
        lines.append("interrupted: yes (graceful shutdown drained this run)")
    if stats["exit_code"] is not None:
        lines.append(f"exit_code: {stats['exit_code']}")
    return "\n".join(lines)


def _format(value) -> str:
    """Compact number formatting for histogram cells."""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))
