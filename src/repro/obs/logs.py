"""Stdlib ``logging`` wiring for the ``repro`` package.

Every module logs through ``logging.getLogger(__name__)``; this module
only configures the handler/formatter for the ``repro`` namespace when
the CLI (or a library user) asks for it.  Importing the library never
touches global logging state — a library must not — so scripts that
embed :mod:`repro` keep full control.

``--log-json`` emits one JSON object per record (timestamp, level,
logger, message, plus any ``extra`` fields), matching the JSONL trace
format so both can feed the same log pipeline.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

ROOT_LOGGER = "repro"

LEVELS = ("debug", "info", "warning", "error", "critical")

_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Render each record as one JSON line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "t": round(record.created - _EPOCH, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


_EPOCH = time.time()


def configure_logging(
    level: str = "warning",
    json_format: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root package logger.

    Idempotent: re-running replaces the previously-installed handler
    rather than stacking a second one, so tests and long-lived sessions
    can reconfigure freely.  Records propagate no further than the
    ``repro`` logger, leaving the true root logger untouched.
    """
    if level.lower() not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
        )
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level.upper())
    logger.propagate = False
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_format:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    return logger
