"""Performance-attribution profiling: named phases with exclusive timing.

ROADMAP item 1 (the array-kernel rewrite) starts with "profile it", and a
10-100x claim is only checkable against numbers that say where inside the
engine the time currently goes.  A :class:`PhaseProfiler` attributes
wall-clock, CPU time and (optionally) tracemalloc peak memory to named
phases: the engine's hot loop reports ``engine.dispatch`` /
``engine.decision`` / ``engine.route-map`` / ``engine.export`` /
``engine.rib-merge``, the refiner reports its grading and certification
slices, and the ``repro profile`` workload runners wrap the coarse
pipeline stages (parse, build, refine, evaluate) around them.

Attribution is *exclusive* (self-time): phases nest, and elapsed time is
always charged to the innermost active phase.  The sum of all phase
times therefore equals the wall-clock spent inside *any* phase — no
double counting — and the ratio of that sum to the workload's measured
wall-clock is the profile's ``coverage`` (the acceptance bar is >= 90%
on the refine workload).

Like the tracer and the metrics registry, the default profiler is a
no-op (:class:`NullProfiler`) whose ``enabled`` flag lets hot paths skip
instrumentation entirely::

    profiler = get_profiler()
    prof = profiler if profiler.enabled else None
    ...
    if prof:
        prof.push(PHASE_DISPATCH)

so an unprofiled run pays one attribute check per hook point.  Install a
real profiler for one run with :func:`profiling`::

    with profiling(PhaseProfiler()) as profiler:
        refiner.run()
    print(profiler.report())

:func:`build_profile_document` freezes a profiler (plus the metrics
registry, sampling summary and run metadata) into the versioned
``PROFILE.json`` schema that ``repro profile`` writes and
``repro bench-diff`` compares.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

PROFILE_SCHEMA = 1
"""Version stamp of the PROFILE.json document layout.

``repro bench-diff`` refuses to compare documents whose schema it does
not understand, so the stamp must change whenever the meaning of a
recorded field changes.
"""

PHASE_DISPATCH = "engine.dispatch"
"""Message dispatch: queue pop plus receive-side import processing."""

PHASE_DECISION = "engine.decision"
"""The BGP decision process over a router's candidate routes."""

PHASE_ROUTE_MAP = "engine.route-map"
"""Route-map (policy clause) evaluation on session import/export."""

PHASE_EXPORT = "engine.export"
"""Send-side export filtering and per-session announcement building."""

PHASE_RIB_MERGE = "engine.rib-merge"
"""Adj-RIB-In / Loc-RIB / Adj-RIB-Out bookkeeping around a decision."""

ENGINE_PHASES = (
    PHASE_DISPATCH,
    PHASE_DECISION,
    PHASE_ROUTE_MAP,
    PHASE_EXPORT,
    PHASE_RIB_MERGE,
)


@dataclass
class PhaseStat:
    """Accumulated cost of one named phase (exclusive / self-time)."""

    name: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    entries: int = 0
    mem_peak_bytes: int = 0
    """Largest tracemalloc peak observed during this phase's exclusive
    slices (0 unless the profiler traces memory)."""

    def to_dict(self) -> dict:
        """JSON-serialisable summary of this phase."""
        payload = {
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "entries": self.entries,
        }
        if self.mem_peak_bytes:
            payload["mem_peak_bytes"] = self.mem_peak_bytes
        return payload


class PhaseProfiler:
    """Attribute wall/CPU/memory cost to a stack of named phases.

    ``push``/``switch``/``pop`` are the hot-path API (plain calls, one
    clock-pair read per transition); :meth:`phase` is the context-manager
    form for coarse phases.  ``switch`` replaces the top of the stack in
    one transition — the engine's linear dispatch->merge->decide sequence
    uses it to pay one attribution instead of a pop+push pair.
    """

    enabled = True

    def __init__(self, trace_memory: bool = False) -> None:
        self.phases: dict[str, PhaseStat] = {}
        self._stack: list[PhaseStat] = []
        self.started_wall = time.perf_counter()
        self.started_cpu = time.process_time()
        self._last_wall = self.started_wall
        self._last_cpu = self.started_cpu
        self.trace_memory = trace_memory
        self._owns_tracemalloc = False
        if trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # ------------------------------------------------------------------
    # Hot-path API
    # ------------------------------------------------------------------

    def _attribute(self) -> None:
        """Charge the time since the last transition to the current phase."""
        now_wall = time.perf_counter()
        now_cpu = time.process_time()
        if self._stack:
            stat = self._stack[-1]
            stat.wall_seconds += now_wall - self._last_wall
            stat.cpu_seconds += now_cpu - self._last_cpu
            if self.trace_memory:
                peak = tracemalloc.get_traced_memory()[1]
                if peak > stat.mem_peak_bytes:
                    stat.mem_peak_bytes = peak
                tracemalloc.reset_peak()
        self._last_wall = now_wall
        self._last_cpu = now_cpu

    def _stat(self, name: str) -> PhaseStat:
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = PhaseStat(name)
        return stat

    def push(self, name: str) -> None:
        """Enter a nested phase; time now accrues to ``name``."""
        self._attribute()
        stat = self._stat(name)
        stat.entries += 1
        self._stack.append(stat)

    def switch(self, name: str) -> None:
        """Replace the innermost phase with ``name`` in one transition.

        Must only be called with at least one phase active; the engine
        uses it to walk a message through its linear phase sequence.
        """
        self._attribute()
        stat = self._stat(name)
        stat.entries += 1
        self._stack[-1] = stat

    def pop(self) -> None:
        """Leave the innermost phase; time accrues to its parent again."""
        self._attribute()
        self._stack.pop()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context-manager form: ``with profiler.phase("parse"): ...``."""
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def attributed_wall_seconds(self) -> float:
        """Total wall-clock charged to any phase (no double counting)."""
        return sum(stat.wall_seconds for stat in self.phases.values())

    @property
    def attributed_cpu_seconds(self) -> float:
        """Total CPU time charged to any phase."""
        return sum(stat.cpu_seconds for stat in self.phases.values())

    def coverage(self, wall_seconds: float | None = None) -> float:
        """Fraction of ``wall_seconds`` the phases account for.

        Defaults to the profiler's own lifetime so far.  1.0 means every
        measured moment ran inside a named phase.
        """
        if wall_seconds is None:
            wall_seconds = time.perf_counter() - self.started_wall
        if wall_seconds <= 0.0:
            return 0.0
        return min(1.0, self.attributed_wall_seconds / wall_seconds)

    def report(self) -> dict:
        """Phase stats keyed by name, sorted by descending wall-clock."""
        ordered = sorted(
            self.phases.values(), key=lambda s: (-s.wall_seconds, s.name)
        )
        return {stat.name: stat.to_dict() for stat in ordered}

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False


class _NullPhase:
    """A reusable, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_PHASE = _NullPhase()


class NullProfiler(PhaseProfiler):
    """The default profiler: every operation is a no-op.

    ``enabled`` is False so instrumented hot paths skip even the method
    calls; a coarse call site using :meth:`phase` unconditionally pays
    one shared no-op context manager.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - deliberately skips base init
        self.phases = {}
        self.trace_memory = False

    def push(self, name: str) -> None:
        return None

    def switch(self, name: str) -> None:
        return None

    def pop(self) -> None:
        return None

    def phase(self, name: str) -> _NullPhase:  # type: ignore[override]
        return _NULL_PHASE

    def close(self) -> None:
        return None


_PROFILER: PhaseProfiler = NullProfiler()


def get_profiler() -> PhaseProfiler:
    """The currently-installed profiler (a shared no-op by default)."""
    return _PROFILER


def set_profiler(profiler: PhaseProfiler | None) -> PhaseProfiler:
    """Install ``profiler`` globally (None restores the no-op default).

    Returns the previously-installed profiler so callers can restore it.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler if profiler is not None else NullProfiler()
    return previous


@contextmanager
def profiling(profiler: PhaseProfiler) -> Iterator[PhaseProfiler]:
    """Install ``profiler`` for the duration of a block, then restore it."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)
        profiler.close()


# ----------------------------------------------------------------------
# PROFILE.json
# ----------------------------------------------------------------------


def build_profile_document(
    profiler: PhaseProfiler,
    wall_seconds: float,
    cpu_seconds: float,
    workload: dict[str, Any],
    meta: dict | None = None,
    registry=None,
    sampling: dict | None = None,
) -> dict:
    """Freeze one profiled run into the versioned PROFILE.json layout.

    The document carries a flat numeric ``metrics`` map (phase wall/CPU
    seconds, coverage, registry counters) shaped exactly like a
    ``BENCH_*.json`` ``metrics`` section, so ``repro bench-diff`` can
    compare any two of either kind.
    """
    if registry is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
    if meta is None:
        from repro.obs.meta import run_metadata

        meta = run_metadata()
    snapshot = registry.snapshot()
    coverage = profiler.coverage(wall_seconds)
    metrics: dict[str, float] = {
        "wall_seconds": round(wall_seconds, 6),
        "cpu_seconds": round(cpu_seconds, 6),
        "coverage": round(coverage, 6),
    }
    for name, stat in profiler.phases.items():
        metrics[f"phase.{name}.wall_seconds"] = round(stat.wall_seconds, 6)
        metrics[f"phase.{name}.cpu_seconds"] = round(stat.cpu_seconds, 6)
    for name, value in snapshot.get("counters", {}).items():
        metrics[f"counter.{name}"] = value
    return {
        "schema": PROFILE_SCHEMA,
        "workload": workload,
        "wall_seconds": round(wall_seconds, 6),
        "cpu_seconds": round(cpu_seconds, 6),
        "coverage": round(coverage, 6),
        "phases": profiler.report(),
        "metrics": metrics,
        "counters": snapshot.get("counters", {}),
        "histograms": snapshot.get("histograms", {}),
        "sampling": sampling,
        "meta": meta,
    }


def write_profile(document: dict, path: str | Path) -> Path:
    """Write a PROFILE.json document; returns the path written."""
    target = Path(path)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )
    return target


def render_profile(document: dict, top: int = 12) -> str:
    """Human-readable phase-attribution table for one PROFILE.json."""
    lines = [
        f"profile: workload={document['workload'].get('name', '?')} "
        f"wall={document['wall_seconds']:.3f}s "
        f"cpu={document['cpu_seconds']:.3f}s "
        f"coverage={document['coverage']:.1%}",
    ]
    phases = document.get("phases", {})
    if phases:
        width = max(len(name) for name in phases)
        lines.append(
            f"  {'phase':<{width}}  {'wall s':>10}  {'cpu s':>10}  "
            f"{'share':>6}  {'entries':>9}"
        )
        wall_total = document["wall_seconds"] or 1.0
        for name, stat in list(phases.items())[:top]:
            share = stat["wall_seconds"] / wall_total
            lines.append(
                f"  {name:<{width}}  {stat['wall_seconds']:>10.4f}  "
                f"{stat['cpu_seconds']:>10.4f}  {share:>6.1%}  "
                f"{stat['entries']:>9}"
            )
        if len(phases) > top:
            lines.append(f"  (+{len(phases) - top} more phases)")
    sampling = document.get("sampling")
    if sampling:
        lines.append(
            f"  sampler: {sampling['samples']} samples at "
            f"{sampling['interval_seconds'] * 1000:.1f}ms"
            + (f" -> {sampling['folded']}" if sampling.get("folded") else "")
        )
    return "\n".join(lines)
