"""Compare two PROFILE/BENCH JSON documents with regression thresholds.

``results/BENCH_*.json`` files and ``repro profile`` PROFILE.json files
both carry a flat numeric ``metrics`` map, which makes the perf
trajectory diffable: :func:`diff_metrics` compares every metric present
in both documents, classifies each change as a regression, an
improvement or noise-within-threshold, and maps the verdict to an exit
code (1 if anything regressed) so CI can gate on it.

Whether a bigger number is worse depends on the metric: ``*_seconds``
and ``*_bytes`` grow when things get slower, ``speedup_*`` / ``*_qps``
shrink.  :func:`metric_direction` encodes that heuristic; callers can
skip machine-dependent metrics entirely (``--skip '*seconds*'`` when
base and current ran on different hardware) and tighten or loosen the
tolerance per metric (``--threshold counter.engine.messages=0``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable

from repro.errors import DatasetError

DEFAULT_THRESHOLD = 20.0
"""Percent change tolerated before a metric counts as regressed."""

_HIGHER_IS_BETTER = (
    "speedup",
    "qps",
    "throughput",
    "rate",
    "coverage",
    "hit",
    "accepted",
    "converged",
)
"""Substrings marking metrics that regress by *shrinking*.

Everything else (seconds, bytes, messages, decisions, overhead, ...)
is treated as a cost: bigger is worse.
"""


def metric_direction(name: str) -> str:
    """``"higher"`` if bigger values of ``name`` are better, else ``"lower"``."""
    lowered = name.lower()
    for marker in _HIGHER_IS_BETTER:
        if marker in lowered:
            return "higher"
    return "lower"


def load_metrics(path: str | Path) -> tuple[dict[str, float], dict]:
    """The (metrics, meta) of one PROFILE.json / BENCH_*.json document.

    Raises :class:`~repro.errors.DatasetError` when the file is not a
    JSON document carrying a numeric ``metrics`` map — a loud refusal
    beats silently diffing nothing.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise DatasetError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise DatasetError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise DatasetError(f"{path} is not a JSON object")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise DatasetError(
            f"{path} carries no 'metrics' map; expected a PROFILE.json or "
            "results/BENCH_*.json document"
        )
    numeric = {
        name: float(value)
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    if not numeric:
        raise DatasetError(f"{path} has no numeric metrics to compare")
    return numeric, document.get("meta") or {}


@dataclass
class MetricDelta:
    """One compared metric."""

    name: str
    base: float
    current: float
    change_pct: float
    direction: str
    threshold_pct: float
    regressed: bool
    improved: bool

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "base": self.base,
            "current": self.current,
            "change_pct": round(self.change_pct, 4),
            "direction": self.direction,
            "threshold_pct": self.threshold_pct,
            "regressed": self.regressed,
            "improved": self.improved,
        }


@dataclass
class BenchDiff:
    """The full comparison: per-metric deltas plus bookkeeping."""

    deltas: list[MetricDelta] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    """Metrics in BASE with no counterpart in CURRENT."""
    added: list[str] = field(default_factory=list)
    """Metrics in CURRENT with no counterpart in BASE."""

    @property
    def regressions(self) -> list[MetricDelta]:
        """The deltas that crossed their regression threshold."""
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def improvements(self) -> list[MetricDelta]:
        """The deltas that moved the good direction past the threshold."""
        return [delta for delta in self.deltas if delta.improved]

    @property
    def exit_code(self) -> int:
        """1 when any metric regressed, else 0 — the CI perf gate."""
        return 1 if self.regressions else 0

    def to_dict(self) -> dict:
        """JSON-serialisable report."""
        return {
            "metrics": [delta.to_dict() for delta in self.deltas],
            "regressions": [delta.name for delta in self.regressions],
            "improvements": [delta.name for delta in self.improvements],
            "skipped": sorted(self.skipped),
            "missing": sorted(self.missing),
            "added": sorted(self.added),
            "exit_code": self.exit_code,
        }

    def to_json(self) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self, max_rows: int = 40) -> str:
        """Plain-text verdict table, regressions first."""
        lines = []
        ordered = sorted(
            self.deltas,
            key=lambda d: (not d.regressed, not d.improved, d.name),
        )
        shown = ordered[:max_rows]
        if shown:
            width = max(len(delta.name) for delta in shown)
            lines.append(
                f"  {'metric':<{width}}  {'base':>12}  {'current':>12}  "
                f"{'change':>8}  verdict"
            )
            for delta in shown:
                if delta.regressed:
                    verdict = f"REGRESSED (>{delta.threshold_pct:g}%)"
                elif delta.improved:
                    verdict = "improved"
                else:
                    verdict = "ok"
                lines.append(
                    f"  {delta.name:<{width}}  {delta.base:>12.6g}  "
                    f"{delta.current:>12.6g}  {delta.change_pct:>+7.1f}%  "
                    f"{verdict}"
                )
            if len(ordered) > max_rows:
                lines.append(f"  (+{len(ordered) - max_rows} more metrics)")
        for name in sorted(self.missing):
            lines.append(f"  {name}: present in base only")
        for name in sorted(self.added):
            lines.append(f"  {name}: present in current only")
        if self.skipped:
            lines.append(f"  skipped: {' '.join(sorted(self.skipped))}")
        lines.append(
            f"bench-diff: {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.deltas)} metric(s) compared"
        )
        return "\n".join(lines)


def diff_metrics(
    base: dict[str, float],
    current: dict[str, float],
    default_threshold: float = DEFAULT_THRESHOLD,
    thresholds: dict[str, float] | None = None,
    skip: Iterable[str] = (),
) -> BenchDiff:
    """Compare two flat metric maps.

    ``thresholds`` overrides the tolerated percent change per metric
    name (exact match); ``skip`` is a list of fnmatch globs excluded
    from comparison entirely (their names are recorded as skipped).
    A base value of 0 compares exactly: any nonzero current value of a
    lower-is-better metric is an infinite-percent regression.
    """
    thresholds = thresholds or {}
    skip_globs = tuple(skip)
    diff = BenchDiff()
    for name in sorted(set(base) | set(current)):
        if any(fnmatch(name, glob) for glob in skip_globs):
            if name in base and name in current:
                diff.skipped.append(name)
            continue
        if name not in current:
            diff.missing.append(name)
            continue
        if name not in base:
            diff.added.append(name)
            continue
        base_value = base[name]
        current_value = current[name]
        if base_value == 0.0:
            change_pct = 0.0 if current_value == 0.0 else float("inf")
            if current_value < 0.0:
                change_pct = float("-inf")
        else:
            change_pct = (current_value - base_value) / abs(base_value) * 100.0
        direction = metric_direction(name)
        threshold = thresholds.get(name, default_threshold)
        worse_pct = change_pct if direction == "lower" else -change_pct
        diff.deltas.append(
            MetricDelta(
                name=name,
                base=base_value,
                current=current_value,
                change_pct=change_pct,
                direction=direction,
                threshold_pct=threshold,
                regressed=worse_pct > threshold,
                improved=-worse_pct > threshold,
            )
        )
    return diff


def diff_files(
    base_path: str | Path,
    current_path: str | Path,
    default_threshold: float = DEFAULT_THRESHOLD,
    thresholds: dict[str, float] | None = None,
    skip: Iterable[str] = (),
) -> BenchDiff:
    """Load and compare two PROFILE/BENCH JSON files."""
    base_metrics, _ = load_metrics(base_path)
    current_metrics, _ = load_metrics(current_path)
    return diff_metrics(
        base_metrics,
        current_metrics,
        default_threshold=default_threshold,
        thresholds=thresholds,
        skip=skip,
    )
