"""A metrics registry: counters, gauges and quantile histograms.

Replaces ad-hoc counting scattered through the engine and resilience
layers with one named, snapshottable registry.  Instruments are created
on first use (``registry.counter("engine.messages")``), accumulate for
the lifetime of the registry, and serialise through :meth:`snapshot`
into :class:`~repro.resilience.health.RunHealth` reports, where
``repro stats`` renders them.  :func:`render_prometheus` exposes the
same snapshot in the Prometheus text format the serving layer's
``/metrics`` endpoint negotiates.

Hot paths hold on to the instrument object rather than looking it up per
observation; an increment is then one lock acquire and an integer add.
The simulation engine is single-threaded, but the serving layer observes
from HTTP handler threads, so every instrument guards its mutable state
with its own :class:`threading.Lock` and instrument creation is guarded
by a registry-level lock.

Histograms keep exact count/sum/min/max but bound their memory with a
fixed-size reservoir (Vitter's algorithm R): every observation still
updates the scalars, while the reservoir holds a uniform sample the
percentiles are computed from.  Long prediction-serving runs therefore
observe millions of latencies in constant memory, at the cost of
percentiles being estimates once the count exceeds the reservoir size.
The reservoir's RNG is seeded from the instrument name, so identical
observation sequences always summarise identically.
"""

from __future__ import annotations

import math
import random
import re
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

DEFAULT_RESERVOIR_SIZE = 4096
"""Observations a histogram retains for percentile estimation."""


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Move the level by ``delta`` (negative to decrease).

        Needed for levels maintained from many threads at once (e.g.
        ``serve.inflight``), where read-modify-write through :meth:`set`
        would lose updates."""
        with self._lock:
            self.value += float(delta)


class Histogram:
    """A distribution summarised as count/sum/min/max and p50/p95/p99.

    ``count``/``total``/min/max are exact for every observation ever
    made; percentiles come from a bounded uniform reservoir (algorithm
    R), so they are true order statistics until ``reservoir_size``
    observations and unbiased estimates after.  Memory is O(reservoir),
    not O(observations).
    """

    def __init__(
        self, name: str, reservoir_size: int = DEFAULT_RESERVOIR_SIZE
    ) -> None:
        if reservoir_size <= 0:
            raise ValueError(
                f"reservoir_size must be positive, got {reservoir_size}"
            )
        self.name = name
        self.reservoir_size = reservoir_size
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: list[float] = []
        self._seen = 0
        # Seeded from the name (not hash(): PYTHONHASHSEED randomises
        # that per process) so reruns and worker/parent pairs sample
        # deterministically.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def _sample(self, value: float) -> None:
        """Algorithm R: keep each of the first N seen, then replace."""
        self._seen += 1
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._sample(value)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall-clock of a block: ``with histo.time(): ...``.

        The serving layer wraps each query with this so latency
        percentiles accumulate without per-call-site clock bookkeeping.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def count(self) -> int:
        """Number of observations (exact)."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observations (exact)."""
        return self._sum

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank), 0 when empty.

        Exact while the reservoir holds every observation; a uniform
        estimate beyond that.  Raises :class:`ValueError` when ``p`` is
        outside [0, 100] — even on an empty histogram, so a bad call
        site cannot hide behind an unused instrument.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        with self._lock:
            if not self._reservoir:
                return 0.0
            ordered = sorted(self._reservoir)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """The snapshot form: count, sum, min/max and the three quantiles."""
        with self._lock:
            if not self._count:
                return {"count": 0}
            count = self._count
            total = self._sum
            low = self._min
            high = self._max
            ordered = sorted(self._reservoir)

        def _pct(p: float) -> float:
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[rank - 1]

        return {
            "count": count,
            "sum": round(total, 6),
            "min": round(low, 6),
            "max": round(high, 6),
            "p50": round(_pct(50), 6),
            "p95": round(_pct(95), 6),
            "p99": round(_pct(99), 6),
        }

    def dump_raw(self) -> dict:
        """Lossless-scalars, bounded-samples picklable form.

        ``values`` is the reservoir (everything, while under the bound);
        count/sum/min/max are exact regardless.
        """
        with self._lock:
            payload = {
                "count": self._count,
                "sum": self._sum,
                "values": list(self._reservoir),
            }
            if self._count:
                payload["min"] = self._min
                payload["max"] = self._max
            return payload

    def merge_raw(self, data: dict | list) -> None:
        """Fold a :meth:`dump_raw` dump (or a legacy raw value list) in.

        Scalars merge exactly; the incoming reservoir samples are fed
        through this histogram's own sampler, which keeps the merged
        reservoir a fair (if second-hand) sample of both runs.
        """
        if isinstance(data, list):  # pre-reservoir dumps: plain values
            for value in data:
                self.observe(value)
            return
        values = data.get("values") or []
        count = int(data.get("count", len(values)))
        with self._lock:
            self._count += count
            self._sum += float(data.get("sum", math.fsum(values)))
            low = data.get("min")
            high = data.get("max")
            if low is not None and low < self._min:
                self._min = float(low)
            if high is not None and high > self._max:
                self._max = float(high)
            for value in values:
                self._sample(float(value))


class MetricsRegistry:
    """Named instruments, created on first use.

    Creation is serialised by a registry-level lock so concurrent
    first-use of the same name from two threads lands on one instrument;
    the instruments themselves carry their own locks for observation.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at 0 if new)."""
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created at 0 if new)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created empty if new)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name)
        return instrument

    def dump_raw(self) -> dict:
        """Picklable view of every instrument.

        Unlike :meth:`snapshot`, histograms keep their reservoir samples
        plus exact scalars, so a dump taken in a worker process can be
        folded into the parent registry with :meth:`merge_raw` without
        losing the statistics the summary percentiles are computed from.
        """
        return {
            "counters": {
                name: self._counters[name].value for name in self._counters
            },
            "gauges": {name: self._gauges[name].value for name in self._gauges},
            "histograms": {
                name: self._histograms[name].dump_raw()
                for name in self._histograms
            },
        }

    def merge_raw(self, data: dict) -> None:
        """Fold a :meth:`dump_raw` dump (from a worker) into this registry.

        Instrument names are merged in sorted order so repeated merges of
        the same dumps land in an identical registry state (gauges are
        last-write-wins, so merge order is part of the contract).
        Histogram dumps may be either the current scalar+reservoir dicts
        or the older plain value lists.
        """
        counters = data.get("counters") or {}
        for name in sorted(counters):
            self.counter(name).inc(counters[name])
        gauges = data.get("gauges") or {}
        for name in sorted(gauges):
            self.gauge(name).set(gauges[name])
        histograms = data.get("histograms") or {}
        for name in sorted(histograms):
            self.histogram(name).merge_raw(histograms[name])

    def snapshot(self) -> dict:
        """JSON-serialisable view of every instrument, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)


def labelled(name: str, **labels: str) -> str:
    """Canonical instrument name carrying sorted key="value" labels.

    The registry keys instruments by plain string, so dimensioned
    metrics (per-rejection-reason ingest counters, per-endpoint serving
    counters) encode their labels into the name in a stable,
    Prometheus-style form::

        >>> labelled("ingest.quarantined", reason="as-set")
        'ingest.quarantined{reason="as-set"}'

    Sorting the label keys makes the same logical instrument always
    land on the same registry entry regardless of call-site kwarg order.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (None installs a fresh empty one).

    Returns the previously-installed registry so callers can restore it.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    return previous


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_split(name: str) -> tuple[str, str]:
    """Separate a :func:`labelled` name into (base, label body)."""
    if name.endswith("}") and "{" in name:
        base, _, rest = name.partition("{")
        return base, rest[:-1]
    return name, ""


def _prom_name(base: str, prefix: str = "repro") -> str:
    """A valid Prometheus metric name for registry instrument ``base``."""
    return _PROM_INVALID.sub("_", f"{prefix}_{base}")


def _prom_value(value: float) -> str:
    if isinstance(value, bool) or value != value:  # NaN guard
        return "NaN"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry in the Prometheus text exposition format (v0.0.4).

    Counters get the conventional ``_total`` suffix, gauges map
    directly, and histograms are exposed as summaries (p50/p95/p99
    ``quantile`` series plus ``_sum`` and ``_count``).  Labels encoded
    into instrument names by :func:`labelled` come through as real
    Prometheus labels, so per-prefix or per-reason series scrape as one
    dimensioned metric family.
    """
    if registry is None:
        registry = get_registry()
    snapshot = registry.snapshot()
    lines: list[str] = []

    def _family(kind: str, items: dict, suffix: str = "") -> None:
        groups: dict[str, list[tuple[str, float]]] = {}
        for name, value in items.items():
            base, labels = _prom_split(name)
            groups.setdefault(_prom_name(base) + suffix, []).append(
                (labels, value)
            )
        for metric in sorted(groups):
            lines.append(f"# TYPE {metric} {kind}")
            for labels, value in groups[metric]:
                series = f"{metric}{{{labels}}}" if labels else metric
                lines.append(f"{series} {_prom_value(value)}")

    _family("counter", snapshot.get("counters", {}), suffix="_total")
    _family("gauge", snapshot.get("gauges", {}))

    for name, summary in snapshot.get("histograms", {}).items():
        base, labels = _prom_split(name)
        metric = _prom_name(base)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in summary:
                body = (
                    f'{labels},quantile="{quantile}"'
                    if labels
                    else f'quantile="{quantile}"'
                )
                lines.append(f"{metric}{{{body}}} {_prom_value(summary[key])}")
        series = f"{{{labels}}}" if labels else ""
        lines.append(f"{metric}_sum{series} {_prom_value(summary.get('sum', 0.0))}")
        lines.append(f"{metric}_count{series} {_prom_value(summary['count'])}")

    return "\n".join(lines) + "\n"
