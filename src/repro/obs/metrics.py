"""A metrics registry: counters, gauges and quantile histograms.

Replaces ad-hoc counting scattered through the engine and resilience
layers with one named, snapshottable registry.  Instruments are created
on first use (``registry.counter("engine.messages")``), accumulate for
the lifetime of the registry, and serialise through :meth:`snapshot`
into :class:`~repro.resilience.health.RunHealth` reports, where
``repro stats`` renders them.

Hot paths hold on to the instrument object rather than looking it up per
observation; an increment is then one integer add.  Like the simulation
engine, the registry is single-threaded by design.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


@dataclass
class Histogram:
    """A distribution summarised as count/sum/min/max and p50/p95/p99.

    Observations are kept exactly (runs observe thousands of values, not
    millions: one per prefix or per iteration), so the reported
    percentiles are true order statistics, not bucket approximations.
    """

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall-clock of a block: ``with histo.time(): ...``.

        The serving layer wraps each query with this so latency
        percentiles accumulate without per-call-site clock bookkeeping.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return sum(self.values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank), 0 when empty."""
        if not self.values:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """The snapshot form: count, sum, min/max and the three quantiles."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(min(self.values), 6),
            "max": round(max(self.values), 6),
            "p50": round(self.percentile(50), 6),
            "p95": round(self.percentile(95), 6),
            "p99": round(self.percentile(99), 6),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at 0 if new)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created at 0 if new)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created empty if new)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def dump_raw(self) -> dict:
        """Lossless, picklable view of every instrument.

        Unlike :meth:`snapshot`, histograms keep their raw observation
        lists, so a dump taken in a worker process can be folded into the
        parent registry with :meth:`merge_raw` without losing the order
        statistics the summary percentiles are computed from.
        """
        return {
            "counters": {
                name: self._counters[name].value for name in self._counters
            },
            "gauges": {name: self._gauges[name].value for name in self._gauges},
            "histograms": {
                name: list(self._histograms[name].values)
                for name in self._histograms
            },
        }

    def merge_raw(self, data: dict) -> None:
        """Fold a :meth:`dump_raw` dump (from a worker) into this registry.

        Instrument names are merged in sorted order so repeated merges of
        the same dumps land in an identical registry state (gauges are
        last-write-wins, so merge order is part of the contract).
        """
        counters = data.get("counters") or {}
        for name in sorted(counters):
            self.counter(name).inc(counters[name])
        gauges = data.get("gauges") or {}
        for name in sorted(gauges):
            self.gauge(name).set(gauges[name])
        histograms = data.get("histograms") or {}
        for name in sorted(histograms):
            self.histogram(name).values.extend(histograms[name])

    def snapshot(self) -> dict:
        """JSON-serialisable view of every instrument, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)


def labelled(name: str, **labels: str) -> str:
    """Canonical instrument name carrying sorted key="value" labels.

    The registry keys instruments by plain string, so dimensioned
    metrics (per-rejection-reason ingest counters, per-endpoint serving
    counters) encode their labels into the name in a stable,
    Prometheus-style form::

        >>> labelled("ingest.quarantined", reason="as-set")
        'ingest.quarantined{reason="as-set"}'

    Sorting the label keys makes the same logical instrument always
    land on the same registry entry regardless of call-site kwarg order.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (None installs a fresh empty one).

    Returns the previously-installed registry so callers can restore it.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    return previous
