"""Observability: structured tracing, metrics, logging, run metadata.

The refinement loop (Section 4.6) is otherwise a black box at runtime:
nothing records *which* decision-process step drove a divergence or which
refinement iteration installed the responsible policy clause.  This
package makes simulated BGP outcomes auditable:

* :mod:`repro.obs.trace` — a JSONL span/event emitter with nested phase
  spans and typed events for decision outcomes, policy installs/deletes,
  quasi-router duplications, retries and lint quarantines, behind a
  near-zero-cost no-op default (:class:`~repro.obs.trace.NullTracer`).
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms (p50/p95/p99) replacing ad-hoc counting, snapshotted into
  :class:`~repro.resilience.health.RunHealth` and ``repro stats``.
* :mod:`repro.obs.explain` — per-prefix decision provenance: at each AS
  the candidate routes, the decision step that selected the winner, and
  the refinement iteration + clause tag that installed each policy
  consulted (``repro explain``).
* :mod:`repro.obs.logs` — stdlib ``logging`` configuration for the CLI
  (``--log-level`` / ``--log-json``).
* :mod:`repro.obs.meta` — run metadata (git sha, python version, CLI
  args, seed) stamped into health reports and benchmark results.
* :mod:`repro.obs.profile` — phase-attribution profiling (exclusive
  wall/CPU/memory per named engine phase) and the versioned
  ``PROFILE.json`` document behind ``repro profile``.
* :mod:`repro.obs.sampling` — a stdlib statistical stack sampler
  emitting collapsed-stack ``.folded`` files for flamegraphs.
* :mod:`repro.obs.benchdiff` — threshold-gated comparison of two
  PROFILE/BENCH metric maps (``repro bench-diff``, the CI perf gate).
"""

from repro.obs.logs import configure_logging
from repro.obs.meta import run_metadata
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    labelled,
    render_prometheus,
    set_registry,
)
from repro.obs.profile import (
    NullProfiler,
    PhaseProfiler,
    build_profile_document,
    get_profiler,
    profiling,
    set_profiler,
)
from repro.obs.sampling import StackSampler
from repro.obs.trace import (
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

def __getattr__(name: str):
    # Lazy: explain pulls in core.model -> bgp.engine, and the engine
    # itself imports repro.obs.trace.  Deferring breaks the cycle while
    # keeping ``from repro.obs import explain_prefix`` working.
    if name in ("explain_prefix", "PrefixExplanation"):
        from repro.obs import explain

        return getattr(explain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NullProfiler",
    "NullTracer",
    "PhaseProfiler",
    "PrefixExplanation",
    "RecordingTracer",
    "StackSampler",
    "Tracer",
    "build_profile_document",
    "configure_logging",
    "explain_prefix",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "labelled",
    "profiling",
    "render_prometheus",
    "run_metadata",
    "set_profiler",
    "set_registry",
    "set_tracer",
    "tracing",
]
