"""Shared multiset-diff and ranked-list truncation helpers.

Two subsystems compare multisets and render ranked result lists capped
with an explicit "N more ... omitted" tail: the static lint differ
(:mod:`repro.analysis.diffing`, ``repro lint --diff``) and the scenario
campaign differ/report (:mod:`repro.campaign`).  This module is the one
implementation both share, so the diff semantics (how duplicate entries
pair up) and the truncation rendering cannot drift apart.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def multiset_diff(
    base: Iterable[T],
    current: Iterable[T],
    key: Callable[[T], Hashable] | None = None,
) -> tuple[list[T], list[T], int]:
    """Diff two multisets into ``(added, removed, unchanged_count)``.

    ``key`` maps an item to its hashable identity (default: the item
    itself).  Occurrences pair up with multiset semantics: an identity
    appearing twice on one side and once on the other yields one
    unchanged pairing plus one added/removed entry.  ``added`` preserves
    the order of ``current`` and ``removed`` the order of ``base``, so
    callers control ranking by pre-sorting their inputs.
    """
    keyfn: Callable[[T], Hashable] = key if key is not None else lambda item: item
    base_items = list(base)
    current_items = list(current)
    remaining = Counter(keyfn(item) for item in base_items)
    added: list[T] = []
    unchanged = 0
    for item in current_items:
        identity = keyfn(item)
        if remaining.get(identity, 0) > 0:
            remaining[identity] -= 1
            unchanged += 1
        else:
            added.append(item)
    # Whatever could not be paired with a current-side occurrence is
    # removed; skip the paired occurrences in base order first.
    base_counts = Counter(keyfn(item) for item in base_items)
    matched = {
        identity: base_counts[identity] - remaining[identity]
        for identity in base_counts
    }
    consumed: Counter[Hashable] = Counter()
    removed: list[T] = []
    for item in base_items:
        identity = keyfn(item)
        if consumed[identity] < matched.get(identity, 0):
            consumed[identity] += 1
        else:
            removed.append(item)
    return added, removed, unchanged


def truncate_ranked(
    lines: Sequence[str], limit: int | None, noun: str = "findings"
) -> list[str]:
    """Cap an already-ranked list of rendered lines at ``limit`` entries.

    When entries are cut, the returned list ends with an explicit
    ``"... N more <noun> omitted"`` tail instead of silently truncating —
    a capped report must always say what it dropped.  ``limit=None``
    returns everything.
    """
    if limit is None or len(lines) <= limit:
        return list(lines)
    shown = list(lines[:limit])
    shown.append(f"... {len(lines) - limit} more {noun} omitted")
    return shown
