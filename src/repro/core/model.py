"""The AS-routing model object (Section 4.1).

An :class:`ASRoutingModel` wraps a quasi-router :class:`~repro.bgp.Network`
together with the AS graph it realizes and the canonical one-prefix-per-AS
origination scheme.  The model's decision process always compares MED
across neighbours and has no IGP (quasi-routers are isolated), per
Section 4.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.bgp.decision import DecisionConfig
from repro.bgp.engine import EngineStats, simulate, simulate_prefix
from repro.bgp.network import Network
from repro.bgp.router import Router
from repro.errors import TopologyError
from repro.net.prefix import Prefix, prefix_for_asn
from repro.resilience.retry import (
    ResilienceStats,
    RetryPolicy,
    simulate_network_with_retry,
)
from repro.topology.graph import ASGraph

MODEL_DECISION_CONFIG = DecisionConfig(med_always_compare=True, use_igp_cost=False)
"""Decision process used by the model: always-compare MED, no IGP step."""


@dataclass
class ASRoutingModel:
    """A quasi-router topology plus per-prefix policies."""

    network: Network
    graph: ASGraph
    prefix_by_origin: dict[int, Prefix] = field(default_factory=dict)
    origin_by_prefix: dict[Prefix, int] = field(default_factory=dict)

    @classmethod
    def from_network(cls, network: Network) -> "ASRoutingModel":
        """Rebuild a model from a bare quasi-router network.

        Used when loading a persisted model from a C-BGP-style config:
        the AS graph is recovered from the eBGP adjacencies and the
        origin mapping from the canonical-prefix encoding (the high 16
        bits of the network address are the origin ASN, see
        :func:`repro.net.prefix.prefix_for_asn`).
        """
        graph = ASGraph.from_edges(network.as_adjacencies())
        for asn in network.ases:
            graph.add_as(asn)
        model = cls(network=network, graph=graph)
        for prefix in network.prefixes():
            origin = prefix.network >> 16
            if origin not in network.ases:
                raise TopologyError(
                    f"prefix {prefix} does not encode a known origin AS"
                )
            model.prefix_by_origin[origin] = prefix
            model.origin_by_prefix[prefix] = origin
        return model

    def canonical_prefix(self, origin_asn: int) -> Prefix:
        """The model prefix standing in for all prefixes of ``origin_asn``."""
        try:
            return self.prefix_by_origin[origin_asn]
        except KeyError:
            raise TopologyError(f"AS {origin_asn} originates nothing in the model") from None

    def origin_of(self, prefix: Prefix) -> int:
        """The AS originating the canonical ``prefix``."""
        try:
            return self.origin_by_prefix[prefix]
        except KeyError:
            raise TopologyError(f"{prefix} is not a model prefix") from None

    def add_origin(self, asn: int) -> Prefix:
        """Originate the canonical prefix for ``asn`` at all its quasi-routers."""
        if asn in self.prefix_by_origin:
            return self.prefix_by_origin[asn]
        prefix = prefix_for_asn(asn) if asn <= 0xFFFF else Prefix(asn & 0xFFFFFF00, 24)
        self.prefix_by_origin[asn] = prefix
        self.origin_by_prefix[prefix] = asn
        for router in self.network.as_routers(asn):
            self.network.originate(router, prefix)
        return prefix

    def quasi_routers(self, asn: int) -> list[Router]:
        """The quasi-routers of AS ``asn``."""
        return self.network.as_routers(asn)

    def quasi_router_counts(self) -> dict[int, int]:
        """Number of quasi-routers per AS (the Section 5 model-size view)."""
        return {asn: len(node.routers) for asn, node in self.network.ases.items()}

    def policy_clause_count(self) -> int:
        """Total number of route-map clauses installed in the model."""
        total = 0
        for session in self.network.sessions.values():
            if session.import_map is not None:
                total += len(session.import_map)
            if session.export_map is not None:
                total += len(session.export_map)
        return total

    def simulate_all(
        self,
        max_messages: int | None = None,
        tolerate_divergence: bool = False,
        prefixes: Iterable[Prefix] | None = None,
    ) -> EngineStats:
        """Simulate every canonical prefix (or the given subset) to convergence.

        With ``tolerate_divergence`` a prefix whose simulation exceeds the
        message budget (a policy dispute wheel, possible for inferred
        relationship policies) has its state cleared and is recorded in
        the returned stats' ``diverged`` list instead of raising — the
        engine's ``on_divergence="quarantine"`` mode.  ``prefixes``
        restricts the run (the lint gate uses this to skip statically
        unsafe prefixes entirely).
        """
        on_divergence = "quarantine" if tolerate_divergence else "raise"
        return simulate(self.network, prefixes=prefixes,
                        config=MODEL_DECISION_CONFIG,
                        max_messages=max_messages, on_divergence=on_divergence)

    def simulate_all_resilient(
        self,
        policy: RetryPolicy = RetryPolicy(),
        prefixes: Iterable[Prefix] | None = None,
        parallel=None,
    ) -> ResilienceStats:
        """Simulate every canonical prefix (or a subset) with retry + quarantine.

        Non-convergence is retried with escalating message budgets under
        ``policy``; prefixes that still diverge are quarantined (state
        cleared, listed in the outcomes) rather than aborting the run.
        ``parallel`` (a :class:`repro.parallel.ParallelConfig` with
        ``workers`` > 1) fans the prefixes out to the supervised worker
        pool instead of looping in-process.
        """
        return simulate_network_with_retry(
            self.network, prefixes=prefixes, config=MODEL_DECISION_CONFIG,
            policy=policy, parallel=parallel
        )

    def simulate_origin(self, origin_asn: int,
                        max_messages: int | None = None) -> EngineStats:
        """(Re-)simulate the canonical prefix of one origin AS."""
        prefix = self.canonical_prefix(origin_asn)
        return simulate_prefix(self.network, prefix, MODEL_DECISION_CONFIG,
                               max_messages)

    def stats(self) -> dict[str, int]:
        """Model size summary."""
        base = self.network.stats()
        base["policy_clauses"] = self.policy_clause_count()
        base["max_quasi_routers"] = max(self.quasi_router_counts().values(), default=0)
        return base

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ASRoutingModel(ases={stats['ases']}, quasi_routers={stats['routers']}, "
            f"sessions={stats['sessions']}, clauses={stats['policy_clauses']})"
        )
