"""Prediction with a refined model (Sections 4.2 and 4.7).

:func:`evaluate_model` re-simulates every canonical prefix an evaluation
dataset needs (duplicated quasi-routers change propagation for *all*
prefixes, so state from before the last topology change would be stale)
and grades the dataset with the Section 4.2 metrics.

:func:`predict_paths` answers the paper's headline what-if question
directly: which AS-paths would AS ``observer`` use to reach a prefix of
AS ``origin``?
"""

from __future__ import annotations

from typing import Iterable

from repro.core.metrics import MatchReport, evaluate_dataset
from repro.core.model import ASRoutingModel
from repro.topology.dataset import PathDataset


def simulate_for_dataset(model: ASRoutingModel, dataset: PathDataset) -> int:
    """Simulate the canonical prefix of every origin in ``dataset``.

    Returns the number of prefixes simulated.  Origins missing from the
    model (possible only if the dataset was not part of graph extraction)
    are skipped; their paths will grade as no-match.
    """
    simulated = 0
    for origin in sorted(dataset.origin_asns()):
        if origin in model.prefix_by_origin:
            model.simulate_origin(origin)
            simulated += 1
    return simulated


def evaluate_model(
    model: ASRoutingModel,
    dataset: PathDataset,
    resimulate: bool = True,
) -> MatchReport:
    """Grade ``dataset`` against ``model`` (fresh simulation by default)."""
    if resimulate:
        simulate_for_dataset(model, dataset)
    valid = dataset.filter_routes(
        lambda route: route.origin_asn in model.prefix_by_origin
    )
    return evaluate_dataset(model, valid)


def predict_paths(
    model: ASRoutingModel,
    origin_asn: int,
    observer_asn: int,
    resimulate: bool = False,
) -> set[tuple[int, ...]]:
    """Predicted AS-paths from ``observer_asn`` towards ``origin_asn``.

    Returns the set of full paths (observer first, origin last) selected
    by the observer's quasi-routers — the route diversity the model
    predicts the AS would use and propagate.
    """
    prefix = model.canonical_prefix(origin_asn)
    if resimulate:
        model.simulate_origin(origin_asn)
    paths: set[tuple[int, ...]] = set()
    for router in model.quasi_routers(observer_asn):
        best = router.best(prefix)
        if best is not None:
            paths.add((observer_asn,) + best.as_path)
    return paths


def extend_model_for_origins(
    model: ASRoutingModel,
    observations: PathDataset,
    origins: Iterable[int],
    config=None,
):
    """Section 4.7: refine an existing model for new origins' prefixes.

    ``observations`` are routes seen at the *existing* vantage points for
    the new prefixes (e.g. a previously-unconsidered prefix appearing in
    the feeds).  Only those origins' canonical prefixes are refined; the
    rest of the model is untouched.  Returns the refinement result.
    """
    from repro.core.refine import RefinementConfig, Refiner

    wanted = set(origins)
    subset = observations.restrict_origins(wanted)
    refiner = Refiner(model, subset, config or RefinementConfig())
    return refiner.run_incremental()


def predict_for_origins(
    model: ASRoutingModel,
    origins: Iterable[int],
    observer_asn: int,
) -> dict[int, set[tuple[int, ...]]]:
    """Predicted path sets from one observer towards many origins."""
    return {
        origin: predict_paths(model, origin, observer_asn)
        for origin in origins
        if origin in model.prefix_by_origin
    }
