"""Prediction with a refined model (Sections 4.2 and 4.7).

:func:`evaluate_model` re-simulates every canonical prefix an evaluation
dataset needs (duplicated quasi-routers change propagation for *all*
prefixes, so state from before the last topology change would be stale)
and grades the dataset with the Section 4.2 metrics.

:func:`predict_paths` answers the paper's headline what-if question
directly: which AS-paths would AS ``observer`` use to reach a prefix of
AS ``origin``?

:func:`selected_paths` is the shared simulate-then-collect kernel: it
reads the path set an already-simulated model selects for one
(origin, observer) pair.  The live prediction API, the what-if snapshots
and the :mod:`repro.serve` artifact compiler all answer through this one
code path, so a compiled artifact is equal to the live model by
construction.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.metrics import MatchReport, evaluate_dataset
from repro.core.model import ASRoutingModel
from repro.errors import ModelError, TopologyError
from repro.topology.dataset import PathDataset

ON_COLD_RAISE = "raise"
ON_COLD_SIMULATE = "simulate"
_ON_COLD_CHOICES = (ON_COLD_RAISE, ON_COLD_SIMULATE)


def simulate_for_dataset(model: ASRoutingModel, dataset: PathDataset) -> int:
    """Simulate the canonical prefix of every origin in ``dataset``.

    Returns the number of prefixes simulated.  Origins missing from the
    model (possible only if the dataset was not part of graph extraction)
    are skipped; their paths will grade as no-match.
    """
    simulated = 0
    for origin in sorted(dataset.origin_asns()):
        if origin in model.prefix_by_origin:
            model.simulate_origin(origin)
            simulated += 1
    return simulated


def evaluate_model(
    model: ASRoutingModel,
    dataset: PathDataset,
    resimulate: bool = True,
) -> MatchReport:
    """Grade ``dataset`` against ``model`` (fresh simulation by default)."""
    if resimulate:
        simulate_for_dataset(model, dataset)
    valid = dataset.filter_routes(
        lambda route: route.origin_asn in model.prefix_by_origin
    )
    return evaluate_dataset(model, valid)


def origin_is_simulated(model: ASRoutingModel, origin_asn: int) -> bool:
    """True when ``origin_asn``'s canonical prefix has live routing state.

    After a converged simulation every originating quasi-router promotes
    its local route into its Loc-RIB; before any simulation (or after a
    quarantine cleared the prefix) none has.  That asymmetry is the cold
    marker: an origin whose own routers cannot reach its prefix has no
    trustworthy answers for anyone else either.
    """
    prefix = model.canonical_prefix(origin_asn)
    originators = model.network.originators(prefix)
    if not originators:
        return False
    return any(
        model.network.routers[router_id].best(prefix) is not None
        for router_id in originators
        if router_id in model.network.routers
    )


def selected_paths(
    model: ASRoutingModel, origin_asn: int, observer_asn: int
) -> set[tuple[int, ...]]:
    """The path set ``observer_asn``'s quasi-routers currently select.

    Pure collection — no simulation, no cold-state checking; callers
    (:func:`predict_paths`, the what-if snapshots, the artifact compiler)
    decide how the model got warm.  Returns the set of full paths
    (observer first, origin last).
    """
    prefix = model.canonical_prefix(origin_asn)
    paths: set[tuple[int, ...]] = set()
    for router in model.quasi_routers(observer_asn):
        best = router.best(prefix)
        if best is not None:
            paths.add((observer_asn,) + best.as_path)
    return paths


def predict_paths(
    model: ASRoutingModel,
    origin_asn: int,
    observer_asn: int,
    resimulate: bool = False,
    on_cold: str = ON_COLD_RAISE,
) -> set[tuple[int, ...]]:
    """Predicted AS-paths from ``observer_asn`` towards ``origin_asn``.

    Returns the set of full paths (observer first, origin last) selected
    by the observer's quasi-routers — the route diversity the model
    predicts the AS would use and propagate.

    With ``resimulate=False`` the origin's prefix must already carry
    routing state; a cold prefix (never simulated, or quarantined) either
    raises :class:`~repro.errors.ModelError` naming the origin
    (``on_cold="raise"``, the default) or simulates it on the spot
    (``on_cold="simulate"``).  An empty set is therefore always a real
    answer — the observer cannot reach the origin — never an artifact of
    stale state.
    """
    if on_cold not in _ON_COLD_CHOICES:
        raise ValueError(
            f"on_cold must be one of {_ON_COLD_CHOICES}, got {on_cold!r}"
        )
    validate_pair(model, origin_asn, observer_asn)
    if resimulate:
        model.simulate_origin(origin_asn)
    elif not origin_is_simulated(model, origin_asn):
        if on_cold == ON_COLD_SIMULATE:
            model.simulate_origin(origin_asn)
        else:
            raise ModelError(
                f"the canonical prefix of AS {origin_asn} has no routing "
                "state (never simulated, or quarantined); call with "
                "resimulate=True or on_cold='simulate' instead of trusting "
                "an empty answer"
            )
    return selected_paths(model, origin_asn, observer_asn)


def extend_model_for_origins(
    model: ASRoutingModel,
    observations: PathDataset,
    origins: Iterable[int],
    config=None,
):
    """Section 4.7: refine an existing model for new origins' prefixes.

    ``observations`` are routes seen at the *existing* vantage points for
    the new prefixes (e.g. a previously-unconsidered prefix appearing in
    the feeds).  Only those origins' canonical prefixes are refined; the
    rest of the model is untouched.  Returns the refinement result.
    """
    from repro.core.refine import RefinementConfig, Refiner

    wanted = set(origins)
    subset = observations.restrict_origins(wanted)
    refiner = Refiner(model, subset, config or RefinementConfig())
    return refiner.run_incremental()


def predict_for_origins(
    model: ASRoutingModel,
    origins: Iterable[int],
    observer_asn: int,
    strict: bool = False,
    on_cold: str = ON_COLD_SIMULATE,
) -> dict[int, set[tuple[int, ...]]]:
    """Predicted path sets from one observer towards many origins.

    The observer is validated up front: an ASN absent from the model
    raises :class:`~repro.errors.ModelError` naming it, instead of
    silently reporting "no paths" for every origin.  Origins not in the
    model are skipped by default (they grade as unknown, matching
    :func:`evaluate_model`); ``strict=True`` makes the first unknown
    origin raise instead.
    """
    if observer_asn not in model.network.ases:
        raise ModelError(
            f"observer AS {observer_asn} is not in the model; predictions "
            "for it would be an empty set for every origin"
        )
    result: dict[int, set[tuple[int, ...]]] = {}
    for origin in origins:
        if origin not in model.prefix_by_origin:
            if strict:
                raise TopologyError(
                    f"AS {origin} originates nothing in the model"
                )
            continue
        result[origin] = predict_paths(
            model, origin, observer_asn, on_cold=on_cold
        )
    return result


def validate_pair(
    model: ASRoutingModel, origin_asn: int, observer_asn: int
) -> None:
    """Reject unknown origin/observer ASNs with an error naming them.

    Shared precondition of every prediction entry point (library, CLI and
    the serving subsystem): raises :class:`~repro.errors.ModelError` for
    an observer the model does not contain and
    :class:`~repro.errors.TopologyError` for an origin that originates
    nothing.
    """
    if origin_asn not in model.prefix_by_origin:
        raise TopologyError(
            f"AS {origin_asn} originates nothing in the model"
        )
    if observer_asn not in model.network.ases:
        raise ModelError(f"observer AS {observer_asn} is not in the model")
