"""The iterative refinement heuristic (Sections 4.3–4.6, Figure 6).

Each iteration compares, per canonical prefix, the AS-paths the current
model selects with the observed (training) AS-paths, and repairs the AS
*closest to the origin* where they diverge:

* **RIB-Out match** — a quasi-router already selects the observed suffix:
  reserve it for this path and walk on towards the observer.
* **RIB-In match, no RIB-Out** — an unreserved quasi-router learned the
  suffix but did not select it: install per-prefix policies at that
  quasi-router (export filters at the announcing neighbours that deny
  shorter AS-paths, plus an import MED ranking that prefers the neighbour
  the observed path arrives from).  If every learning quasi-router is
  reserved for a different suffix, duplicate one and install the policies
  on the clone.
* **no RIB-In match** — the suffix has not propagated this far yet.  If
  the announcing neighbour already selects its suffix, delete any
  previously-installed egress filter that blocks the propagation
  (Figure 7); otherwise wait for a later iteration.

All changes of one iteration are computed against the pre-iteration
simulation state, then the affected prefixes are re-simulated — exactly
the "apply heuristic, compute changes / restart simulations" cycle of
Figure 6.
"""

from __future__ import annotations

import logging
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.certify import CertificateStore
    from repro.parallel.supervisor import ParallelConfig

from repro.bgp.policy import Action, Clause, Match
from repro.bgp.router import Router
from repro.core.model import MODEL_DECISION_CONFIG, ASRoutingModel
from repro.errors import CheckpointError, RefinementError, ShutdownRequested
from repro.net.prefix import Prefix
from repro.obs.metrics import get_registry
from repro.obs.profile import get_profiler
from repro.obs.trace import (
    EVENT_LINT_QUARANTINE,
    EVENT_POLICY_DELETE,
    EVENT_POLICY_INSTALL,
    EVENT_ROUTER_DUPLICATE,
    get_tracer,
)
from repro.resilience.checkpoint import (
    certificate_store_path,
    load_checkpoint,
    save_checkpoint,
    training_fingerprint,
)
from repro.resilience.retry import (
    PrefixOutcome,
    RetryPolicy,
    simulate_prefix_with_retry,
)
from repro.topology.dataset import PathDataset

FILTER_TAG = "refine-filter"
RANK_TAG = "refine-rank"
MED_PREFERRED = 0
MED_OTHER = 50

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RefinementConfig:
    """Tunable behaviour of the refiner.

    The ablation switches turn off individual mechanisms: without
    ``allow_duplication`` the model stays single-router-per-AS (policies
    only); without ``allow_policies`` only quasi-router duplication is
    used; without ``filter_deletion`` stale egress filters are never
    removed.

    ``retry`` routes every (re-)simulation through the escalating-budget
    retry loop of :mod:`repro.resilience.retry`, quarantining prefixes
    that still diverge instead of aborting the run.  ``checkpoint_every``
    sets how many iterations pass between snapshots when
    :meth:`Refiner.run` is given a checkpoint path.

    ``lint_gate`` runs the static safety analyzer
    (:func:`repro.analysis.safety.unsafe_prefixes`) before the first
    simulation and quarantines statically-unsafe prefixes *without
    spending any simulation attempts on them* — each gets a
    zero-attempt ``unsafe`` outcome instead of burning the full retry
    budget the way a divergence quarantine would.

    ``parallel`` (a :class:`repro.parallel.ParallelConfig` with
    ``workers`` > 1) fans the initial full-network simulation out to the
    supervised worker pool; per-iteration re-simulation stays sequential
    (each iteration touches few prefixes and mutates policies the workers'
    network copies would not see).  Prefixes the supervisor classifies as
    poison or timeout are quarantined like diverged ones.  A SIGINT or
    SIGTERM during the parallel phase drains gracefully: the refiner
    writes a final checkpoint (when given a checkpoint path) and re-raises
    :class:`~repro.errors.ShutdownRequested`.
    """

    max_iterations: int = 60
    patience: int = 5
    allow_duplication: bool = True
    allow_policies: bool = True
    filter_deletion: bool = True
    install_filters: bool = True
    install_ranking: bool = True
    retry: RetryPolicy | None = None
    checkpoint_every: int = 5
    lint_gate: bool = False
    parallel: "ParallelConfig | None" = None


@dataclass
class IterationStats:
    """Bookkeeping for one refinement iteration."""

    iteration: int
    paths_total: int = 0
    paths_matched: int = 0
    policies_installed: int = 0
    routers_added: int = 0
    filters_deleted: int = 0
    prefixes_resimulated: int = 0

    @property
    def match_rate(self) -> float:
        """Fraction of training paths with a RIB-Out match this iteration."""
        return self.paths_matched / self.paths_total if self.paths_total else 1.0

    @property
    def changed(self) -> bool:
        """True if this iteration modified the model."""
        return bool(
            self.policies_installed or self.routers_added or self.filters_deleted
        )


@dataclass
class RefinementResult:
    """Outcome of a refinement run."""

    model: ASRoutingModel
    converged: bool
    iterations: list[IterationStats] = field(default_factory=list)

    @property
    def final_match_rate(self) -> float:
        """Training match rate after the last iteration."""
        return self.iterations[-1].match_rate if self.iterations else 0.0

    @property
    def iteration_count(self) -> int:
        """Number of iterations executed."""
        return len(self.iterations)


class Refiner:
    """Drives iterative refinement of a model against a training dataset."""

    def __init__(
        self,
        model: ASRoutingModel,
        training: PathDataset,
        config: RefinementConfig = RefinementConfig(),
    ):
        self.model = model
        self.config = config
        self.outcomes: list[PrefixOutcome] = []
        self.supervision: dict | None = None
        self.gated_prefixes: list[Prefix] = []
        self._gate_applied = False
        # With the lint gate on, safety is tracked through an incremental
        # certificate store: policy installs/deletes invalidate only the
        # touched prefixes' certificates, so per-iteration re-certification
        # costs a few fingerprints instead of a full static pass.
        self.certificates: "CertificateStore | None" = None
        if config.lint_gate:
            from repro.analysis.certify import CertificateStore

            self.certificates = CertificateStore()
        self.targets: dict[int, list[tuple[int, ...]]] = {}
        for origin, paths in training.unique_paths_by_origin().items():
            if origin not in model.prefix_by_origin:
                raise RefinementError(
                    f"training path origin AS {origin} is not in the model"
                )
            # Shorter paths first: the natural (shortest) route keeps the
            # lowest-id quasi-router and longer alternatives fork off it.
            self.targets[origin] = sorted(paths, key=lambda p: (len(p), p))

    def run(
        self,
        simulate_first: bool = True,
        checkpoint: str | Path | None = None,
    ) -> RefinementResult:
        """Iterate until every training path has a RIB-Out match.

        Stops early (``converged=False``) when ``max_iterations`` is
        exhausted or the match count has not improved for ``patience``
        iterations.

        With ``checkpoint`` set, the model plus loop state is atomically
        snapshotted to that path every ``config.checkpoint_every``
        iterations (and when the loop stops).  If the file already exists
        the run *resumes* from it: the checkpointed model replaces
        ``self.model``, completed iterations are replayed into the result,
        and — simulation being deterministic — the run lands on the same
        final model an uninterrupted run would have produced.
        """
        self._apply_lint_gate()
        checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        start_iteration = 0
        best_matched = -1
        stale_iterations = 0
        restored: list[IterationStats] = []
        if checkpoint_path is not None and checkpoint_path.exists():
            start_iteration, best_matched, stale_iterations, restored = (
                self._restore_checkpoint(checkpoint_path)
            )
            simulate_first = True
        if simulate_first:
            try:
                self._simulate_all()
            except ShutdownRequested:
                # Graceful drain mid-simulation: persist what completed so
                # a rerun with the same checkpoint resumes instead of
                # restarting, then let the caller finish shutting down.
                if checkpoint_path is not None:
                    save_checkpoint(
                        checkpoint_path,
                        self.model.network,
                        start_iteration,
                        best_matched,
                        stale_iterations,
                        [asdict(s) for s in restored],
                        fingerprint=training_fingerprint(self.targets),
                    )
                    self._save_certificates(checkpoint_path)
                raise
        result = RefinementResult(model=self.model, converged=False)
        result.iterations.extend(restored)
        if restored and restored[-1].paths_matched == restored[-1].paths_total:
            result.converged = True
            return result
        for iteration in range(start_iteration + 1, self.config.max_iterations + 1):
            stats = self.run_iteration(iteration)
            result.iterations.append(stats)
            converged = stats.paths_matched == stats.paths_total
            if stats.paths_matched > best_matched:
                best_matched = stats.paths_matched
                stale_iterations = 0
            else:
                stale_iterations += 1
            stopping = (
                converged
                or not stats.changed
                or stale_iterations >= self.config.patience
                or iteration == self.config.max_iterations
            )
            if checkpoint_path is not None and (
                stopping or iteration % self.config.checkpoint_every == 0
            ):
                save_checkpoint(
                    checkpoint_path,
                    self.model.network,
                    iteration,
                    best_matched,
                    stale_iterations,
                    [asdict(s) for s in result.iterations],
                    fingerprint=training_fingerprint(self.targets),
                )
                self._save_certificates(checkpoint_path)
            if converged:
                result.converged = True
                break
            if not stats.changed or stale_iterations >= self.config.patience:
                break
        logger.info(
            "refinement %s after %d iteration(s), final match rate %.1f%%",
            "converged" if result.converged else "stalled",
            result.iteration_count,
            100.0 * result.final_match_rate,
        )
        return result

    def _restore_checkpoint(
        self, path: Path
    ) -> tuple[int, int, int, list[IterationStats]]:
        """Swap in a checkpointed model and return the saved loop state."""
        saved = load_checkpoint(path)
        model = saved.restore_model()
        missing = [o for o in self.targets if o not in model.prefix_by_origin]
        if missing:
            raise CheckpointError(
                f"checkpoint {path} lacks training origins {missing[:5]}; "
                "it was written for a different dataset"
            )
        if saved.fingerprint and saved.fingerprint != training_fingerprint(
            self.targets
        ):
            raise CheckpointError(
                f"checkpoint {path} was written for a different training "
                "dataset (fingerprint mismatch)"
            )
        self.model = model
        self._restore_certificates(path)
        iterations = [IterationStats(**fields) for fields in saved.iterations]
        return saved.iteration, saved.best_matched, saved.stale_iterations, iterations

    def _save_certificates(self, checkpoint_path: Path) -> None:
        """Persist the certificate store next to the checkpoint."""
        if self.certificates is None:
            return
        self.certificates.save(certificate_store_path(checkpoint_path))

    def _restore_certificates(self, checkpoint_path: Path) -> None:
        """Reload the persisted certificate store alongside a checkpoint.

        The lint gate may already have certified the pre-restore model, so
        a missing or unreadable store must not be silently trusted: either
        the saved store (fully dirty, fingerprints arbitrate on the next
        ``certify``) replaces the in-memory one, or everything is
        invalidated and the next certification starts from scratch.
        """
        if self.certificates is None:
            return
        from repro.analysis.certify import CertificateStore
        from repro.errors import CertificateError

        store_path = certificate_store_path(checkpoint_path)
        if store_path.exists():
            try:
                self.certificates = CertificateStore.load(
                    store_path, relationships=self.certificates.relationships
                )
                logger.info("restored certificate store from %s", store_path)
                return
            except CertificateError as error:
                logger.warning(
                    "ignoring unusable certificate store %s: %s", store_path, error
                )
        self.certificates.invalidate_all()

    def _apply_lint_gate(self) -> None:
        """Statically quarantine unsafe prefixes before any simulation.

        Each gated prefix gets a zero-attempt ``unsafe`` outcome, its
        routing state is cleared, its training origin is dropped from the
        refinement targets and all later simulation passes skip it — so a
        dispute wheel costs no simulation attempts at all, versus the full
        per-prefix retry budget under the plain divergence quarantine.
        Idempotent; a no-op unless ``config.lint_gate`` is set.
        """
        if not self.config.lint_gate or self._gate_applied:
            return
        self._gate_applied = True
        if self.certificates is not None:
            self.certificates.certify(self.model.network)
            unsafe = self.certificates.unsafe_prefixes()
        else:
            from repro.analysis.safety import unsafe_prefixes

            unsafe = unsafe_prefixes(self.model.network)
        self._quarantine_unsafe(unsafe)

    def _quarantine_unsafe(self, prefixes: list[Prefix]) -> list[int]:
        """Gate statically-unsafe prefixes; returns the dropped origins."""
        tracer = get_tracer()
        dropped: list[int] = []
        for prefix in prefixes:
            if prefix in self.gated_prefixes:
                continue
            self.model.network.clear_prefix(prefix)
            self.gated_prefixes.append(prefix)
            self.outcomes.append(PrefixOutcome.gated(prefix))
            origin = self.model.origin_by_prefix.get(prefix)
            if origin is not None and origin in self.targets:
                self.targets.pop(origin, None)
                dropped.append(origin)
            get_registry().counter("refine.lint_quarantined").inc()
            if tracer.enabled:
                tracer.event(
                    EVENT_LINT_QUARANTINE, prefix=str(prefix), origin=origin
                )
            logger.warning("lint gate quarantined %s (origin AS%s)", prefix, origin)
        return dropped

    def _simulate_all(self) -> None:
        """Simulate every non-gated prefix, honouring retry and parallelism."""
        prefixes = None
        if self.gated_prefixes:
            gated = set(self.gated_prefixes)
            prefixes = [
                prefix
                for prefix in self.model.network.prefixes()
                if prefix not in gated
            ]
        parallel = self.config.parallel
        if parallel is not None and parallel.enabled:
            # The pool always runs under a retry policy; without one
            # configured, a single attempt mirrors the plain engine (but
            # quarantines divergence instead of raising — a worker cannot
            # usefully raise across the process boundary).
            policy = self.config.retry or RetryPolicy(max_attempts=1)
            try:
                stats = self.model.simulate_all_resilient(
                    policy, prefixes=prefixes, parallel=parallel
                )
            except ShutdownRequested as shutdown:
                if shutdown.stats is not None:
                    self.outcomes.extend(shutdown.stats.outcomes)
                    self.supervision = shutdown.stats.supervision
                raise
            self.outcomes.extend(stats.outcomes)
            self.supervision = stats.supervision
        elif self.config.retry is None:
            self.model.simulate_all(prefixes=prefixes)
        else:
            stats = self.model.simulate_all_resilient(
                self.config.retry, prefixes=prefixes
            )
            self.outcomes.extend(stats.outcomes)

    def _simulate_origin(self, origin: int) -> None:
        """(Re-)simulate one origin's prefix, honouring the retry policy."""
        if self.config.retry is None:
            self.model.simulate_origin(origin)
            return
        prefix = self.model.canonical_prefix(origin)
        _, outcome = simulate_prefix_with_retry(
            self.model.network, prefix, MODEL_DECISION_CONFIG, self.config.retry
        )
        self.outcomes.append(outcome)

    def run_incremental(self) -> RefinementResult:
        """Extend an already-refined model for this refiner's origins (§4.7).

        Unlike :meth:`run`, only the target origins' canonical prefixes are
        (re-)simulated up front, so previously-refined prefixes keep their
        converged state and policies.  Because all refinement policies are
        per-prefix and quasi-router duplication only adds capacity, the
        extension cannot invalidate earlier prefixes' training matches —
        except through new quasi-routers, whose announcements lose every
        tie against existing ones (they carry higher router ids).
        """
        self._apply_lint_gate()
        for origin in sorted(self.targets):
            self._simulate_origin(origin)
        return self.run(simulate_first=False)

    def run_iteration(self, iteration: int = 0) -> IterationStats:
        """One Figure 6 cycle: grade paths, apply fixes, re-simulate."""
        stats = IterationStats(iteration=iteration)
        started = time.perf_counter()
        profiler = get_profiler()
        with get_tracer().span("refine-iteration", iteration=iteration):
            dirty: set[int] = set()
            with profiler.phase("refine.grade"):
                for origin in sorted(self.targets):
                    prefix = self.model.canonical_prefix(origin)
                    reserved: dict[int, tuple[int, ...]] = {}
                    origin_changed = False
                    for path in self.targets[origin]:
                        stats.paths_total += 1
                        matched, changed = self._process_path(
                            prefix, path, reserved, stats
                        )
                        stats.paths_matched += matched
                        origin_changed |= changed
                    if origin_changed:
                        dirty.add(origin)
            if self.certificates is not None and dirty:
                # Incremental re-certification: only prefixes whose
                # dependency set intersects this iteration's policy
                # changes are re-fingerprinted.  A prefix the changes made
                # statically unsafe is quarantined before any simulation
                # budget is spent on it.
                with profiler.phase("refine.certify"):
                    self.certificates.certify(self.model.network)
                    dropped = self._quarantine_unsafe(
                        self.certificates.unsafe_prefixes()
                    )
                dirty -= set(dropped)
            with profiler.phase("refine.resimulate"):
                for origin in sorted(dirty):
                    self._simulate_origin(origin)
                    stats.prefixes_resimulated += 1
        registry = get_registry()
        registry.counter("refine.iterations").inc()
        registry.counter("refine.policies_installed").inc(stats.policies_installed)
        registry.counter("refine.routers_added").inc(stats.routers_added)
        registry.counter("refine.filters_deleted").inc(stats.filters_deleted)
        registry.histogram("refine.iteration_seconds").observe(
            time.perf_counter() - started
        )
        registry.gauge("refine.match_rate").set(stats.match_rate)
        logger.debug(
            "iteration %d: %d/%d paths matched, %d policies, %d routers added, "
            "%d filters deleted, %d prefixes re-simulated",
            iteration, stats.paths_matched, stats.paths_total,
            stats.policies_installed, stats.routers_added,
            stats.filters_deleted, stats.prefixes_resimulated,
        )
        return stats

    def unmatched_paths(self) -> list[tuple[int, tuple[int, ...]]]:
        """The (origin, path) pairs still lacking a RIB-Out match.

        A read-only grading pass over the current simulation state — the
        stall diagnostic for health reports: these are the concrete
        observed paths a non-converged run is stuck on.
        """
        unmatched: list[tuple[int, tuple[int, ...]]] = []
        for origin in sorted(self.targets):
            prefix = self.model.canonical_prefix(origin)
            reserved: dict[int, tuple[int, ...]] = {}
            for path in self.targets[origin]:
                if not self._path_selected(prefix, path, reserved):
                    unmatched.append((origin, path))
        return unmatched

    def _path_selected(
        self,
        prefix: Prefix,
        path: tuple[int, ...],
        reserved: dict[int, tuple[int, ...]],
    ) -> bool:
        """RIB-Out walk of :meth:`_process_path`, without applying fixes."""
        for position in range(len(path) - 1, -1, -1):
            asn = path[position]
            target = path[position + 1 :]
            available = [
                router
                for router in self.model.quasi_routers(asn)
                if (best := router.best(prefix)) is not None
                and best.as_path == target
                and reserved.get(router.router_id, target) == target
            ]
            if not available:
                return False
            chosen = min(available, key=lambda router: router.router_id)
            reserved[chosen.router_id] = target
        return True

    # ------------------------------------------------------------------
    # Per-path processing
    # ------------------------------------------------------------------

    def _process_path(
        self,
        prefix: Prefix,
        path: tuple[int, ...],
        reserved: dict[int, tuple[int, ...]],
        stats: IterationStats,
    ) -> tuple[bool, bool]:
        """Walk ``path`` origin-first; fix the first divergent AS.

        Returns (fully-matched, model-changed).  ``reserved`` maps
        quasi-router ids to the route suffix they are responsible for; a
        quasi-router can serve any number of paths that share its suffix.
        """
        for position in range(len(path) - 1, -1, -1):
            asn = path[position]
            target = path[position + 1 :]
            routers = self.model.quasi_routers(asn)

            selecting = [
                router
                for router in routers
                if (best := router.best(prefix)) is not None
                and best.as_path == target
            ]
            available = [
                router
                for router in selecting
                if reserved.get(router.router_id, target) == target
            ]
            if available:
                chosen = min(available, key=lambda router: router.router_id)
                reserved[chosen.router_id] = target
                continue

            learning = [
                router
                for router in routers
                if any(
                    route.as_path == target
                    for route in router.candidates(prefix)
                )
            ]
            free = [
                router
                for router in learning
                if reserved.get(router.router_id, target) == target
            ]
            if free:
                if not self.config.allow_policies:
                    return False, False
                chosen = min(free, key=lambda router: router.router_id)
                changed = self._install_policies(
                    chosen, prefix, target, reserved, stats
                )
                reserved[chosen.router_id] = target
                return False, changed
            if learning:
                if not self.config.allow_duplication:
                    return False, False
                source = min(learning, key=lambda router: router.router_id)
                clone = self.model.network.duplicate_router(source)
                stats.routers_added += 1
                if self.certificates is not None:
                    # The clone's sessions change its neighbours' MED
                    # rankings too; invalidate_router dirties the peers.
                    self.certificates.invalidate_router(clone)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        EVENT_ROUTER_DUPLICATE,
                        asn=asn,
                        source=source.name,
                        clone=clone.name,
                        prefix=str(prefix),
                        target=list(target),
                        iteration=stats.iteration,
                    )
                if self.config.allow_policies:
                    self._install_policies(clone, prefix, target, reserved, stats)
                else:
                    self._clear_refine_clauses(clone, prefix)
                reserved[clone.router_id] = target
                return False, True

            # No RIB-In anywhere in this AS: the suffix has not propagated.
            changed = False
            if self.config.filter_deletion and target:
                changed = self._delete_blocking_filters(asn, prefix, target, stats)
            return False, changed

        return True, False

    # ------------------------------------------------------------------
    # Policy manipulation
    # ------------------------------------------------------------------

    def _install_policies(
        self,
        router: Router,
        prefix: Prefix,
        target: tuple[int, ...],
        reserved: dict[int, tuple[int, ...]],
        stats: IterationStats,
    ) -> bool:
        """Make ``router`` select a route with AS-path ``target`` (§4.6).

        Export filters at every announcing neighbour deny routes for the
        prefix with an AS-path shorter than the target's; an import MED
        ranking prefers routes announced by the target's first-hop AS.
        Stale refinement clauses for this prefix (inherited by clones or
        left from earlier reassignments) are removed first.

        When the announcing neighbour AS has several quasi-routers that
        announce *different* same-length routes, the AS-level MED ranking
        of Section 4.6 cannot separate them, so the ranking is keyed to
        the neighbour quasi-router reserved for the target's tail (a
        per-session rather than per-AS MED — see DESIGN.md).

        Returns False when identical policies were already installed (an
        ineffective repeat that must not mark the prefix dirty, or the
        refiner would re-simulate it forever).
        """
        if not target:
            return False
        length = len(target)
        preferred_asn = target[0]
        preferred_router = None
        tail = target[1:]
        for neighbor_router in self.model.quasi_routers(preferred_asn):
            if reserved.get(neighbor_router.router_id) == tail:
                preferred_router = neighbor_router.router_id
                break
        if self._policies_already_installed(
            router, prefix, length, preferred_asn, preferred_router
        ):
            return False
        self._clear_refine_clauses(router, prefix)
        installed = 0
        for session in router.sessions_in:
            if not session.is_ebgp:
                continue
            if self.config.install_filters:
                session.ensure_export_map().append(
                    Clause(
                        Match(prefix=prefix, path_len_lt=length),
                        Action.DENY,
                        tag=FILTER_TAG,
                        iteration=stats.iteration,
                    )
                )
                installed += 1
            if self.config.install_ranking:
                if preferred_router is not None:
                    is_preferred = session.src.router_id == preferred_router
                else:
                    is_preferred = session.src.asn == preferred_asn
                session.ensure_import_map().append(
                    Clause(
                        Match(prefix=prefix),
                        Action.PERMIT,
                        set_med=MED_PREFERRED if is_preferred else MED_OTHER,
                        tag=RANK_TAG,
                        iteration=stats.iteration,
                    )
                )
                installed += 1
        stats.policies_installed += installed
        if self.certificates is not None:
            self.certificates.invalidate_policy(router.router_id, prefix)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                EVENT_POLICY_INSTALL,
                router=router.name,
                prefix=str(prefix),
                target=list(target),
                clauses=installed,
                iteration=stats.iteration,
            )
        return True

    def _policies_already_installed(
        self,
        router: Router,
        prefix: Prefix,
        length: int,
        preferred_asn: int,
        preferred_router: int | None,
    ) -> bool:
        """True if every session already carries exactly the intended clauses."""
        for session in router.sessions_in:
            if not session.is_ebgp:
                continue
            if self.config.install_filters:
                if session.export_map is None:
                    return False
                filters = [
                    clause
                    for clause in session.export_map.clauses_for_prefix(prefix)
                    if clause.tag == FILTER_TAG and clause.match.prefix == prefix
                ]
                if len(filters) != 1 or filters[0].match.path_len_lt != length:
                    return False
            if self.config.install_ranking:
                if session.import_map is None:
                    return False
                ranks = [
                    clause
                    for clause in session.import_map.clauses_for_prefix(prefix)
                    if clause.tag == RANK_TAG and clause.match.prefix == prefix
                ]
                if preferred_router is not None:
                    is_preferred = session.src.router_id == preferred_router
                else:
                    is_preferred = session.src.asn == preferred_asn
                wanted = MED_PREFERRED if is_preferred else MED_OTHER
                if len(ranks) != 1 or ranks[0].set_med != wanted:
                    return False
        return True

    def _clear_refine_clauses(self, router: Router, prefix: Prefix) -> None:
        """Drop refinement clauses for ``prefix`` on all of ``router``'s sessions."""

        def is_stale(clause: Clause) -> bool:
            return (
                clause.tag in (FILTER_TAG, RANK_TAG)
                and clause.match.prefix == prefix
            )

        for session in router.sessions_in:
            if session.export_map is not None:
                session.export_map.remove_if(is_stale)
            if session.import_map is not None:
                session.import_map.remove_if(is_stale)

    def _delete_blocking_filters(
        self,
        asn: int,
        prefix: Prefix,
        target: tuple[int, ...],
        stats: IterationStats,
    ) -> bool:
        """Figure 7: remove egress filters stopping ``target`` from reaching ``asn``.

        Only applies when the announcing neighbour already has a RIB-Out
        match for its own suffix; then any refinement filter on a session
        from that neighbour into this AS that would deny the target path
        (its length threshold exceeds the target's length) is removed.
        """
        neighbor_asn = target[0]
        neighbor_target = target[1:]
        neighbor_selects = any(
            (best := router.best(prefix)) is not None
            and best.as_path == neighbor_target
            for router in self.model.quasi_routers(neighbor_asn)
        )
        if not neighbor_selects:
            return False
        length = len(target)
        removed = 0
        for router in self.model.quasi_routers(asn):
            removed_here = 0
            for session in router.sessions_in:
                if session.src.asn != neighbor_asn or session.export_map is None:
                    continue
                removed_here += session.export_map.remove_if(
                    lambda clause: clause.tag == FILTER_TAG
                    and clause.match.prefix == prefix
                    and clause.match.path_len_lt is not None
                    and clause.match.path_len_lt > length
                )
            if removed_here and self.certificates is not None:
                self.certificates.invalidate_policy(router.router_id, prefix)
            removed += removed_here
        stats.filters_deleted += removed
        if removed:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    EVENT_POLICY_DELETE,
                    asn=asn,
                    prefix=str(prefix),
                    target=list(target),
                    removed=removed,
                    iteration=stats.iteration,
                )
        return removed > 0
