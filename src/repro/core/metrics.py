"""Match metrics (Section 4.2) and baseline agreement categories (Table 2).

The unit of evaluation is one *unique observed AS-path*: the pair
(observation AS, AS-path including the observation AS).  For each the
model is graded:

* **RIB-Out match** — at least one quasi-router in the observation AS
  selected a route with the observed path as its best route;
* **potential RIB-Out match** — a RIB-In match where the observed route
  was eliminated only in the final tie-break (lowest neighbour router id);
* **RIB-In match** — some quasi-router learned the observed route but it
  lost earlier in the decision process;
* **no match** — the observed route never reached the observation AS.

Table 2 uses a different, single-router notion of *agreement* (the unique
best route equals the observed path) with a disagreement breakdown.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.bgp.decision import Step, run_decision
from repro.core.model import ASRoutingModel, MODEL_DECISION_CONFIG
from repro.topology.dataset import PathDataset


class MatchKind(enum.Enum):
    """Grade of one observed path against the simulated model (Section 4.2)."""

    RIB_OUT = "rib-out"
    POTENTIAL_RIB_OUT = "potential-rib-out"
    RIB_IN = "rib-in"
    NONE = "none"

    @property
    def is_rib_in_or_better(self) -> bool:
        """True for every grade except NONE."""
        return self is not MatchKind.NONE


class AgreementCategory(enum.Enum):
    """Table 2 categories for the single-router baselines."""

    AGREE = "agree"
    NOT_AVAILABLE = "as-path not available"
    SHORTER_EXISTS = "shorter as-path exists"
    TIE_BREAK = "lowest neighbor id"
    OTHER = "other decision step"


def classify_route_match(
    model: ASRoutingModel, observer_asn: int, path: tuple[int, ...]
) -> MatchKind:
    """Grade one observed path (must start with ``observer_asn``).

    Assumes the canonical prefix of the path's origin has been simulated.
    """
    if not path or path[0] != observer_asn:
        raise ValueError(f"path {path} does not start at observer AS {observer_asn}")
    prefix = model.canonical_prefix(path[-1])
    target = path[1:]

    best_match = MatchKind.NONE
    for router in model.quasi_routers(observer_asn):
        best = router.best(prefix)
        if best is not None and best.as_path == target:
            return MatchKind.RIB_OUT
        candidates = router.candidates(prefix)
        targets = [route for route in candidates if route.as_path == target]
        if not targets:
            continue
        outcome = run_decision(candidates, MODEL_DECISION_CONFIG)
        if any(
            outcome.elimination_step(route) is Step.ROUTER_ID for route in targets
        ):
            best_match = MatchKind.POTENTIAL_RIB_OUT
        elif best_match is not MatchKind.POTENTIAL_RIB_OUT:
            best_match = MatchKind.RIB_IN
    return best_match


def classify_agreement(
    model: ASRoutingModel, observer_asn: int, path: tuple[int, ...]
) -> AgreementCategory:
    """Table 2 agreement category for a single-router model.

    With multiple quasi-routers the first (lowest-id) one is graded, which
    on the initial model is the only one.
    """
    if not path or path[0] != observer_asn:
        raise ValueError(f"path {path} does not start at observer AS {observer_asn}")
    prefix = model.canonical_prefix(path[-1])
    target = path[1:]
    routers = model.quasi_routers(observer_asn)
    if not routers:
        return AgreementCategory.NOT_AVAILABLE
    router = routers[0]
    best = router.best(prefix)
    if best is not None and best.as_path == target:
        return AgreementCategory.AGREE
    candidates = router.candidates(prefix)
    targets = [route for route in candidates if route.as_path == target]
    if not targets:
        return AgreementCategory.NOT_AVAILABLE
    outcome = run_decision(candidates, MODEL_DECISION_CONFIG)
    steps = {outcome.elimination_step(route) for route in targets}
    if Step.ROUTER_ID in steps:
        return AgreementCategory.TIE_BREAK
    if Step.PATH_LENGTH in steps:
        return AgreementCategory.SHORTER_EXISTS
    return AgreementCategory.OTHER


@dataclass
class MatchReport:
    """Aggregated Section 4.2 metrics over a dataset."""

    counts: dict[MatchKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in MatchKind}
    )
    coverage_by_origin: dict[int, tuple[int, int]] = field(default_factory=dict)
    """origin ASN -> (#unique paths RIB-Out matched, #unique paths)."""

    @property
    def total(self) -> int:
        """Number of unique observed paths graded."""
        return sum(self.counts.values())

    def rate(self, kind: MatchKind) -> float:
        """Fraction of cases with exactly this grade."""
        return self.counts[kind] / self.total if self.total else 0.0

    @property
    def rib_out_rate(self) -> float:
        """Fraction with a full RIB-Out match."""
        return self.rate(MatchKind.RIB_OUT)

    @property
    def tie_break_or_better_rate(self) -> float:
        """Fraction matched "down to the final BGP tie break" (the >80% claim)."""
        return self.rate(MatchKind.RIB_OUT) + self.rate(MatchKind.POTENTIAL_RIB_OUT)

    @property
    def rib_in_or_better_rate(self) -> float:
        """Fraction where the observed route at least reached the AS."""
        return 1.0 - self.rate(MatchKind.NONE) if self.total else 0.0

    def prefixes_with_coverage(self, threshold: float) -> int:
        """Origins whose unique paths are RIB-Out matched at >= ``threshold``."""
        return sum(
            1
            for matched, total in self.coverage_by_origin.values()
            if total > 0 and matched / total >= threshold
        )

    @property
    def origin_count(self) -> int:
        """Number of origin ASes with at least one graded path."""
        return len(self.coverage_by_origin)

    def coverage_summary(self) -> dict[str, float]:
        """Fractions of origins with >=50%, >=90% and 100% path coverage."""
        origins = self.origin_count or 1
        return {
            ">=50%": self.prefixes_with_coverage(0.5) / origins,
            ">=90%": self.prefixes_with_coverage(0.9) / origins,
            "100%": self.prefixes_with_coverage(1.0) / origins,
        }

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary for report rendering."""
        result = {
            "cases": float(self.total),
            "rib_out": self.rib_out_rate,
            "potential_rib_out": self.rate(MatchKind.POTENTIAL_RIB_OUT),
            "rib_in_only": self.rate(MatchKind.RIB_IN),
            "no_match": self.rate(MatchKind.NONE),
            "tie_break_or_better": self.tie_break_or_better_rate,
            "rib_in_or_better": self.rib_in_or_better_rate,
        }
        result.update(
            {f"origins_{k}": v for k, v in self.coverage_summary().items()}
        )
        return result


def unique_cases(dataset: PathDataset) -> list[tuple[int, tuple[int, ...]]]:
    """Deduplicated, deterministically-ordered (observer, path) cases."""
    cases = {(route.observer_asn, route.path.asns) for route in dataset}
    return sorted(cases)


def evaluate_dataset(model: ASRoutingModel, dataset: PathDataset) -> MatchReport:
    """Grade every unique observed path of ``dataset`` against ``model``.

    The model must already be simulated for every canonical prefix whose
    origin appears in the dataset.
    """
    report = MatchReport()
    matched: dict[int, int] = defaultdict(int)
    totals: dict[int, int] = defaultdict(int)
    for observer_asn, path in unique_cases(dataset):
        kind = classify_route_match(model, observer_asn, path)
        report.counts[kind] += 1
        origin = path[-1]
        totals[origin] += 1
        if kind is MatchKind.RIB_OUT:
            matched[origin] += 1
    for origin, total in totals.items():
        report.coverage_by_origin[origin] = (matched[origin], total)
    return report


def evaluate_agreement(
    model: ASRoutingModel, dataset: PathDataset
) -> dict[AgreementCategory, int]:
    """Table 2: agreement counts for a single-router model."""
    counts = {category: 0 for category in AgreementCategory}
    for observer_asn, path in unique_cases(dataset):
        counts[classify_agreement(model, observer_asn, path)] += 1
    return counts
