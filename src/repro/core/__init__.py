"""The paper's primary contribution: the quasi-router AS-routing model.

Workflow (Section 4):

1. :func:`~repro.core.build.build_initial_model` — derive the AS graph
   from *all* feeds and build the simplest model: one quasi-router per AS,
   one eBGP session per AS edge, one canonical prefix originated per AS.
2. :class:`~repro.core.refine.Refiner` — iteratively compare simulated
   with observed (training) AS-paths and repair mismatches by installing
   per-prefix filters and MED rankings, duplicating quasi-routers, and
   deleting stale filters, until the model reproduces the training paths.
3. :func:`~repro.core.predict.evaluate_model` — grade the refined model
   against a held-out validation set using the Section 4.2 metrics
   (RIB-In match, potential RIB-Out match, RIB-Out match).
"""

from repro.core.model import ASRoutingModel, MODEL_DECISION_CONFIG
from repro.core.build import build_initial_model
from repro.core.metrics import (
    MatchKind,
    MatchReport,
    classify_route_match,
    evaluate_dataset,
)
from repro.core.split import split_by_observation_points, split_by_origin
from repro.core.refine import Refiner, RefinementConfig, RefinementResult
from repro.core.predict import (
    evaluate_model,
    origin_is_simulated,
    predict_for_origins,
    predict_paths,
    selected_paths,
    validate_pair,
)
from repro.core.whatif import depeer, simulate_link_failure

__all__ = [
    "ASRoutingModel",
    "MODEL_DECISION_CONFIG",
    "build_initial_model",
    "MatchKind",
    "MatchReport",
    "classify_route_match",
    "evaluate_dataset",
    "split_by_observation_points",
    "split_by_origin",
    "Refiner",
    "RefinementConfig",
    "RefinementResult",
    "evaluate_model",
    "origin_is_simulated",
    "predict_for_origins",
    "predict_paths",
    "selected_paths",
    "validate_pair",
    "depeer",
    "simulate_link_failure",
]
