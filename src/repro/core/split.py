"""Training/validation splits (Section 4.2).

Two slicing strategies:

* by observation point — "We divide the available BGP data randomly into
  two subsets by assigning observation points to either subset";
* by originating AS — "split the set of AS-paths according to the
  originating ASes", used to test prediction for unobserved prefixes.
"""

from __future__ import annotations

import random

from repro.errors import DatasetError
from repro.topology.dataset import PathDataset


def split_by_observation_points(
    dataset: PathDataset,
    training_fraction: float = 0.5,
    seed: int = 0,
) -> tuple[PathDataset, PathDataset]:
    """Randomly assign observation points to (training, validation).

    Every route observed at a point follows its point.  Both sides are
    guaranteed non-empty (requires at least two observation points).
    """
    if not 0.0 < training_fraction < 1.0:
        raise ValueError(f"training_fraction must be in (0, 1): {training_fraction}")
    points = sorted(dataset.observation_points())
    if len(points) < 2:
        raise DatasetError("need at least two observation points to split")
    rng = random.Random(seed)
    rng.shuffle(points)
    cut = round(len(points) * training_fraction)
    cut = min(max(cut, 1), len(points) - 1)
    training_points = set(points[:cut])
    training = dataset.restrict_points(training_points)
    validation = dataset.restrict_points(set(points[cut:]))
    return training, validation


def split_by_origin(
    dataset: PathDataset,
    training_fraction: float = 0.5,
    seed: int = 0,
) -> tuple[PathDataset, PathDataset]:
    """Randomly assign origin ASes to (training, validation).

    The validation side contains only routes for prefixes whose origin AS
    contributed nothing to training — the "previously unconsidered
    prefixes" scenario of Section 4.7.
    """
    if not 0.0 < training_fraction < 1.0:
        raise ValueError(f"training_fraction must be in (0, 1): {training_fraction}")
    origins = sorted(dataset.origin_asns())
    if len(origins) < 2:
        raise DatasetError("need at least two origin ASes to split")
    rng = random.Random(seed)
    rng.shuffle(origins)
    cut = round(len(origins) * training_fraction)
    cut = min(max(cut, 1), len(origins) - 1)
    training = dataset.restrict_origins(origins[:cut])
    validation = dataset.restrict_origins(origins[cut:])
    return training, validation
