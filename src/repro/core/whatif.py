"""What-if analysis (the motivating application of Section 1).

"What if a certain peering link was removed, or what-if we change
policies thus?" — given a refined model, :func:`depeer` removes every
session between two ASes, re-simulates, and reports which predicted paths
change at which observation ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.model import ASRoutingModel
from repro.core.predict import selected_paths
from repro.errors import TopologyError


@dataclass
class PathChange:
    """One (observer, origin) pair whose predicted path set changed."""

    observer_asn: int
    origin_asn: int
    before: frozenset[tuple[int, ...]]
    after: frozenset[tuple[int, ...]]

    @property
    def lost_reachability(self) -> bool:
        """True if the observer can no longer reach the origin at all."""
        return bool(self.before) and not self.after


@dataclass
class WhatIfReport:
    """Outcome of a what-if experiment."""

    description: str
    changes: list[PathChange] = field(default_factory=list)
    origins_examined: int = 0
    observers_examined: int = 0

    @property
    def affected_pairs(self) -> int:
        """Number of (observer, origin) pairs whose paths changed."""
        return len(self.changes)

    @property
    def unreachable_pairs(self) -> int:
        """Pairs that lost reachability entirely."""
        return sum(1 for change in self.changes if change.lost_reachability)


def _snapshot(
    model: ASRoutingModel, origins: list[int], observers: list[int]
) -> dict[tuple[int, int], frozenset[tuple[int, ...]]]:
    """Best-path sets for every (observer, origin) pair."""
    snapshot: dict[tuple[int, int], frozenset[tuple[int, ...]]] = {}
    for origin in origins:
        for observer in observers:
            snapshot[(observer, origin)] = frozenset(
                selected_paths(model, origin, observer)
            )
    return snapshot


def depeer(
    model: ASRoutingModel,
    asn_a: int,
    asn_b: int,
    origins: Iterable[int] | None = None,
    observers: Iterable[int] | None = None,
) -> WhatIfReport:
    """Remove the peering between ``asn_a`` and ``asn_b`` and re-predict.

    The model is modified in place (all sessions between the two ASes are
    torn down, and the AS edge leaves the graph).  ``origins`` and
    ``observers`` default to every AS originating a canonical prefix and
    every AS, respectively — restrict them for large models.
    """
    return simulate_link_failure(model, [(asn_a, asn_b)], origins, observers)


def validate_session_endpoints(
    model: ASRoutingModel, as_edges: Iterable[tuple[int, int]]
) -> None:
    """Check every edge's endpoints and adjacency *before* simulating.

    Raises :class:`~repro.errors.TopologyError` naming the first unknown
    ASN (the same up-front contract ``query``/``predict_paths`` honour),
    or the first pair with no adjacency.  Callers get the error before
    any simulation work is spent.
    """
    known = model.network.ases
    for asn_a, asn_b in as_edges:
        for asn in (asn_a, asn_b):
            if asn not in known:
                raise TopologyError(f"unknown AS {asn}: not in the model")
        if not model.graph.has_edge(asn_a, asn_b):
            raise TopologyError(
                f"no adjacency between AS {asn_a} and AS {asn_b}"
            )


def simulate_link_failure(
    model: ASRoutingModel,
    as_edges: list[tuple[int, int]],
    origins: Iterable[int] | None = None,
    observers: Iterable[int] | None = None,
) -> WhatIfReport:
    """Remove several AS-level adjacencies at once and report path changes.

    Endpoints are validated up front (:func:`validate_session_endpoints`):
    an unknown ASN or missing adjacency raises before any simulation
    instead of failing mid-run.
    """
    validate_session_endpoints(model, as_edges)
    origin_list = sorted(origins) if origins is not None else sorted(
        model.prefix_by_origin
    )
    observer_list = sorted(observers) if observers is not None else sorted(
        model.network.ases
    )
    for origin in origin_list:
        model.simulate_origin(origin)
    before = _snapshot(model, origin_list, observer_list)

    removed_sessions = 0
    for asn_a, asn_b in as_edges:
        for router_a in list(model.quasi_routers(asn_a)):
            for session in list(router_a.sessions_out):
                if session.dst.asn == asn_b:
                    model.network.disconnect(router_a, session.dst)
                    removed_sessions += 1
        model.graph.remove_edge(asn_a, asn_b)

    for origin in origin_list:
        model.simulate_origin(origin)
    after = _snapshot(model, origin_list, observer_list)

    description = ", ".join(f"AS{a}-AS{b}" for a, b in as_edges)
    report = WhatIfReport(
        description=f"removed {description} ({removed_sessions} sessions)",
        origins_examined=len(origin_list),
        observers_examined=len(observer_list),
    )
    for key in sorted(before):
        if before[key] != after[key]:
            observer, origin = key
            report.changes.append(
                PathChange(observer, origin, before[key], after[key])
            )
    return report
