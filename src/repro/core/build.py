"""Initial-model construction (Section 4.5).

"To derive the initial model we use all available BGP feeds, training as
well as validation, to derive an AS-graph from the AS-path information...
Initially, all ASes consist of a single quasi-router, and peerings are
established according to the edges of the AS graph."
"""

from __future__ import annotations

from repro.bgp.network import Network
from repro.core.model import ASRoutingModel
from repro.topology.dataset import PathDataset
from repro.topology.graph import ASGraph


def build_initial_model(
    dataset: PathDataset,
    graph: ASGraph | None = None,
) -> ASRoutingModel:
    """Build the one-quasi-router-per-AS model from observed paths.

    ``graph`` may be supplied when the AS graph was already extracted (and
    possibly pruned); otherwise it is derived from ``dataset``.  Every AS
    in the graph originates one canonical prefix, matching the paper's
    one-prefix-per-AS simplification.
    """
    if graph is None:
        graph = ASGraph.from_dataset(dataset)
    network = Network(name="as-routing-model")
    for asn in sorted(graph.ases()):
        network.add_router(asn)
    for a, b in sorted(graph.edges()):
        router_a = network.as_routers(a)[0]
        router_b = network.as_routers(b)[0]
        network.connect(router_a, router_b)
    model = ASRoutingModel(network=network, graph=graph)
    for asn in sorted(graph.ases()):
        model.add_origin(asn)
    network.validate()
    return model
