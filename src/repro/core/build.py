"""Initial-model construction (Section 4.5).

"To derive the initial model we use all available BGP feeds, training as
well as validation, to derive an AS-graph from the AS-path information...
Initially, all ASes consist of a single quasi-router, and peerings are
established according to the edges of the AS graph."
"""

from __future__ import annotations

from repro.bgp.network import Network
from repro.core.model import ASRoutingModel
from repro.relationships.types import RelationshipMap
from repro.topology.dataset import PathDataset
from repro.topology.graph import ASGraph


def build_relationship_model(
    graph: ASGraph, relationships: RelationshipMap
) -> ASRoutingModel:
    """Build the initial model straight from an ingested AS-rel graph.

    Mirrors :func:`build_initial_model` — one quasi-router and one
    canonical prefix per AS — but seeds peerings from a CAIDA-style
    relationship graph instead of observed AS-paths, and installs the
    Gao-Rexford import/export policies for every classified edge, so the
    result is immediately certifiable against ``relationships`` (the
    ``gao`` analysis pass and ``repro lint --relationships``).
    """
    from repro.relationships.policies import apply_relationship_policies

    network = Network(name="as-relationship-model")
    for asn in sorted(graph.ases()):
        network.add_router(asn)
    for a, b in sorted(graph.edges()):
        router_a = network.as_routers(a)[0]
        router_b = network.as_routers(b)[0]
        network.connect(router_a, router_b)
    apply_relationship_policies(network, relationships)
    model = ASRoutingModel(network=network, graph=graph)
    for asn in sorted(graph.ases()):
        model.add_origin(asn)
    network.validate()
    return model


def build_initial_model(
    dataset: PathDataset,
    graph: ASGraph | None = None,
) -> ASRoutingModel:
    """Build the one-quasi-router-per-AS model from observed paths.

    ``graph`` may be supplied when the AS graph was already extracted (and
    possibly pruned); otherwise it is derived from ``dataset``.  Every AS
    in the graph originates one canonical prefix, matching the paper's
    one-prefix-per-AS simplification.
    """
    if graph is None:
        graph = ASGraph.from_dataset(dataset)
    network = Network(name="as-routing-model")
    for asn in sorted(graph.ases()):
        network.add_router(asn)
    for a, b in sorted(graph.edges()):
        router_a = network.as_routers(a)[0]
        router_b = network.as_routers(b)[0]
        network.connect(router_a, router_b)
    model = ASRoutingModel(network=network, graph=graph)
    for asn in sorted(graph.ases()):
        model.add_origin(asn)
    network.validate()
    return model
