"""Static Gao-Rexford compliance: prove valley-free export behaviour.

Gao & Rexford's stability conditions ("Inferring Internet AS
Relationships Based on BGP Routing Policies", PAPERS.md) require that an
AS never exports routes learned from a peer or a provider towards another
peer or provider — otherwise it offers free transit and the route takes a
"valley".  :mod:`repro.relationships.policies` realises that contract
with community tags (``TAG_FROM_PEER`` / ``TAG_FROM_PROVIDER``) set on
import and matching deny clauses on export.

This pass checks the contract *statically*, directly against the
:class:`RelationshipMap` from ingested CAIDA data and the installed
route-maps — no simulation: for every eBGP session whose receiver is a
peer or provider of the announcer, the export map must discard routes
carrying either tag before any clause could permit them.  The check is
deliberately conservative — it certifies compliance only when the first
clause that *decides* a tagged route's fate is a deny (or the map denies
by default); a permissive first-match or a missing map is reported as a
violation.

Findings carry no prefix (the property is per-session, not per-prefix),
so in the certificate store they live under the model-wide certificate.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.topology_lint import provider_cycle_findings
from repro.bgp.network import Network
from repro.bgp.policy import Action, Match, RouteMap
from repro.bgp.session import Session
from repro.relationships.policies import TAG_FROM_PEER, TAG_FROM_PROVIDER
from repro.relationships.types import Relationship, RelationshipMap

RULE_VALLEY_EXPORT = "gao-valley-export"

_TAG_NAMES = {
    TAG_FROM_PEER: "peer-learned",
    TAG_FROM_PROVIDER: "provider-learned",
}

_RESTRICTED = (Relationship.PEER, Relationship.PROVIDER)
"""Receiver relationships (from the announcer's view) that forbid
re-exporting peer/provider routes.  Siblings exchange all routes and
unknown edges carry no provable obligation, so neither is flagged."""


def _exports_denied(route_map: RouteMap | None, community: int) -> bool:
    """True when every route carrying ``community`` is provably denied.

    Walks the map in first-match order with a probe matching exactly the
    tagged routes; the first clause whose match subsumes the probe decides
    all of them.  Clauses that could match only *some* tagged routes are
    skipped — sound for certification (we never certify a leaky map) at
    the cost of flagging exotic hand-written maps that are valley-free in
    ways this static check cannot prove.
    """
    if route_map is None:
        return False
    probe = Match(community=community)
    for _position, clause in route_map.entries():
        if clause.match.subsumes(probe):
            return clause.action is Action.DENY
    return route_map.default_action is Action.DENY


def _session_violation(
    session: Session, relationship: Relationship
) -> Finding | None:
    """The valley-export finding for one restricted session, if any."""
    leaking = [
        name
        for community, name in sorted(_TAG_NAMES.items())
        if not _exports_denied(session.export_map, community)
    ]
    if not leaking:
        return None
    clauses = tuple(
        f"missing/ineffective export deny for {name} routes "
        f"(community {community:#x})"
        for community, name in sorted(_TAG_NAMES.items())
        if _TAG_NAMES[community] in leaking
    )
    return Finding(
        rule=RULE_VALLEY_EXPORT,
        severity=Severity.ERROR,
        message=(
            f"AS{session.src.asn} exports {' and '.join(leaking)} routes "
            f"towards its {relationship.name.lower()} AS{session.dst.asn}; "
            "valley-free (Gao-Rexford) export cannot be certified for "
            "this session"
        ),
        asns=tuple(sorted({session.src.asn, session.dst.asn})),
        routers=(session.src.router_id, session.dst.router_id),
        clauses=clauses,
    )


def analyze_gao_rexford(
    network: Network, relationships: RelationshipMap
) -> list[Finding]:
    """Run the compliance pass; deterministic session-id order.

    Returns provider-customer hierarchy-cycle errors (a precondition of
    any valley-free argument) followed by per-session valley-export
    violations.
    """
    findings: list[Finding] = list(provider_cycle_findings(relationships))
    for session_id in sorted(network.sessions):
        session = network.sessions[session_id]
        if not session.is_ebgp:
            continue
        relationship = relationships.get(session.src.asn, session.dst.asn)
        if relationship not in _RESTRICTED:
            continue
        finding = _session_violation(session, relationship)
        if finding is not None:
            findings.append(finding)
    return findings
