"""Static safety analysis: dispute-digraph construction and wheel detection.

BGP safety (guaranteed convergence) is a property of the per-prefix route
*rankings* the policies realise (Griffin et al.'s dispute-wheel
condition).  This pass extracts, without simulating, the strict
preferences the installed route-maps encode and searches them for cycles:

* a **local-pref edge** ``A -> B`` exists for a prefix when a reachable
  import clause at a quasi-router of AS ``A`` raises local-pref above the
  default for routes announced by AS ``B`` — AS ``A`` then prefers routes
  via ``B`` over any route at default preference, regardless of AS-path
  length;
* a **MED edge** ``r -> r'`` exists when quasi-router ``r``'s per-session
  MED rankings (with always-compare MED, the model's decision config)
  strictly prefer neighbour quasi-router ``r'`` among its sessions.

A cycle of local-pref edges spanning three or more ASes is the classic
"bad gadget" — a potential dispute wheel with no stable solution — and is
reported as an error; it is exactly the structure
:func:`repro.resilience.faults.inject_dispute_wheel` installs.  Two-AS
mutual preference (DISAGREE) and MED-level cycles have stable solutions
under deterministic message ordering, so they are reported as warnings.

The converse direction keeps the analysis sound for the paper's refined
models: Section 4.6 refinement never touches local-pref (only MED and
deny filters keyed to the loop-free observed paths), and Gao-Rexford
relationship policies keep customer routes *at* the default preference,
so neither produces a local-pref edge, let alone a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.policy_lint import shadower_of
from repro.bgp.attributes import DEFAULT_LOCAL_PREF, DEFAULT_MED
from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, RouteMap
from repro.bgp.router import Router
from repro.net.prefix import Prefix

RULE_DISPUTE_WHEEL = "safety-dispute-wheel"
RULE_MUTUAL_PREFERENCE = "safety-mutual-preference"
RULE_MED_CYCLE = "safety-med-cycle"

_CLAUSES_PER_FINDING = 12
"""At most this many participating clauses are named per finding."""


@dataclass(frozen=True)
class PreferenceEdge:
    """One strict preference extracted from an import route-map.

    The quasi-router ``router_id`` (of AS ``asn``) prefers, for ``prefix``
    (``None`` = every prefix), routes announced by ``neighbor_router_id``
    (of AS ``neighbor_asn``) because of ``clause``.
    """

    prefix: Prefix | None
    router_id: int
    asn: int
    neighbor_router_id: int
    neighbor_asn: int
    kind: str
    clause: str


def _describe_clause(
    src_asn: int, dst_asn: int, position: int, clause: Clause
) -> str:
    """Name one import clause the way findings report it."""
    effect = []
    if clause.set_local_pref is not None:
        effect.append(f"local-pref {clause.set_local_pref}")
    if clause.set_med is not None:
        effect.append(f"med {clause.set_med}")
    tag = f" (tag {clause.tag!r})" if clause.tag else ""
    return (
        f"AS{src_asn}->AS{dst_asn} import #{position}"
        f" [{clause.match.describe()}] -> {', '.join(effect) or clause.action.value}"
        f"{tag}"
    )


def _is_reachable(route_map: RouteMap, position: int, clause: Clause) -> bool:
    """True unless an earlier clause shadows ``clause`` entirely."""
    return clause.match.is_satisfiable() and (
        shadower_of(route_map, position, clause) is None
    )


def collect_preference_edges(network: Network) -> list[PreferenceEdge]:
    """Extract every strict-preference edge the import policies encode."""
    edges: list[PreferenceEdge] = []
    for router in network.routers.values():
        edges.extend(_local_pref_edges(router))
        edges.extend(_med_edges(router))
    return edges


def _local_pref_edges(router: Router) -> list[PreferenceEdge]:
    """Edges from clauses raising local-pref above the default."""
    edges: list[PreferenceEdge] = []
    for session in router.sessions_in:
        if not session.is_ebgp or session.import_map is None:
            continue
        for position, clause in session.import_map.entries():
            if clause.action is not Action.PERMIT:
                continue
            if clause.set_local_pref is None:
                continue
            if clause.set_local_pref <= DEFAULT_LOCAL_PREF:
                continue
            if not _is_reachable(session.import_map, position, clause):
                continue
            edges.append(
                PreferenceEdge(
                    prefix=clause.match.prefix,
                    router_id=router.router_id,
                    asn=router.asn,
                    neighbor_router_id=session.src.router_id,
                    neighbor_asn=session.src.asn,
                    kind="local-pref",
                    clause=_describe_clause(
                        session.src.asn, router.asn, position, clause
                    ),
                )
            )
    return edges


def _med_edges(router: Router) -> list[PreferenceEdge]:
    """Edges from per-session MED rankings with a unique strict minimum.

    Only exact-prefix MED clauses are considered: that is the shape the
    Section 4.6 refiner installs, and generic MED rewrites carry no
    neighbour preference the digraph could use.  Sessions without a MED
    clause for the prefix compete at the announced default MED.
    """
    by_prefix: dict[Prefix, dict[int, tuple[int, str]]] = {}
    ranked_sessions = []
    for session in router.sessions_in:
        if not session.is_ebgp or session.import_map is None:
            continue
        ranked_sessions.append(session)
        for position, clause in session.import_map.entries():
            if clause.action is not Action.PERMIT or clause.set_med is None:
                continue
            if clause.match.prefix is None:
                continue
            if not _is_reachable(session.import_map, position, clause):
                continue
            per_session = by_prefix.setdefault(clause.match.prefix, {})
            if session.session_id in per_session:
                continue  # first matching clause wins
            per_session[session.session_id] = (
                clause.set_med,
                _describe_clause(session.src.asn, router.asn, position, clause),
            )
    edges: list[PreferenceEdge] = []
    session_by_id = {s.session_id: s for s in ranked_sessions}
    for prefix, per_session in by_prefix.items():
        meds = {
            session_id: per_session.get(session_id, (DEFAULT_MED, ""))[0]
            for session_id in session_by_id
        }
        best = min(meds.values())
        winners = [sid for sid, med in meds.items() if med == best]
        if len(winners) != 1:
            continue
        winner = session_by_id[winners[0]]
        description = per_session.get(winners[0], (0, ""))[1] or (
            f"AS{winner.src.asn}->AS{router.asn} import"
            f" [prefix is {prefix}] -> med {best} (announced default)"
        )
        edges.append(
            PreferenceEdge(
                prefix=prefix,
                router_id=router.router_id,
                asn=router.asn,
                neighbor_router_id=winner.src.router_id,
                neighbor_asn=winner.src.asn,
                kind="med",
                clause=description,
            )
        )
    return edges


def strongly_connected_components(
    graph: dict[int, set[int]]
) -> list[list[int]]:
    """Tarjan's SCC algorithm, iterative (policy graphs can be deep)."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in graph:
        if root in index:
            continue
        work: list[tuple[int, Iterator[int]]] = [
            (root, iter(sorted(graph.get(root, ()))))
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _cyclic_components(graph: dict[int, set[int]]) -> list[list[int]]:
    """SCCs that contain at least one cycle (size >= 2; no self-edges here)."""
    return [
        sorted(component)
        for component in strongly_connected_components(graph)
        if len(component) >= 2
    ]


def edge_sort_key(edge: PreferenceEdge) -> tuple[int, int, str, str, str]:
    """Canonical edge ordering shared by the full and incremental passes.

    Findings name at most ``_CLAUSES_PER_FINDING`` participating clauses,
    so the *order* in which edges are considered is part of the output;
    sorting here makes that order a function of the edge set alone, not of
    router-iteration order — the invariant the certificate store's
    bit-for-bit equality gate relies on.
    """
    return (
        edge.router_id,
        edge.neighbor_router_id,
        str(edge.prefix) if edge.prefix is not None else "",
        edge.kind,
        edge.clause,
    )


def group_safety_edges(
    edges: list[PreferenceEdge],
) -> tuple[
    list[PreferenceEdge],
    dict[Prefix, list[PreferenceEdge]],
    dict[Prefix, list[PreferenceEdge]],
]:
    """Split edges into (global local-pref, per-prefix local-pref, per-prefix MED)."""
    global_lp: list[PreferenceEdge] = []
    lp_by_prefix: dict[Prefix, list[PreferenceEdge]] = {}
    med_by_prefix: dict[Prefix, list[PreferenceEdge]] = {}
    for edge in edges:
        if edge.kind == "local-pref":
            if edge.prefix is None:
                global_lp.append(edge)
            else:
                lp_by_prefix.setdefault(edge.prefix, []).append(edge)
        elif edge.prefix is not None:
            med_by_prefix.setdefault(edge.prefix, []).append(edge)
    return global_lp, lp_by_prefix, med_by_prefix


def local_pref_findings_for_prefix(
    prefix: Prefix, graph_edges: list[PreferenceEdge]
) -> list[Finding]:
    """Cycle findings over one prefix's AS-granularity local-pref digraph.

    ``graph_edges`` must contain the prefix's own local-pref edges *plus*
    every prefix-agnostic (``prefix is None``) local-pref edge, since those
    participate in every prefix's graph.
    """
    graph_edges = sorted(graph_edges, key=edge_sort_key)
    graph: dict[int, set[int]] = {}
    for edge in graph_edges:
        graph.setdefault(edge.asn, set()).add(edge.neighbor_asn)
        graph.setdefault(edge.neighbor_asn, set())
    findings: list[Finding] = []
    for component in _cyclic_components(graph):
        members = set(component)
        involved = [
            e
            for e in graph_edges
            if e.asn in members and e.neighbor_asn in members
        ]
        severity = Severity.ERROR if len(component) >= 3 else Severity.WARNING
        rule = (
            RULE_DISPUTE_WHEEL
            if len(component) >= 3
            else RULE_MUTUAL_PREFERENCE
        )
        noun = (
            "potential dispute wheel"
            if len(component) >= 3
            else "mutual local-pref preference (DISAGREE gadget)"
        )
        findings.append(
            Finding(
                rule=rule,
                severity=severity,
                message=(
                    f"{noun}: local-pref rankings of ASes "
                    f"{' -> '.join(f'AS{a}' for a in component)} form a cycle; "
                    "BGP may not converge for this prefix"
                ),
                prefix=prefix,
                asns=tuple(component),
                routers=tuple(sorted({e.router_id for e in involved})),
                clauses=tuple(
                    e.clause for e in involved[:_CLAUSES_PER_FINDING]
                ),
                omitted_count=max(0, len(involved) - _CLAUSES_PER_FINDING),
            )
        )
    return findings


def med_findings_for_prefix(
    prefix: Prefix, edges: list[PreferenceEdge]
) -> list[Finding]:
    """Cycle findings over one prefix's quasi-router MED digraph."""
    edges = sorted(edges, key=edge_sort_key)
    graph: dict[int, set[int]] = {}
    for edge in edges:
        graph.setdefault(edge.router_id, set()).add(edge.neighbor_router_id)
        graph.setdefault(edge.neighbor_router_id, set())
    findings: list[Finding] = []
    for component in _cyclic_components(graph):
        members = set(component)
        involved = [
            e
            for e in edges
            if e.router_id in members and e.neighbor_router_id in members
        ]
        findings.append(
            Finding(
                rule=RULE_MED_CYCLE,
                severity=Severity.WARNING,
                message=(
                    "MED rankings of "
                    f"{len(component)} quasi-routers form a preference "
                    "cycle; convergence relies on tie-breaking order"
                ),
                prefix=prefix,
                asns=tuple(sorted({e.asn for e in involved})),
                routers=tuple(component),
                clauses=tuple(
                    e.clause for e in involved[:_CLAUSES_PER_FINDING]
                ),
                omitted_count=max(0, len(involved) - _CLAUSES_PER_FINDING),
            )
        )
    return findings


def analyze_safety(
    network: Network, prefixes: list[Prefix] | None = None
) -> list[Finding]:
    """Run the dispute-digraph pass; one finding per preference cycle."""
    edges = collect_preference_edges(network)
    scoped = prefixes if prefixes is not None else network.prefixes()
    global_lp, lp_by_prefix, med_by_prefix = group_safety_edges(edges)
    targets: list[Prefix]
    if global_lp:
        # Prefix-agnostic preferences participate in every prefix's graph.
        targets = sorted(set(scoped) | set(lp_by_prefix))
    else:
        targets = sorted(lp_by_prefix)
    findings: list[Finding] = []
    for prefix in targets:
        findings.extend(
            local_pref_findings_for_prefix(
                prefix, lp_by_prefix.get(prefix, []) + global_lp
            )
        )
    for prefix in sorted(med_by_prefix):
        findings.extend(med_findings_for_prefix(prefix, med_by_prefix[prefix]))
    return findings


def unsafe_prefixes(network: Network) -> list[Prefix]:
    """Prefixes with an error-level safety finding (the lint-gate set)."""
    unsafe: set[Prefix] = set()
    for finding in analyze_safety(network):
        if finding.severity is Severity.ERROR:
            if finding.prefix is not None:
                unsafe.add(finding.prefix)
            else:
                unsafe.update(network.prefixes())
    return sorted(unsafe)
