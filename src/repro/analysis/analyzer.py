"""Analyzer orchestration: run the static passes over a model or config.

The analyzer operates on an in-memory :class:`~repro.bgp.Network` (or an
:class:`~repro.core.model.ASRoutingModel` wrapping one, or a C-BGP-style
config file parsed into one) and requires no simulation.  Passes:

* ``safety`` — dispute-digraph cycle detection (:mod:`.safety`);
* ``policy`` — route-map lint (:mod:`.policy_lint`); the
  dataset-dependent rules (blocking filters, stale refinement clauses)
  only run when a training dataset is supplied;
* ``topology`` — structural lint (:mod:`.topology_lint`); observation-
  point reachability only runs when observer ASes are known (defaulting
  to the dataset's observers);
* ``gao`` — Gao-Rexford valley-free export compliance plus
  provider-customer hierarchy-cycle detection (:mod:`.gaorexford`);
  only runs when a :class:`~repro.relationships.types.RelationshipMap`
  (from ingested CAIDA as-rel data) is supplied.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import AnalysisReport
from repro.analysis.gaorexford import analyze_gao_rexford
from repro.analysis.policy_lint import analyze_policies
from repro.analysis.safety import analyze_safety
from repro.analysis.topology_lint import analyze_topology
from repro.bgp.network import Network
from repro.net.prefix import Prefix
from repro.relationships.types import RelationshipMap
from repro.topology.dataset import PathDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.model import ASRoutingModel

ALL_PASSES = ("safety", "policy", "topology", "gao")


def analyze_network(
    network: Network,
    dataset: PathDataset | None = None,
    observer_asns: set[int] | None = None,
    prefix_by_origin: dict[int, Prefix] | None = None,
    passes: Iterable[str] = ALL_PASSES,
    relationships: RelationshipMap | None = None,
) -> AnalysisReport:
    """Run the selected static passes over ``network``."""
    selected = list(passes)
    unknown = sorted(set(selected) - set(ALL_PASSES))
    if unknown:
        raise ValueError(f"unknown analysis passes: {unknown}")
    if observer_asns is None and dataset is not None:
        observer_asns = dataset.observer_asns()
    report = AnalysisReport()
    if "safety" in selected:
        report.extend(analyze_safety(network), "safety")
    if "policy" in selected:
        report.extend(
            analyze_policies(network, dataset, prefix_by_origin), "policy"
        )
    if "topology" in selected:
        report.extend(analyze_topology(network, observer_asns), "topology")
    if "gao" in selected and relationships is not None:
        report.extend(analyze_gao_rexford(network, relationships), "gao")
    return report


def analyze_model(
    model: "ASRoutingModel",
    dataset: PathDataset | None = None,
    observer_asns: set[int] | None = None,
    passes: Iterable[str] = ALL_PASSES,
    relationships: RelationshipMap | None = None,
) -> AnalysisReport:
    """Run the analyzer over a model, using its origin -> prefix mapping."""
    return analyze_network(
        model.network,
        dataset=dataset,
        observer_asns=observer_asns,
        prefix_by_origin=dict(model.prefix_by_origin),
        passes=passes,
        relationships=relationships,
    )


def analyze_config(
    path: str | Path,
    dataset: PathDataset | None = None,
    observer_asns: set[int] | None = None,
    passes: Iterable[str] = ALL_PASSES,
    relationships: RelationshipMap | None = None,
) -> AnalysisReport:
    """Parse a C-BGP-style config file and run the analyzer over it."""
    from repro.cbgp.parse import parse_file

    return analyze_network(
        parse_file(path),
        dataset=dataset,
        observer_asns=observer_asns,
        passes=passes,
        relationships=relationships,
    )
