"""Static analysis of AS-routing models: safety, policy and topology lint.

``repro.analysis`` proves or refutes model properties *before* any
simulation runs: dispute-wheel detection over the per-prefix preference
digraph (Griffin-style safety), route-map lint (shadowed and
contradictory clauses, filters that block every observed path, stale
refinement clauses) and topology lint (isolated quasi-routers, merge
candidates, ASes invisible to every observation point).  The ``repro
lint`` CLI subcommand and the refinement lint gate
(:class:`~repro.core.refine.RefinementConfig` ``lint_gate``) are built on
this package.
"""

from repro.analysis.analyzer import (
    ALL_PASSES,
    analyze_config,
    analyze_model,
    analyze_network,
)
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.safety import (
    PreferenceEdge,
    analyze_safety,
    collect_preference_edges,
    unsafe_prefixes,
)

__all__ = [
    "ALL_PASSES",
    "AnalysisReport",
    "Finding",
    "PreferenceEdge",
    "Severity",
    "analyze_config",
    "analyze_model",
    "analyze_network",
    "analyze_safety",
    "collect_preference_edges",
    "unsafe_prefixes",
]
