"""Static analysis of AS-routing models: safety, policy and topology lint.

``repro.analysis`` proves or refutes model properties *before* any
simulation runs: dispute-wheel detection over the per-prefix preference
digraph (Griffin-style safety), route-map lint (shadowed and
contradictory clauses, filters that block every observed path, stale
refinement clauses), topology lint (isolated quasi-routers, merge
candidates, ASes invisible to every observation point, provider-customer
hierarchy cycles) and Gao-Rexford valley-free export compliance against
an ingested relationship map.  The ``repro lint`` CLI subcommand and the
refinement lint gate (:class:`~repro.core.refine.RefinementConfig`
``lint_gate``) are built on this package.

:mod:`repro.analysis.certify` makes re-analysis *incremental*: every
per-prefix result becomes a fingerprinted :class:`SafetyCertificate` in a
dependency-tracked :class:`CertificateStore`, so a policy change
re-certifies only the prefixes whose footprint it touches.
:mod:`repro.analysis.diffing` statically diffs two reports (``repro lint
--diff BASE``) into new / resolved / unchanged findings.
"""

from repro.analysis.analyzer import (
    ALL_PASSES,
    analyze_config,
    analyze_model,
    analyze_network,
)
from repro.analysis.certify import (
    GLOBAL_KEY,
    CertificateStore,
    CertifyStats,
    SafetyCertificate,
    certify_network,
)
from repro.analysis.diffing import ReportDiff, diff_reports
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.gaorexford import analyze_gao_rexford
from repro.analysis.safety import (
    PreferenceEdge,
    analyze_safety,
    collect_preference_edges,
    unsafe_prefixes,
)
from repro.analysis.topology_lint import provider_customer_cycles

__all__ = [
    "ALL_PASSES",
    "GLOBAL_KEY",
    "AnalysisReport",
    "CertificateStore",
    "CertifyStats",
    "Finding",
    "PreferenceEdge",
    "ReportDiff",
    "SafetyCertificate",
    "Severity",
    "analyze_config",
    "analyze_gao_rexford",
    "analyze_model",
    "analyze_network",
    "analyze_safety",
    "certify_network",
    "collect_preference_edges",
    "diff_reports",
    "provider_customer_cycles",
    "unsafe_prefixes",
]
