"""Static model diffing: compare two analysis reports finding-by-finding.

``repro lint --diff BASE`` compares the findings of two models (or
compiled artifacts carrying embedded certificates) without simulating
either: a finding present only in the current report is **new**, one
present only in the base is **resolved**, and matching findings are
**unchanged**.  Identity is the finding's full canonical JSON form —
rule, severity, message, prefix, ASNs, routers, clauses — so a finding
that merely moved in the report is unchanged, while one whose
participating clauses changed shows up as resolved + new.

Reports are multisets: the same finding occurring twice on one side and
once on the other yields one unchanged and one new/resolved entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.diffutil import multiset_diff, truncate_ranked


def _identity(finding: Finding) -> str:
    """Canonical JSON identity of one finding."""
    return json.dumps(finding.to_dict(), sort_keys=True)


@dataclass
class ReportDiff:
    """The outcome of diffing a base report against a current one."""

    new: list[Finding] = field(default_factory=list)
    resolved: list[Finding] = field(default_factory=list)
    unchanged: int = 0

    @property
    def exit_code(self) -> int:
        """Nonzero iff the diff introduces error-level findings."""
        return 1 if any(f.severity is Severity.ERROR for f in self.new) else 0

    def counts(self) -> dict[str, int]:
        """Entry counts per diff bucket."""
        return {
            "new": len(self.new),
            "resolved": len(self.resolved),
            "unchanged": self.unchanged,
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable diff."""
        return {
            "counts": self.counts(),
            "new": [f.to_dict() for f in self.new],
            "resolved": [f.to_dict() for f in self.resolved],
            "exit_code": self.exit_code,
        }

    def to_json(self, indent: int = 2) -> str:
        """The diff as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, max_findings: int | None = None) -> str:
        """Multi-line text diff: new findings first, then resolved."""
        lines: list[str] = []
        for label, findings, noun in (
            ("+", self.new, "new findings"),
            ("-", self.resolved, "resolved findings"),
        ):
            ordered = sorted(
                findings,
                key=lambda f: (-int(f.severity), f.rule, str(f.prefix)),
            )
            lines.extend(
                truncate_ranked(
                    [f"{label} {finding.render()}" for finding in ordered],
                    max_findings,
                    noun,
                )
            )
        counts = self.counts()
        lines.append(
            f"diff: {counts['new']} new, {counts['resolved']} resolved, "
            f"{counts['unchanged']} unchanged"
        )
        return "\n".join(lines)


def diff_reports(base: AnalysisReport, current: AnalysisReport) -> ReportDiff:
    """Diff two reports into new / resolved / unchanged findings."""

    def order(finding: Finding):
        return (-int(finding.severity), finding.rule, str(finding.prefix),
                finding.message)

    new, resolved, unchanged = multiset_diff(
        sorted(base.findings, key=order),
        sorted(current.findings, key=order),
        key=_identity,
    )
    return ReportDiff(new=new, resolved=resolved, unchanged=unchanged)
