"""Incremental safety certification: fingerprinted per-prefix certificates.

The refinement loop (paper §4.6) installs and deletes policies for
thousands of iterations; re-running the whole static analyzer each
iteration throws away the "static ms vs simulated seconds" advantage the
lint gate exists for.  This module makes re-certification *incremental*:

* every per-prefix analysis result becomes a :class:`SafetyCertificate`
  whose **fingerprint** is a content hash over exactly the inputs the
  analysis consulted — the prefix's dispute-digraph edges (own plus
  prefix-agnostic local-pref edges), the ordered clause entries of every
  route-map that mentions the prefix (generic clauses included, since
  they shadow), and, for the model-wide certificate, each session's
  endpoints + generic clauses and the relationship edges the Gao-Rexford
  pass reads;
* the :class:`CertificateStore` tracks which routers/sessions each
  certificate's footprint came from.  A policy install/delete marks the
  touched router dirty; re-certification re-extracts only dirty routers'
  edges and map indexes, re-fingerprints only certificates whose
  dependency set intersects the change, and recomputes findings only
  where the fingerprint actually differs.  Everything else is a cache
  hit.

Soundness rests on two properties (DESIGN.md §5i): invalidation may
*over*-approximate (an unchanged fingerprint is always a hit, so spurious
dirtiness costs a hash, never correctness), and findings are produced by
the same per-prefix functions under the same canonical orderings as a
from-scratch pass — so an incremental store and a fresh one are
bit-for-bit identical, which the test suite enforces over random edit
sequences.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.gaorexford import analyze_gao_rexford
from repro.analysis.policy_lint import lint_map
from repro.analysis.safety import (
    PreferenceEdge,
    _local_pref_edges,
    _med_edges,
    local_pref_findings_for_prefix,
    med_findings_for_prefix,
)
from repro.bgp.network import Network
from repro.bgp.policy import Clause, RouteMap
from repro.bgp.router import Router
from repro.bgp.session import Session
from repro.errors import CertificateError
from repro.net.prefix import Prefix
from repro.obs.metrics import get_registry
from repro.relationships.types import RelationshipMap

STORE_FORMAT = "repro/certificate-store/v1"

GLOBAL_KEY = "*"
"""Certificate key for findings not tied to one prefix: generic-clause
policy lint and the Gao-Rexford compliance pass."""


def _edge_token(edge: PreferenceEdge) -> bytes:
    """Deterministic byte encoding of one dispute-digraph edge."""
    return (
        f"{edge.prefix}|{edge.router_id}|{edge.asn}|{edge.neighbor_router_id}"
        f"|{edge.neighbor_asn}|{edge.kind}|{edge.clause}\n"
    ).encode()


def _clause_token(position: int, clause: Clause) -> bytes:
    """Deterministic byte encoding of one route-map clause at a position."""
    match = clause.match
    return (
        f"{position}|{match.prefix}|{match.path_len_lt}|{match.path_len_gt}"
        f"|{match.from_asn}|{match.from_router}|{match.path_contains}"
        f"|{match.path_regex}|{match.community}|{clause.action.value}"
        f"|{clause.set_local_pref}|{clause.set_med}|{clause.prepend}"
        f"|{sorted(clause.add_communities)}|{clause.strip_communities}"
        f"|{clause.tag}\n"
    ).encode()


@dataclass(frozen=True)
class SafetyCertificate:
    """One fingerprinted analysis result: a prefix's (or the model-wide)
    findings plus the content hash of everything they were derived from."""

    key: str
    fingerprint: str
    findings: tuple[Finding, ...]

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable view."""
        return {
            "key": self.key,
            "fingerprint": self.fingerprint,
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, document: dict[str, object]) -> "SafetyCertificate":
        """Invert :meth:`to_dict`."""
        findings = document.get("findings")
        if not isinstance(findings, list):
            raise CertificateError("certificate findings must be a list")
        return cls(
            key=str(document["key"]),
            fingerprint=str(document["fingerprint"]),
            findings=tuple(Finding.from_dict(f) for f in findings),
        )


@dataclass(frozen=True)
class CertifyStats:
    """Accounting of one :meth:`CertificateStore.certify` call."""

    candidates: int
    hits: int
    misses: int
    reused: int
    total: int

    @property
    def invalidated_fraction(self) -> float:
        """Fraction of certificates whose findings were recomputed."""
        return self.misses / self.total if self.total else 0.0


class CertificateStore:
    """Dependency-tracked store of :class:`SafetyCertificate` objects.

    Covers the certifiable pass surface: the dispute-digraph safety pass,
    the per-map policy lint rules, and (when a :class:`RelationshipMap`
    is attached) the Gao-Rexford compliance pass.  Dataset-dependent
    policy rules and the topology pass stay outside the store — their
    inputs (training data, whole-graph reachability) have no small
    per-prefix footprint to fingerprint.
    """

    def __init__(self, relationships: RelationshipMap | None = None) -> None:
        self.relationships = relationships
        self.certificates: dict[str, SafetyCertificate] = {}
        self.last_stats = CertifyStats(0, 0, 0, 0, 0)
        self._prefix_obj: dict[str, Prefix] = {}
        # Per-router dispute-digraph contributions.
        self._router_lp: dict[int, dict[str, list[PreferenceEdge]]] = {}
        self._router_lp_global: dict[int, list[PreferenceEdge]] = {}
        self._router_med: dict[int, dict[str, list[PreferenceEdge]]] = {}
        # Reverse indexes: key -> router ids contributing edges.
        self._lp_by_key: dict[str, set[int]] = {}
        self._med_by_key: dict[str, set[int]] = {}
        # Per-session map state: endpoint+generic signature, per-prefix keys.
        self._session_sig: dict[int, str] = {}
        self._session_prefixes: dict[int, dict[str, str]] = {}
        self._sessions_by_key: dict[str, set[int]] = {}
        self._router_sessions: dict[int, set[int]] = {}
        self._rel_fingerprint: str | None = None
        # Dirtiness.
        self._dirty_all = True
        self._dirty_routers: set[int] = set()
        self._dirty_keys: set[str] = set()
        self._global_lp_changed = False

    # ------------------------------------------------------------------
    # invalidation API (the refinement loop's hooks)

    def invalidate_policy(
        self, router_id: int, prefix: Prefix | None = None
    ) -> None:
        """A route-map on one of ``router_id``'s sessions changed.

        ``prefix`` narrows the certificates considered; ``None`` means the
        change was not prefix-scoped.  Over-approximation is safe: the
        fingerprint arbitrates at certify time.
        """
        self._dirty_routers.add(router_id)
        if prefix is not None:
            self._dirty_keys.add(self._key(prefix))
        get_registry().counter("certify.invalidations").inc()

    def invalidate_router(self, router: Router) -> None:
        """``router`` (or its session set) is new or structurally changed.

        Session peers are dirtied too: a neighbour's MED ranking ranges
        over *all* its inbound sessions, so adding a session (router
        duplication) changes the neighbour's edge extraction as well.
        """
        self._dirty_routers.add(router.router_id)
        for session in list(router.sessions_in) + list(router.sessions_out):
            self._dirty_routers.add(session.src.router_id)
            self._dirty_routers.add(session.dst.router_id)
        get_registry().counter("certify.invalidations").inc()

    def invalidate_all(self) -> None:
        """Drop all tracked dependency state; next certify revalidates
        every certificate's fingerprint (used after a checkpoint restore
        swaps the model out from under the store)."""
        self._dirty_all = True

    # ------------------------------------------------------------------
    # certification

    def certify(self, network: Network) -> AnalysisReport:
        """Bring every certificate up to date with ``network``.

        Returns the assembled report.  Only certificates whose dependency
        set intersects the recorded changes are re-fingerprinted, and
        only fingerprint mismatches recompute findings.
        """
        registry = get_registry()
        with registry.histogram("certify.seconds").time():
            stats = self._certify(network)
        self.last_stats = stats
        registry.counter("certify.hits").inc(stats.hits + stats.reused)
        registry.counter("certify.misses").inc(stats.misses)
        return self.report()

    def _certify(self, network: Network) -> CertifyStats:
        revalidate_all = self._dirty_all
        if revalidate_all:
            self._reset_indexes()
            dirty_routers = set(network.routers)
            global_dirty = True
        else:
            dirty_routers = set(self._dirty_routers)
            global_dirty = False
        candidates = set(self._dirty_keys)

        seen_sessions: set[int] = set()
        for router_id in sorted(dirty_routers):
            router = network.routers.get(router_id)
            candidates |= self._refresh_router(router_id, router)
            changed_keys, generic_changed = self._refresh_router_sessions(
                network, router_id, router, seen_sessions
            )
            candidates |= changed_keys
            global_dirty |= generic_changed

        universe = {GLOBAL_KEY}
        universe.update(self._key(p) for p in network.prefixes())
        universe.update(k for k, v in self._lp_by_key.items() if v)
        universe.update(k for k, v in self._med_by_key.items() if v)
        universe.update(k for k, v in self._sessions_by_key.items() if v)

        if self._global_lp_changed:
            # Prefix-agnostic local-pref edges join every prefix's graph.
            candidates |= universe - {GLOBAL_KEY}
            self._global_lp_changed = False
        if global_dirty:
            candidates.add(GLOBAL_KEY)

        if revalidate_all:
            # Nothing recorded before the reset can be trusted — a key
            # whose dependency set shrank to empty would otherwise never
            # be re-fingerprinted and keep stale findings alive.
            candidates |= universe
        for stale in set(self.certificates) - universe:
            del self.certificates[stale]
        candidates |= universe - set(self.certificates)
        candidates &= universe

        hits = misses = 0
        for key in sorted(candidates):
            fingerprint = self._fingerprint(network, key)
            existing = self.certificates.get(key)
            if existing is not None and existing.fingerprint == fingerprint:
                hits += 1
                continue
            findings = self._compute(network, key)
            self.certificates[key] = SafetyCertificate(
                key=key, fingerprint=fingerprint, findings=tuple(findings)
            )
            misses += 1

        self._dirty_routers.clear()
        self._dirty_keys.clear()
        self._dirty_all = False
        return CertifyStats(
            candidates=len(candidates),
            hits=hits,
            misses=misses,
            reused=len(universe) - len(candidates),
            total=len(universe),
        )

    # ------------------------------------------------------------------
    # dependency extraction

    def _key(self, prefix: Prefix) -> str:
        key = str(prefix)
        self._prefix_obj.setdefault(key, prefix)
        return key

    def _reset_indexes(self) -> None:
        self._prefix_obj.clear()
        self._router_lp.clear()
        self._router_lp_global.clear()
        self._router_med.clear()
        self._lp_by_key.clear()
        self._med_by_key.clear()
        self._session_sig.clear()
        self._session_prefixes.clear()
        self._sessions_by_key.clear()
        self._router_sessions.clear()
        self._dirty_routers.clear()
        self._dirty_keys.clear()
        self._global_lp_changed = False

    def _refresh_router(
        self, router_id: int, router: Router | None
    ) -> set[str]:
        """Re-extract one router's digraph edges; returns changed keys."""
        old_lp = self._router_lp.pop(router_id, {})
        old_global = self._router_lp_global.pop(router_id, [])
        old_med = self._router_med.pop(router_id, {})
        new_lp: dict[str, list[PreferenceEdge]] = {}
        new_global: list[PreferenceEdge] = []
        new_med: dict[str, list[PreferenceEdge]] = {}
        if router is not None:
            for edge in _local_pref_edges(router):
                if edge.prefix is None:
                    new_global.append(edge)
                else:
                    new_lp.setdefault(self._key(edge.prefix), []).append(edge)
            for edge in _med_edges(router):
                if edge.prefix is not None:
                    new_med.setdefault(self._key(edge.prefix), []).append(edge)
            self._router_lp[router_id] = new_lp
            self._router_med[router_id] = new_med
            if new_global:
                self._router_lp_global[router_id] = new_global
        if old_global != new_global:
            self._global_lp_changed = True
        changed: set[str] = set()
        for old, new, index in (
            (old_lp, new_lp, self._lp_by_key),
            (old_med, new_med, self._med_by_key),
        ):
            for key in set(old) | set(new):
                if old.get(key) != new.get(key):
                    changed.add(key)
                if key in new:
                    index.setdefault(key, set()).add(router_id)
                else:
                    index.get(key, set()).discard(router_id)
        return changed

    def _refresh_router_sessions(
        self,
        network: Network,
        router_id: int,
        router: Router | None,
        seen_sessions: set[int],
    ) -> tuple[set[str], bool]:
        """Re-index the maps of every session attached to one router."""
        changed: set[str] = set()
        generic_changed = False
        previous = self._router_sessions.get(router_id, set())
        current: set[int] = set()
        if router is not None:
            for session in list(router.sessions_in) + list(router.sessions_out):
                current.add(session.session_id)
                if session.session_id in seen_sessions:
                    continue
                seen_sessions.add(session.session_id)
                keys, sig_changed = self._refresh_session(session)
                changed |= keys
                generic_changed |= sig_changed
            self._router_sessions[router_id] = current
        else:
            self._router_sessions.pop(router_id, None)
        for session_id in previous - current:
            if session_id not in network.sessions:
                changed |= self._retire_session(session_id)
                generic_changed = True
        return changed, generic_changed

    def _refresh_session(self, session: Session) -> tuple[set[str], bool]:
        """Re-scan one session's maps; returns (changed keys, sig changed)."""
        session_id = session.session_id
        old_keys = self._session_prefixes.get(session_id, {})
        old_sig = self._session_sig.get(session_id)
        key_digests: dict[str, "hashlib._Hash"] = {}
        digest = hashlib.sha256()
        digest.update(
            f"session {session_id} {session.src.router_id}"
            f" AS{session.src.asn} -> {session.dst.router_id}"
            f" AS{session.dst.asn}\n".encode()
        )
        for direction, route_map in (
            ("import", session.import_map),
            ("export", session.export_map),
        ):
            if route_map is None:
                continue
            digest.update(
                f"{direction} default {route_map.default_action.value}\n".encode()
            )
            for position, clause in route_map.entries():
                if clause.match.prefix is None:
                    digest.update(direction.encode())
                    digest.update(_clause_token(position, clause))
                else:
                    # Per-prefix clauses get a per-key digest: editing or
                    # removing one while *another* clause for the same
                    # prefix survives must still flag the key — a bare
                    # key-set diff would miss the content change.
                    key = self._key(clause.match.prefix)
                    key_digest = key_digests.get(key)
                    if key_digest is None:
                        key_digest = key_digests[key] = hashlib.sha256()
                    key_digest.update(direction.encode())
                    key_digest.update(_clause_token(position, clause))
        new_sig = digest.hexdigest()
        keys = {key: d.hexdigest() for key, d in key_digests.items()}
        for key in old_keys.keys() - keys.keys():
            self._sessions_by_key.get(key, set()).discard(session_id)
        for key in keys.keys() - old_keys.keys():
            self._sessions_by_key.setdefault(key, set()).add(session_id)
        self._session_prefixes[session_id] = keys
        self._session_sig[session_id] = new_sig
        changed = {
            key
            for key in old_keys.keys() | keys.keys()
            if old_keys.get(key) != keys.get(key)
        }
        sig_changed = old_sig != new_sig
        if sig_changed:
            # Generic clauses shadow per-prefix ones: every key with a
            # clause in this session's maps may be affected.
            changed |= keys.keys() | old_keys.keys()
        return changed, sig_changed

    def _retire_session(self, session_id: int) -> set[str]:
        """Forget a session that no longer exists in the network."""
        keys = self._session_prefixes.pop(session_id, {})
        self._session_sig.pop(session_id, None)
        for key in keys:
            self._sessions_by_key.get(key, set()).discard(session_id)
        return set(keys)

    # ------------------------------------------------------------------
    # fingerprints and findings

    def _relationship_fingerprint(self) -> str:
        if self._rel_fingerprint is None:
            digest = hashlib.sha256()
            if self.relationships is not None:
                for asn_a, asn_b, relationship in sorted(
                    self.relationships.edges(),
                    key=lambda edge: (edge[0], edge[1]),
                ):
                    digest.update(
                        f"{asn_a}|{asn_b}|{relationship.name}\n".encode()
                    )
            self._rel_fingerprint = digest.hexdigest()
        return self._rel_fingerprint

    def _lp_edges_for(self, key: str) -> list[PreferenceEdge]:
        edges: list[PreferenceEdge] = []
        for router_id in sorted(self._lp_by_key.get(key, ())):
            edges.extend(self._router_lp[router_id][key])
        for router_id in sorted(self._router_lp_global):
            edges.extend(self._router_lp_global[router_id])
        return edges

    def _med_edges_for(self, key: str) -> list[PreferenceEdge]:
        edges: list[PreferenceEdge] = []
        for router_id in sorted(self._med_by_key.get(key, ())):
            edges.extend(self._router_med[router_id][key])
        return edges

    def _key_maps(
        self, network: Network, key: str
    ) -> list[tuple[Session, str, RouteMap]]:
        maps: list[tuple[Session, str, RouteMap]] = []
        for session_id in sorted(self._sessions_by_key.get(key, ())):
            session = network.sessions.get(session_id)
            if session is None:
                continue
            for direction, route_map in (
                ("import", session.import_map),
                ("export", session.export_map),
            ):
                if route_map is not None:
                    maps.append((session, direction, route_map))
        return maps

    def _fingerprint(self, network: Network, key: str) -> str:
        digest = hashlib.sha256()
        if key == GLOBAL_KEY:
            digest.update(b"global\n")
            for session_id in sorted(self._session_sig):
                digest.update(
                    f"{session_id}:{self._session_sig[session_id]}\n".encode()
                )
            digest.update(self._relationship_fingerprint().encode())
            return digest.hexdigest()
        prefix = self._prefix_obj[key]
        digest.update(f"prefix {key}\n".encode())
        digest.update(b"local-pref\n")
        for edge in self._lp_edges_for(key):
            digest.update(_edge_token(edge))
        digest.update(b"med\n")
        for edge in self._med_edges_for(key):
            digest.update(_edge_token(edge))
        digest.update(b"maps\n")
        for session, direction, route_map in self._key_maps(network, key):
            digest.update(
                f"{session.session_id} {direction}"
                f" default {route_map.default_action.value}\n".encode()
            )
            for position, clause in route_map.entries_for_prefix(prefix):
                digest.update(_clause_token(position, clause))
        return digest.hexdigest()

    def _compute(self, network: Network, key: str) -> list[Finding]:
        if key == GLOBAL_KEY:
            findings: list[Finding] = []
            for session_id in sorted(self._session_sig):
                session = network.sessions.get(session_id)
                if session is None:
                    continue
                for direction, route_map in (
                    ("import", session.import_map),
                    ("export", session.export_map),
                ):
                    if route_map is None:
                        continue
                    findings.extend(
                        f
                        for f in lint_map(session, direction, route_map)
                        if f.prefix is None
                    )
            if self.relationships is not None:
                findings.extend(
                    analyze_gao_rexford(network, self.relationships)
                )
            return findings
        prefix = self._prefix_obj[key]
        findings = list(
            local_pref_findings_for_prefix(prefix, self._lp_edges_for(key))
        )
        findings.extend(
            med_findings_for_prefix(prefix, self._med_edges_for(key))
        )
        for session, direction, route_map in self._key_maps(network, key):
            findings.extend(
                f
                for f in lint_map(session, direction, route_map)
                if f.prefix == prefix
            )
        return findings

    # ------------------------------------------------------------------
    # reporting and persistence

    def _ordered_keys(self) -> list[str]:
        prefixed = sorted(
            (k for k in self.certificates if k != GLOBAL_KEY), key=Prefix
        )
        if GLOBAL_KEY in self.certificates:
            prefixed.append(GLOBAL_KEY)
        return prefixed

    def report(self) -> AnalysisReport:
        """Assemble the certified findings into an :class:`AnalysisReport`.

        Deterministic: prefix certificates in prefix order, the
        model-wide certificate last.  Does not recompute anything — call
        :meth:`certify` first if the model changed.
        """
        result = AnalysisReport()
        result.passes = ["safety", "policy"]
        if self.relationships is not None:
            result.passes.append("gao")
        for key in self._ordered_keys():
            result.findings.extend(self.certificates[key].findings)
        return result

    def unsafe_prefixes(self) -> list[Prefix]:
        """Prefixes with an error-level safety certificate (lint-gate set)."""
        return self.report().unsafe_prefixes()

    def store_fingerprint(self) -> str:
        """Content hash over every certificate's (key, fingerprint) pair."""
        digest = hashlib.sha256()
        for key in self._ordered_keys():
            digest.update(
                f"{key}:{self.certificates[key].fingerprint}\n".encode()
            )
        return digest.hexdigest()

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable store document (sorted, deterministic)."""
        return {
            "format": STORE_FORMAT,
            "fingerprint": self.store_fingerprint(),
            "has_relationships": self.relationships is not None,
            "certificates": [
                self.certificates[key].to_dict()
                for key in self._ordered_keys()
            ],
        }

    @classmethod
    def from_dict(
        cls,
        document: dict[str, object],
        relationships: RelationshipMap | None = None,
    ) -> "CertificateStore":
        """Rebuild a store from :meth:`to_dict` output.

        The dependency indexes are not persisted; the loaded store is
        fully dirty, and the first :meth:`certify` call revalidates every
        certificate's fingerprint against the live model — matching
        fingerprints keep their findings without recomputation.
        """
        if document.get("format") != STORE_FORMAT:
            raise CertificateError(
                f"unsupported certificate-store format {document.get('format')!r}"
            )
        certificates = document.get("certificates")
        if not isinstance(certificates, list):
            raise CertificateError("certificate store carries no certificates")
        store = cls(relationships)
        try:
            for entry in certificates:
                certificate = SafetyCertificate.from_dict(entry)
                store.certificates[certificate.key] = certificate
        except (KeyError, ValueError, TypeError) as exc:
            raise CertificateError(
                f"corrupt certificate entry: {exc}"
            ) from exc
        return store

    def save(self, path: str | Path) -> None:
        """Atomically persist the store as JSON."""
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True),
            encoding="ascii",
        )
        os.replace(tmp, target)

    @classmethod
    def load(
        cls,
        path: str | Path,
        relationships: RelationshipMap | None = None,
    ) -> "CertificateStore":
        """Load a persisted store; raises :class:`CertificateError`."""
        try:
            text = Path(path).read_text(encoding="ascii")
        except OSError as exc:
            raise CertificateError(
                f"cannot read certificate store {path}: {exc}"
            ) from exc
        try:
            document = json.loads(text)
        except (ValueError, UnicodeDecodeError) as exc:
            raise CertificateError(
                f"certificate store {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise CertificateError(
                f"certificate store {path} must be a JSON object"
            )
        return cls.from_dict(document, relationships)


def certify_network(
    network: Network, relationships: RelationshipMap | None = None
) -> CertificateStore:
    """Build a fresh store and certify ``network`` from scratch."""
    store = CertificateStore(relationships)
    store.certify(network)
    return store
