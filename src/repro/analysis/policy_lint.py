"""Policy lint: route-map defects detectable without simulation.

Four rules over the installed route-maps:

* ``policy-unsatisfiable-match`` — a clause whose match admits no route
  (contradictory path-length bounds);
* ``policy-shadowed-clause`` — a clause that can never be evaluated
  because an earlier clause's match subsumes its own (first-match-wins);
* ``policy-contradictory-ranking`` — two ranking clauses for the same
  prefix on the same session assign different MED/local-pref values: the
  later one silently loses, which almost always means a stale ranking was
  left behind;
* ``policy-blocking-filter`` — a quasi-router every one of whose inbound
  sessions carries a ``path_len_lt`` export filter denying *every*
  AS-path observed in the training data on that session's AS hop, so the
  quasi-router can never select any observed route for the prefix.  The
  rule is deliberately per-quasi-router, not per-session: the Section 4.6
  refiner legitimately blocks the short path on *one* quasi-router's
  session so that a sibling quasi-router of the same AS carries it;
* ``policy-stale-refine-clause`` — a refinement-tagged clause referencing
  a prefix no dataset origin maps to (left behind by an earlier run over
  different data).

The shadowing helper consults :meth:`RouteMap.entries_for_prefix`, which
merges the exact-prefix clause index with the *generic* clauses — an
earlier ``Match()`` (or any non-exact-prefix match) shadows later
per-prefix clauses even though it never appears in their index bucket.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, RouteMap
from repro.bgp.session import Session
from repro.core.refine import FILTER_TAG, RANK_TAG
from repro.net.prefix import Prefix
from repro.topology.dataset import PathDataset

RULE_UNSATISFIABLE = "policy-unsatisfiable-match"
RULE_SHADOWED = "policy-shadowed-clause"
RULE_CONTRADICTORY = "policy-contradictory-ranking"
RULE_BLOCKING_FILTER = "policy-blocking-filter"
RULE_STALE_REFINE = "policy-stale-refine-clause"

REFINE_TAGS = frozenset({FILTER_TAG, RANK_TAG})

_CLAUSES_PER_FINDING = 12
"""At most this many blocking clauses are named per finding."""


def shadower_of(
    route_map: RouteMap, position: int, clause: Clause
) -> tuple[int, Clause] | None:
    """The first earlier clause whose match subsumes ``clause``'s, if any.

    Looks through the clauses that share ``clause``'s evaluation bucket —
    for an exact-prefix clause that is its prefix bucket *plus* the
    generic clauses (a broad earlier ``Match()`` shadows it just as well);
    for a generic clause the whole map in order.
    """
    if clause.match.prefix is not None:
        candidates = route_map.entries_for_prefix(clause.match.prefix)
    else:
        candidates = route_map.entries()
    for earlier_position, earlier in candidates:
        if earlier_position >= position:
            break
        if earlier.match.subsumes(clause.match):
            return earlier_position, earlier
    return None


def _session_label(session: Session, direction: str) -> str:
    """Human-readable session identifier for findings."""
    return f"AS{session.src.asn}->AS{session.dst.asn} {direction}"


def _ranking(clause: Clause) -> tuple[int | None, int | None]:
    """The (local-pref, MED) values a clause assigns."""
    return (clause.set_local_pref, clause.set_med)


def _session_maps(
    network: Network,
) -> Iterator[tuple[Session, str, RouteMap]]:
    """Yield (session, direction, route_map) for every installed map."""
    for session in network.sessions.values():
        if session.import_map is not None:
            yield session, "import", session.import_map
        if session.export_map is not None:
            yield session, "export", session.export_map


def analyze_policies(
    network: Network,
    dataset: PathDataset | None = None,
    prefix_by_origin: dict[int, Prefix] | None = None,
) -> list[Finding]:
    """Run all policy-lint rules; dataset-dependent rules need ``dataset``."""
    findings: list[Finding] = []
    for session, direction, route_map in _session_maps(network):
        findings.extend(lint_map(session, direction, route_map))
    if dataset is not None:
        if prefix_by_origin is None:
            prefix_by_origin = _derive_origin_prefixes(network)
        findings.extend(
            _blocking_filters(network, dataset, prefix_by_origin)
        )
        findings.extend(_stale_refine_clauses(network, dataset, prefix_by_origin))
    return findings


def lint_map(
    session: Session, direction: str, route_map: RouteMap
) -> list[Finding]:
    """Per-map rules: unsatisfiable, shadowed, contradictory clauses.

    Public because the certificate store re-runs it per map during
    incremental re-certification; findings come out in map-position order,
    which is deterministic for a given map state.
    """
    findings: list[Finding] = []
    label = _session_label(session, direction)
    routers = (session.src.router_id, session.dst.router_id)
    asns = tuple(sorted({session.src.asn, session.dst.asn}))
    for position, clause in route_map.entries():
        if not clause.match.is_satisfiable():
            findings.append(
                Finding(
                    rule=RULE_UNSATISFIABLE,
                    severity=Severity.WARNING,
                    message=(
                        f"{label} clause #{position}"
                        f" [{clause.match.describe()}] can never match a route"
                    ),
                    prefix=clause.match.prefix,
                    asns=asns,
                    routers=routers,
                    clauses=(clause.match.describe(),),
                )
            )
            continue
        shadow = shadower_of(route_map, position, clause)
        if shadow is None:
            continue
        earlier_position, earlier = shadow
        contradictory = (
            direction == "import"
            and clause.action is Action.PERMIT
            and earlier.action is Action.PERMIT
            and _ranking(clause) != (None, None)
            and _ranking(earlier) != (None, None)
            and _ranking(clause) != _ranking(earlier)
        )
        rule = RULE_CONTRADICTORY if contradictory else RULE_SHADOWED
        detail = (
            "assigns a different ranking than"
            if contradictory
            else "is unreachable: it is subsumed by"
        )
        findings.append(
            Finding(
                rule=rule,
                severity=Severity.WARNING,
                message=(
                    f"{label} clause #{position} [{clause.match.describe()}] "
                    f"{detail} earlier clause #{earlier_position}"
                    f" [{earlier.match.describe()}]"
                ),
                prefix=clause.match.prefix,
                asns=asns,
                routers=routers,
                clauses=(clause.match.describe(), earlier.match.describe()),
            )
        )
    return findings


def _derive_origin_prefixes(network: Network) -> dict[int, Prefix]:
    """Recover origin-ASN -> canonical prefix from the encoding (§4.1)."""
    mapping: dict[int, Prefix] = {}
    for prefix in network.prefixes():
        mapping[prefix.network >> 16] = prefix
    return mapping


def _observed_hop_lengths(
    dataset: PathDataset,
) -> dict[tuple[int, int, int], int]:
    """Max announced-path length per (origin, receiver AS, announcer AS) hop.

    When AS ``a`` announces a route to AS ``r`` along an observed path,
    the announced AS-path is the path's suffix starting at ``a``; its
    length is what a ``path_len_lt`` export filter on the ``a -> r``
    session tests.
    """
    lengths: dict[tuple[int, int, int], int] = {}
    for origin, paths in dataset.unique_paths_by_origin().items():
        for path in paths:
            for hop in range(1, len(path)):
                key = (origin, path[hop - 1], path[hop])
                suffix_len = len(path) - hop
                if lengths.get(key, -1) < suffix_len:
                    lengths[key] = suffix_len
    return lengths


def _is_pure_length_filter(clause: Clause) -> bool:
    """True for a deny clause constraining only prefix + path-length."""
    match = clause.match
    return (
        clause.action is Action.DENY
        and match.prefix is not None
        and match.path_len_lt is not None
        and match.path_len_gt is None
        and match.from_asn is None
        and match.from_router is None
        and match.path_contains is None
        and match.path_regex is None
        and match.community is None
    )


def _blocking_filters(
    network: Network,
    dataset: PathDataset,
    prefix_by_origin: dict[int, Prefix],
) -> list[Finding]:
    """Quasi-routers whose filters deny every observed path reaching them.

    For each (quasi-router, prefix), partition the inbound eBGP sessions
    into those an observed training path is announced over (the sessions
    carrying *evidence*) and the rest.  A session's evidence is blocked
    when a reachable pure path-length deny filter's threshold exceeds the
    longest announced path observed on its AS hop.  The finding fires only
    when every evidence-carrying session is blocked: then no observed
    route for the prefix can ever reach the quasi-router, so the filters
    contradict the training data rather than arbitrate between siblings.
    """
    hop_lengths = _observed_hop_lengths(dataset)
    # (receiver AS, announcer AS) -> {prefix: longest announced length}.
    by_hop: dict[tuple[int, int], dict[Prefix, int]] = {}
    for (origin, receiver, announcer), length in hop_lengths.items():
        prefix = prefix_by_origin.get(origin)
        if prefix is not None:
            by_hop.setdefault((receiver, announcer), {})[prefix] = length
    findings: list[Finding] = []
    for router in network.routers.values():
        # Sessions a training path crosses are the ones carrying *evidence*;
        # all others can deliver no observed route whatever the filters say.
        evidence: dict[Prefix, int] = {}
        blocked: dict[Prefix, list[str]] = {}
        blocked_asns: dict[Prefix, set[int]] = {}
        for session in router.sessions_in:
            if not session.is_ebgp:
                continue
            hop_max = by_hop.get((router.asn, session.src.asn))
            if not hop_max:
                continue
            for prefix, observed_max in hop_max.items():
                evidence[prefix] = evidence.get(prefix, 0) + 1
                if session.export_map is None:
                    continue
                for position, clause in session.export_map.entries():
                    if not _is_pure_length_filter(clause):
                        continue
                    if clause.match.prefix != prefix:
                        continue
                    assert clause.match.path_len_lt is not None
                    if clause.match.path_len_lt <= observed_max:
                        continue
                    if shadower_of(session.export_map, position, clause):
                        continue  # an earlier clause decides first
                    blocked.setdefault(prefix, []).append(
                        f"{_session_label(session, 'export')} clause "
                        f"#{position} [{clause.match.describe()}] vs "
                        f"observed length <= {observed_max}"
                    )
                    blocked_asns.setdefault(prefix, set()).add(
                        session.src.asn
                    )
                    break  # one blocking filter per session suffices
        for prefix, clauses in sorted(blocked.items()):
            if len(clauses) < evidence.get(prefix, 0):
                continue  # some evidence-carrying session is unfiltered
            findings.append(
                Finding(
                    rule=RULE_BLOCKING_FILTER,
                    severity=Severity.ERROR,
                    message=(
                        f"every observed training path for {prefix} is "
                        f"denied on its way into quasi-router {router.name}: "
                        f"path-length filters on all {len(clauses)} "
                        "evidence-carrying session(s) exceed the longest "
                        "observed announcement, so the quasi-router can "
                        "never select an observed route"
                    ),
                    prefix=prefix,
                    asns=tuple(
                        sorted(blocked_asns.get(prefix, set()) | {router.asn})
                    ),
                    routers=(router.router_id,),
                    clauses=tuple(clauses[:_CLAUSES_PER_FINDING]),
                    omitted_count=max(0, len(clauses) - _CLAUSES_PER_FINDING),
                )
            )
    return findings


def _stale_refine_clauses(
    network: Network,
    dataset: PathDataset,
    prefix_by_origin: dict[int, Prefix],
) -> list[Finding]:
    """Refine-tagged clauses whose prefix no dataset origin maps to."""
    valid = {
        prefix_by_origin[origin]
        for origin in dataset.origin_asns()
        if origin in prefix_by_origin
    }
    findings: list[Finding] = []
    for session, direction, route_map in _session_maps(network):
        for position, clause in route_map.entries():
            if clause.tag not in REFINE_TAGS:
                continue
            prefix = clause.match.prefix
            if prefix is None or prefix in valid:
                continue
            findings.append(
                Finding(
                    rule=RULE_STALE_REFINE,
                    severity=Severity.WARNING,
                    message=(
                        f"{_session_label(session, direction)} clause "
                        f"#{position} carries refinement tag "
                        f"{clause.tag!r} for {prefix}, which no origin in "
                        "the dataset maps to; it is left over from other "
                        "training data"
                    ),
                    prefix=prefix,
                    asns=tuple(sorted({session.src.asn, session.dst.asn})),
                    routers=(session.src.router_id, session.dst.router_id),
                    clauses=(clause.match.describe(),),
                )
            )
    return findings
