"""Findings and reports produced by the static model analyzer.

A :class:`Finding` is one defect located in the model: a rule identifier,
a severity, a human-readable message and enough structured context
(prefix, ASes, quasi-routers, clause descriptions) that callers — the
``repro lint`` CLI, the refinement lint gate, the RunHealth report — can
act on it without parsing the message.  An :class:`AnalysisReport`
aggregates the findings of one analyzer run.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.net.prefix import Prefix


class Severity(enum.IntEnum):
    """How bad a finding is; ordering allows threshold comparisons."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One statically-detected defect in the model.

    ``omitted_count`` records how many participating items (clauses, ASNs)
    the finding dropped to stay readable; zero means the structured
    context is complete.
    """

    rule: str
    severity: Severity
    message: str
    prefix: Prefix | None = None
    asns: tuple[int, ...] = ()
    routers: tuple[int, ...] = ()
    clauses: tuple[str, ...] = ()
    omitted_count: int = 0

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable view."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "prefix": str(self.prefix) if self.prefix is not None else None,
            "asns": list(self.asns),
            "routers": [f"{r:#010x}" for r in self.routers],
            "clauses": list(self.clauses),
            "omitted_count": self.omitted_count,
        }

    @classmethod
    def from_dict(cls, document: dict[str, object]) -> "Finding":
        """Invert :meth:`to_dict` (used by persisted certificate stores)."""
        severity_name = str(document["severity"]).upper()
        prefix_text = document.get("prefix")
        routers = document.get("routers") or []
        if not isinstance(routers, list):
            raise ValueError("finding routers must be a list")
        asns = document.get("asns") or []
        if not isinstance(asns, list):
            raise ValueError("finding asns must be a list")
        clauses = document.get("clauses") or []
        if not isinstance(clauses, list):
            raise ValueError("finding clauses must be a list")
        return cls(
            rule=str(document["rule"]),
            severity=Severity[severity_name],
            message=str(document["message"]),
            prefix=Prefix(str(prefix_text)) if prefix_text is not None else None,
            asns=tuple(int(a) for a in asns),
            routers=tuple(int(str(r), 16) for r in routers),
            clauses=tuple(str(c) for c in clauses),
            omitted_count=int(str(document.get("omitted_count", 0))),
        )

    def render(self) -> str:
        """One-line text form for CLI output."""
        scope = f" [{self.prefix}]" if self.prefix is not None else ""
        line = f"{str(self.severity):<7} {self.rule}{scope}: {self.message}"
        if self.omitted_count:
            line += f" (+{self.omitted_count} more not shown)"
        return line


@dataclass
class AnalysisReport:
    """All findings of one static-analyzer run plus pass bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    passes: list[str] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        """Record one finding."""
        self.findings.append(finding)

    def extend(self, findings: list[Finding], pass_name: str | None = None) -> None:
        """Fold a pass's findings in, noting the pass ran."""
        if pass_name is not None and pass_name not in self.passes:
            self.passes.append(pass_name)
        self.findings.extend(findings)

    def by_severity(self, severity: Severity) -> list[Finding]:
        """Findings at exactly ``severity``."""
        return [f for f in self.findings if f.severity is severity]

    def by_rule(self, rule: str) -> list[Finding]:
        """Findings raised by one rule."""
        return [f for f in self.findings if f.rule == rule]

    @property
    def errors(self) -> list[Finding]:
        """The error-level findings."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Finding]:
        """The warning-level findings."""
        return self.by_severity(Severity.WARNING)

    def unsafe_prefixes(self) -> list[Prefix]:
        """Prefixes named by error-level *safety* findings, sorted.

        These are the prefixes the lint gate routes straight to quarantine:
        simulating them would burn the retry budget without converging.
        """
        unsafe = {
            f.prefix
            for f in self.findings
            if f.severity is Severity.ERROR
            and f.rule.startswith("safety")
            and f.prefix is not None
        }
        return sorted(unsafe)

    def counts(self) -> dict[str, int]:
        """Finding counts per severity name."""
        result = {str(severity): 0 for severity in Severity}
        for finding in self.findings:
            result[str(finding.severity)] += 1
        return result

    @property
    def exit_code(self) -> int:
        """Process exit code for ``repro lint``: nonzero iff errors exist."""
        return 1 if self.errors else 0

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable report."""
        return {
            "passes": list(self.passes),
            "counts": self.counts(),
            "unsafe_prefixes": [str(p) for p in self.unsafe_prefixes()],
            "findings": [f.to_dict() for f in self.findings],
            "exit_code": self.exit_code,
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, max_findings: int | None = None) -> str:
        """Multi-line text report, most severe findings first."""
        ordered = sorted(
            self.findings, key=lambda f: (-int(f.severity), f.rule, str(f.prefix))
        )
        shown = ordered if max_findings is None else ordered[:max_findings]
        lines = [finding.render() for finding in shown]
        if max_findings is not None and len(ordered) > max_findings:
            lines.append(f"... {len(ordered) - max_findings} more findings omitted")
        counts = self.counts()
        lines.append(
            f"lint: {counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} notes ({', '.join(self.passes) or 'no passes'})"
        )
        return "\n".join(lines)
