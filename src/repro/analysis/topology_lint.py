"""Topology lint: structural model defects detectable without simulation.

Four rules over the quasi-router topology:

* ``topo-isolated-router`` — a quasi-router with no sessions at all; it
  can neither learn nor propagate routes, so it is dead weight (typically
  left behind by session flaps or aggressive pruning);
* ``topo-redundant-quasi-router`` — two quasi-routers of the same AS with
  identical neighbours, originations and per-session policies; they
  select identical routes, so one of them is a merge candidate — directly
  relevant to the paper's quasi-router-count model-size metric (Fig. 8);
* ``topo-unreachable-as`` — an AS with no AS-level path to any
  observation point; no route it originates can ever be observed, so the
  training data can neither constrain nor validate it;
* ``topo-provider-cycle`` — ASes forming a cycle in the provider-customer
  hierarchy of an ingested :class:`RelationshipMap`.  Gao-Rexford routing
  assumes that hierarchy is a DAG; a cycle (which real CAIDA as-rel
  snapshots occasionally contain) makes valley-free stability arguments
  inapplicable to every AS on it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.analysis.findings import Finding, Severity
from repro.bgp.network import Network
from repro.bgp.policy import Clause, RouteMap
from repro.bgp.router import Router
from repro.relationships.types import Relationship, RelationshipMap

RULE_ISOLATED = "topo-isolated-router"
RULE_REDUNDANT = "topo-redundant-quasi-router"
RULE_UNREACHABLE = "topo-unreachable-as"
RULE_PROVIDER_CYCLE = "topo-provider-cycle"

_ASNS_PER_FINDING = 25
"""At most this many unreachable ASes are named in one finding."""


def _clause_signature(clause: Clause) -> tuple[Any, ...]:
    """Hashable identity of one clause's behaviour."""
    return (
        clause.match,
        clause.action,
        clause.set_local_pref,
        clause.set_med,
        clause.prepend,
        clause.add_communities,
        clause.strip_communities,
        clause.tag,
    )


def _map_signature(route_map: RouteMap | None) -> tuple[Any, ...]:
    """Hashable identity of a route-map (clause order matters)."""
    if route_map is None or not route_map:
        return ()
    return (
        route_map.default_action,
        tuple(_clause_signature(clause) for clause in route_map.clauses()),
    )


def _router_signature(router: Router) -> tuple[Any, ...]:
    """Hashable identity of a quasi-router's wiring, policies and origins."""
    inbound = frozenset(
        (s.src.router_id, _map_signature(s.import_map), _map_signature(s.export_map))
        for s in router.sessions_in
    )
    outbound = frozenset(
        (s.dst.router_id, _map_signature(s.import_map), _map_signature(s.export_map))
        for s in router.sessions_out
    )
    return (inbound, outbound, frozenset(router.local_routes))


def analyze_topology(
    network: Network,
    observer_asns: set[int] | None = None,
    relationships: RelationshipMap | None = None,
) -> list[Finding]:
    """Run all topology-lint rules.

    Reachability needs ``observer_asns``; the provider-cycle rule needs
    the ingested ``relationships`` map.
    """
    findings: list[Finding] = []
    findings.extend(_isolated_routers(network))
    findings.extend(_redundant_quasi_routers(network))
    if observer_asns:
        findings.extend(_unreachable_ases(network, observer_asns))
    if relationships is not None:
        findings.extend(provider_cycle_findings(relationships))
    return findings


def provider_customer_cycles(
    relationships: RelationshipMap,
) -> list[list[int]]:
    """Cycles in the customer -> provider digraph, each as a sorted ASN list.

    An edge ``c -> p`` means ``c`` buys transit from ``p``.  Gao-Rexford
    stability proofs require this digraph to be acyclic; any strongly
    connected component of two or more ASes is a hierarchy cycle.
    """
    from repro.analysis.safety import strongly_connected_components

    graph: dict[int, set[int]] = {}
    for asn_a, asn_b, relationship in relationships.edges():
        if relationship is Relationship.CUSTOMER:
            customer, provider = asn_b, asn_a
        elif relationship is Relationship.PROVIDER:
            customer, provider = asn_a, asn_b
        else:
            continue
        graph.setdefault(customer, set()).add(provider)
        graph.setdefault(provider, set())
    return [
        sorted(component)
        for component in strongly_connected_components(graph)
        if len(component) >= 2
    ]


def provider_cycle_findings(relationships: RelationshipMap) -> list[Finding]:
    """One error finding per provider-customer hierarchy cycle."""
    findings: list[Finding] = []
    for cycle in sorted(provider_customer_cycles(relationships)):
        shown = ", ".join(f"AS{asn}" for asn in cycle[:_ASNS_PER_FINDING])
        suffix = "" if len(cycle) <= _ASNS_PER_FINDING else ", ..."
        findings.append(
            Finding(
                rule=RULE_PROVIDER_CYCLE,
                severity=Severity.ERROR,
                message=(
                    f"provider-customer cycle among {len(cycle)} ASes: "
                    f"{shown}{suffix}; each buys transit that ultimately "
                    "depends on itself, so Gao-Rexford valley-free "
                    "stability does not hold for them"
                ),
                asns=tuple(cycle[:_ASNS_PER_FINDING]),
                omitted_count=max(0, len(cycle) - _ASNS_PER_FINDING),
            )
        )
    return findings


def _isolated_routers(network: Network) -> list[Finding]:
    """Quasi-routers with no sessions in either direction."""
    findings: list[Finding] = []
    for router in network.routers.values():
        if router.sessions_in or router.sessions_out:
            continue
        findings.append(
            Finding(
                rule=RULE_ISOLATED,
                severity=Severity.WARNING,
                message=(
                    f"quasi-router {router.name} has no sessions; it can "
                    "neither learn nor announce any route"
                ),
                asns=(router.asn,),
                routers=(router.router_id,),
            )
        )
    return findings


def _redundant_quasi_routers(network: Network) -> list[Finding]:
    """Same-AS quasi-routers with identical wiring, policies and origins."""
    findings: list[Finding] = []
    for node in network.ases.values():
        if len(node.routers) < 2:
            continue
        groups: dict[tuple[Any, ...], list[Router]] = defaultdict(list)
        for router in node.routers:
            groups[_router_signature(router)].append(router)
        for routers in groups.values():
            if len(routers) < 2:
                continue
            names = ", ".join(router.name for router in routers)
            findings.append(
                Finding(
                    rule=RULE_REDUNDANT,
                    severity=Severity.INFO,
                    message=(
                        f"AS{node.asn} quasi-routers {names} have identical "
                        "sessions, policies and originations; they are merge "
                        "candidates (inflated quasi-router count)"
                    ),
                    asns=(node.asn,),
                    routers=tuple(sorted(r.router_id for r in routers)),
                )
            )
    return findings


def _unreachable_ases(
    network: Network, observer_asns: set[int]
) -> list[Finding]:
    """ASes with no AS-level path to any observation point."""
    adjacency: dict[int, set[int]] = {asn: set() for asn in network.ases}
    for a, b in network.as_adjacencies():
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    seen = {asn for asn in observer_asns if asn in adjacency}
    frontier = list(seen)
    while frontier:
        asn = frontier.pop()
        for neighbor in adjacency.get(asn, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    unreachable = sorted(set(network.ases) - seen)
    if not unreachable:
        return []
    shown = ", ".join(f"AS{asn}" for asn in unreachable[:_ASNS_PER_FINDING])
    suffix = "" if len(unreachable) <= _ASNS_PER_FINDING else ", ..."
    return [
        Finding(
            rule=RULE_UNREACHABLE,
            severity=Severity.WARNING,
            message=(
                f"{len(unreachable)} AS(es) unreachable from every "
                f"observation point: {shown}{suffix}; their routes can "
                "never be observed or validated"
            ),
            asns=tuple(unreachable[:_ASNS_PER_FINDING]),
            omitted_count=max(0, len(unreachable) - _ASNS_PER_FINDING),
        )
    ]
