"""Data-plane forwarding over a converged control plane.

The BGP engine computes what routers *know*; this package computes where
packets actually *go*: hop-by-hop forwarding from any router towards any
prefix, following each traversed router's own best route (iBGP-learned
routes are carried across the AS along IGP shortest paths to the egress
border router).  This is the substrate for traceroute-style validation —
e.g. checking that the AS-level path a packet takes agrees with the
AS-path the source router selected, and detecting forwarding deflections
and loops.
"""

from repro.forwarding.trace import (
    ForwardingStatus,
    ForwardingTrace,
    forward_as_path,
    traceroute,
)
from repro.forwarding.fib import Fib, build_fibs, traceroute_address

__all__ = [
    "ForwardingStatus",
    "ForwardingTrace",
    "forward_as_path",
    "traceroute",
    "Fib",
    "build_fibs",
    "traceroute_address",
]
