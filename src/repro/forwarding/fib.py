"""Forwarding information bases: longest-prefix-match per router.

The control plane works per prefix; the data plane forwards *addresses*.
A :class:`Fib` snapshots one router's Loc-RIB into a radix trie so that an
arbitrary IPv4 address resolves — per hop — to the longest matching
route.  :func:`traceroute_address` runs the hop-by-hop forwarding of
:mod:`repro.forwarding.trace` but with per-hop LPM resolution, which is
what real routers do and what makes more-specific-prefix hijack or
aggregation scenarios expressible.
"""

from __future__ import annotations

from repro.bgp.attributes import RouteSource
from repro.bgp.network import Network
from repro.bgp.route import Route
from repro.bgp.router import Router
from repro.forwarding.trace import MAX_HOPS, ForwardingStatus, ForwardingTrace
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


class Fib:
    """One router's forwarding table (an LPM view of its Loc-RIB)."""

    def __init__(self, router: Router):
        self.router = router
        self._trie: PrefixTrie[Route] = PrefixTrie()
        for prefix, route in router.loc_rib.items():
            self._trie.insert(prefix, route)
        for prefix, route in router.local_routes.items():
            # local routes win over anything learned for the same prefix
            self._trie.insert(prefix, route)

    def lookup(self, address: int) -> tuple[Prefix, Route] | None:
        """Longest-prefix match for ``address``."""
        return self._trie.longest_match(address)

    def __len__(self) -> int:
        return len(self._trie)


def build_fibs(network: Network) -> dict[int, Fib]:
    """Snapshot every router's FIB (after the control plane converged)."""
    return {router_id: Fib(router) for router_id, router in network.routers.items()}


def traceroute_address(
    network: Network,
    source: Router,
    address: int,
    fibs: dict[int, Fib] | None = None,
) -> ForwardingTrace:
    """Forward a packet addressed to ``address`` hop by hop via per-hop LPM.

    ``fibs`` may be passed to amortise FIB construction over many traces;
    otherwise per-hop FIBs are built on the fly.
    """
    trace = ForwardingTrace(
        prefix=Prefix(address, 32), status=ForwardingStatus.UNREACHABLE
    )
    visited: set[int] = set()
    current = source
    while len(trace.hops) < MAX_HOPS:
        if current.router_id in visited:
            trace.status = ForwardingStatus.LOOP
            return trace
        visited.add(current.router_id)
        trace.hops.append(current.router_id)

        fib = fibs.get(current.router_id) if fibs is not None else Fib(current)
        entry = fib.lookup(address) if fib is not None else None
        if entry is None:
            trace.status = ForwardingStatus.UNREACHABLE
            return trace
        _prefix, route = entry
        if route.source is RouteSource.LOCAL:
            trace.status = ForwardingStatus.DELIVERED
            return trace
        if route.source is RouteSource.EBGP:
            current = network.routers[route.peer_router]
            continue
        igp = network.ases[current.asn].igp
        path = igp.shortest_path(current.router_id, route.next_hop)
        if path is None or len(path) < 2:
            trace.status = ForwardingStatus.BROKEN_IGP
            return trace
        current = network.routers[path[1]]
    trace.status = ForwardingStatus.LOOP
    return trace
