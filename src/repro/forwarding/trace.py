"""Hop-by-hop packet forwarding (traceroute simulation).

Forwarding semantics:

* at a router that originates the prefix (or whose best route is local),
  the packet is delivered;
* a router whose best route was learned over eBGP hands the packet to the
  announcing external peer router;
* a router whose best route was learned over iBGP carries the packet along
  the IGP shortest path towards the route's NEXT_HOP (the egress border
  router, thanks to next-hop-self); every intermediate router consults its
  *own* best route, so hot-potato deflections are faithfully modelled;
* a router with no route drops the packet (UNREACHABLE); revisiting a
  router is reported as LOOP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bgp.attributes import RouteSource
from repro.bgp.network import Network
from repro.bgp.router import Router
from repro.net.prefix import Prefix


class ForwardingStatus(enum.Enum):
    """Terminal state of a forwarding trace."""

    DELIVERED = "delivered"
    UNREACHABLE = "unreachable"
    LOOP = "loop"
    BROKEN_IGP = "broken-igp"


@dataclass
class ForwardingTrace:
    """The router-level path a packet took."""

    prefix: Prefix
    status: ForwardingStatus
    hops: list[int] = field(default_factory=list)
    """Router ids in traversal order, source first."""

    def as_path(self, network: Network) -> tuple[int, ...]:
        """The AS-level path (consecutive duplicates collapsed)."""
        result: list[int] = []
        for router_id in self.hops:
            asn = network.routers[router_id].asn
            if not result or result[-1] != asn:
                result.append(asn)
        return tuple(result)

    @property
    def delivered(self) -> bool:
        """True if the packet reached an originating router."""
        return self.status is ForwardingStatus.DELIVERED


MAX_HOPS = 256


def traceroute(network: Network, source: Router, prefix: Prefix) -> ForwardingTrace:
    """Forward a packet from ``source`` towards ``prefix``.

    The control plane must already be converged (run the engine first).
    """
    trace = ForwardingTrace(prefix=prefix, status=ForwardingStatus.UNREACHABLE)
    visited: set[int] = set()
    current = source
    while len(trace.hops) < MAX_HOPS:
        if current.router_id in visited:
            trace.status = ForwardingStatus.LOOP
            return trace
        visited.add(current.router_id)
        trace.hops.append(current.router_id)

        best = current.best(prefix)
        if best is None:
            trace.status = ForwardingStatus.UNREACHABLE
            return trace
        if best.source is RouteSource.LOCAL:
            trace.status = ForwardingStatus.DELIVERED
            return trace
        if best.source is RouteSource.EBGP:
            current = network.routers[best.peer_router]
            continue
        # iBGP: traverse the IGP towards the egress border router.  Each
        # intermediate hop re-consults its own Loc-RIB (deflections), so we
        # only step to the IGP next hop rather than jumping to the egress.
        igp = network.ases[current.asn].igp
        path = igp.shortest_path(current.router_id, best.next_hop)
        if path is None or len(path) < 2:
            trace.status = ForwardingStatus.BROKEN_IGP
            return trace
        current = network.routers[path[1]]
    trace.status = ForwardingStatus.LOOP
    return trace


def forward_as_path(
    network: Network, source: Router, prefix: Prefix
) -> tuple[int, ...] | None:
    """The AS-level data-plane path from ``source`` to ``prefix``.

    Returns None when the packet is not delivered.  With a consistent
    control plane (full-mesh iBGP + next-hop-self, as both our substrate
    and the quasi-router model use) this equals the control-plane choice;
    discrepancies indicate deflection, which callers can assert against.
    """
    trace = traceroute(network, source, prefix)
    if not trace.delivered:
        return None
    return trace.as_path(network)
