"""Exception hierarchy for the repro library.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library errors without
accidentally swallowing programming mistakes such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError, ValueError):
    """Raised when textual input (addresses, paths, dumps, configs) is malformed."""


class TopologyError(ReproError):
    """Raised for inconsistent topology operations (unknown AS, duplicate session, ...)."""


class SimulationError(ReproError):
    """Raised when a BGP simulation cannot proceed (non-convergence, bad state)."""


class RefinementError(ReproError):
    """Raised when the iterative refinement heuristic cannot make progress."""


class DatasetError(ReproError):
    """Raised for inconsistent observed-path datasets (empty training set, ...)."""
