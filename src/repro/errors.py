"""Exception hierarchy for the repro library.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library errors without
accidentally swallowing programming mistakes such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError, ValueError):
    """Raised when textual input (addresses, paths, dumps, configs) is malformed."""


class TopologyError(ReproError):
    """Raised for inconsistent topology operations (unknown AS, duplicate session, ...)."""


class SimulationError(ReproError):
    """Raised when a BGP simulation cannot proceed (non-convergence, bad state)."""


class ConvergenceError(SimulationError):
    """A per-prefix simulation exhausted its message budget.

    Carries structured context so retry logic and health reports can act
    on it without parsing the message string.

    Attributes:
        prefix: the prefix whose simulation did not converge.
        messages_used: messages processed before giving up.
        budget: the ``max_messages`` budget that was exceeded.
    """

    def __init__(self, prefix, messages_used: int, budget: int):
        super().__init__(
            f"BGP did not converge for {prefix} after {messages_used} messages "
            f"(budget {budget}); the configured policies likely form a dispute wheel"
        )
        self.prefix = prefix
        self.messages_used = messages_used
        self.budget = budget


class ModelError(ReproError):
    """Raised when a model query cannot be answered from the model's state.

    Distinct from :class:`TopologyError` (the topology itself is fine):
    the caller asked a question — e.g. predicted paths for an origin whose
    prefix was never simulated — that the current routing state cannot
    answer truthfully.  Returning an empty answer instead would be
    silently wrong, which is exactly what this error exists to prevent.
    """


class ArtifactError(ReproError):
    """Raised when a prediction artifact is unreadable, corrupt, or stale.

    Covers every way a compiled artifact can fail to load: bad magic,
    truncated payload, checksum mismatch, and a schema version this build
    does not understand.  The message always names the failure so a stale
    artifact is rejected loudly instead of serving garbage answers.
    """


class CertificateError(ReproError):
    """Raised when a persisted certificate store is unreadable or incompatible.

    A corrupt or stale store is never silently ignored at the API level:
    the caller decides whether to fall back to a from-scratch
    certification (the refiner does) or to surface the failure.
    """


class CheckpointError(ReproError):
    """Raised when a refinement checkpoint is missing, corrupt, or incompatible."""


class RefinementError(ReproError):
    """Raised when the iterative refinement heuristic cannot make progress."""


class DatasetError(ReproError):
    """Raised for inconsistent observed-path datasets (empty training set, ...)."""


class IngestError(DatasetError):
    """An ingestion run failed a quality gate and was aborted.

    Raised by :mod:`repro.data.ingest` when a feed turns out to be
    mostly garbage (the malformed-fraction gate) or turns to garbage
    mid-file (the malformed-burst circuit breaker).  Carries the partial
    :class:`~repro.data.quality.IngestReport` accumulated so far, so the
    caller can still render exact per-reason accounting of what was
    seen before the abort.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ShutdownRequested(ReproError):
    """A SIGINT/SIGTERM reached the parallel supervisor mid-run.

    Raised after the graceful drain: in-flight work was given a bounded
    grace period, completed results were merged, and workers were torn
    down.  Carries everything the caller needs to exit cleanly:

    Attributes:
        signum: the signal number that triggered the drain.
        stats: the partial :class:`~repro.resilience.retry.ResilienceStats`
            covering every prefix that finished before the drain.
        pending: prefixes that were still queued or in flight, in sorted
            order — the work a resumed run must redo.
    """

    def __init__(self, signum: int, stats=None, pending=None):
        pending = list(pending or [])
        super().__init__(
            f"shutdown requested (signal {signum}); "
            f"{len(pending)} prefix(es) left unsimulated"
        )
        self.signum = signum
        self.stats = stats
        self.pending = pending
