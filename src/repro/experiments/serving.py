"""Serving-throughput study (``BENCH_serve.json``).

The compile/serve split only earns its keep if artifact-backed answers
are much cheaper than live simulation: this experiment compiles the
workload's refined model into a :class:`~repro.serve.artifact.PredictionArtifact`,
round-trips it through disk, and measures query throughput and latency
percentiles through the :class:`~repro.serve.engine.QueryEngine` in two
regimes —

* **cold**: every query misses the LRU (a fresh engine answers each
  (origin, observer) pair exactly once), and
* **warm**: the same query mix repeated until the cache absorbs it.

Correctness rides along: every artifact answer is compared against the
live :func:`~repro.core.predict.predict_paths` path for the sampled
pairs, so the recorded throughput is the throughput of *right* answers.
"""

from __future__ import annotations

import time

from repro.core.predict import predict_paths
from repro.experiments import models
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload
from repro.serve import PredictionArtifact, QueryEngine, compile_artifact


def _percentiles(samples: list[float]) -> tuple[float, float, float]:
    """Nearest-rank p50/p95/p99 of one latency sample set, in seconds."""
    ordered = sorted(samples)

    def rank(p: float) -> float:
        index = min(len(ordered) - 1, max(0, round(p * len(ordered)) - 1))
        return ordered[index]

    return rank(0.50), rank(0.95), rank(0.99)


def _timed_queries(engine: QueryEngine, pairs) -> tuple[float, list[float]]:
    """Run ``paths`` for every pair; returns (wall seconds, latencies)."""
    latencies = []
    started = time.perf_counter()
    for origin, observer in pairs:
        begin = time.perf_counter()
        engine.paths(origin, observer)
        latencies.append(time.perf_counter() - begin)
    return time.perf_counter() - started, latencies


def run(
    prepared: PreparedWorkload,
    warm_rounds: int = 20,
    artifact_path=None,
) -> ExperimentResult:
    """Compile the workload's model and measure serving throughput.

    ``warm_rounds`` controls how many times the query mix repeats in the
    warm regime.  ``artifact_path`` (optional) makes the disk round-trip
    land somewhere inspectable instead of a temp directory.
    """
    result = ExperimentResult(
        experiment_id="SERVE",
        title="Prediction-serving throughput: compiled artifact + LRU cache",
        headers=["regime", "queries", "seconds", "qps", "p50", "p95", "p99"],
    )
    model, _ = models.refined_model(prepared)

    started = time.perf_counter()
    artifact, report = compile_artifact(model)
    compile_seconds = time.perf_counter() - started
    result.metrics["compile_seconds"] = compile_seconds
    result.metrics["pairs"] = float(report.pairs)

    if artifact_path is None:
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "serve.artifact"
            size = artifact.save(path)
            loaded = PredictionArtifact.load(path)
    else:
        size = artifact.save(artifact_path)
        loaded = PredictionArtifact.load(artifact_path)
    result.metrics["artifact_bytes"] = float(size)

    # The query mix: every (origin, observer) pair with at least one
    # predicted path, visited in deterministic order.
    pairs = sorted(loaded.paths)
    if not pairs:
        raise AssertionError("artifact holds no answerable pairs")

    # Correctness gate on a deterministic sample before any timing.
    for origin, observer in pairs[:: max(1, len(pairs) // 50)]:
        live = predict_paths(model, origin, observer)
        frozen = set(loaded.paths[(origin, observer)])
        if frozen != live:
            raise AssertionError(
                f"artifact disagrees with live prediction for "
                f"({origin}, {observer})"
            )

    cold_engine = QueryEngine(loaded, cache_size=len(pairs) + 1)
    cold_seconds, cold_latencies = _timed_queries(cold_engine, pairs)
    cold_qps = len(pairs) / cold_seconds if cold_seconds else float("inf")
    p50, p95, p99 = _percentiles(cold_latencies)
    result.add_row(
        "cold (all misses)", len(pairs), f"{cold_seconds:.3f}s",
        f"{cold_qps:,.0f}", f"{p50 * 1e6:.0f}us", f"{p95 * 1e6:.0f}us",
        f"{p99 * 1e6:.0f}us",
    )
    result.metrics["qps_cold"] = cold_qps
    result.metrics["p50_cold_seconds"] = p50
    result.metrics["p95_cold_seconds"] = p95
    result.metrics["p99_cold_seconds"] = p99

    warm_engine = QueryEngine(loaded, cache_size=len(pairs) + 1)
    _timed_queries(warm_engine, pairs)  # populate the LRU
    populated = warm_engine.cache_stats()
    warm_total, warm_latencies = 0.0, []
    for _ in range(warm_rounds):
        seconds, latencies = _timed_queries(warm_engine, pairs)
        warm_total += seconds
        warm_latencies.extend(latencies)
    warm_queries = len(pairs) * warm_rounds
    warm_qps = warm_queries / warm_total if warm_total else float("inf")
    p50, p95, p99 = _percentiles(warm_latencies)
    result.add_row(
        "warm (LRU hits)", warm_queries, f"{warm_total:.3f}s",
        f"{warm_qps:,.0f}", f"{p50 * 1e6:.0f}us", f"{p95 * 1e6:.0f}us",
        f"{p99 * 1e6:.0f}us",
    )
    result.metrics["qps_warm"] = warm_qps
    result.metrics["p50_warm_seconds"] = p50
    result.metrics["p95_warm_seconds"] = p95
    result.metrics["p99_warm_seconds"] = p99

    hit_stats = warm_engine.cache_stats()
    timed_queries = hit_stats["queries"] - populated["queries"]
    result.metrics["warm_hit_rate"] = (
        (hit_stats["hits"] - populated["hits"]) / timed_queries
        if timed_queries else 0.0
    )
    result.note(
        f"compiled {report.pairs} pairs in {compile_seconds:.1f}s "
        f"({size} bytes on disk); artifact answers verified against live "
        "prediction on a deterministic sample before timing"
    )
    result.note(
        "cold = fresh engine, every query a cache miss; warm = same mix "
        f"repeated {warm_rounds}x against a populated LRU"
    )
    return result
