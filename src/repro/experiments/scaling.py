"""Scaling study (Section 4.1's C-BGP cost note).

The paper reports that C-BGP simulates one prefix over ~16,500 routers in
14,500 ASes in 2-45 minutes with 0.2-2 GB of memory.  This experiment
measures our engine's cost as the synthetic Internet grows, reporting
per-prefix message counts and wall-clock time so the (near-linear in
sessions) scaling trend is visible.
"""

from __future__ import annotations

import time

from repro.bgp.engine import simulate
from repro.data.synthesis import synthesize_internet
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import Workload, DEFAULT


def run(
    base: Workload = DEFAULT,
    factors: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> ExperimentResult:
    """Simulate ground truth at several scales and record engine cost."""
    result = ExperimentResult(
        experiment_id="SCAL",
        title="Engine cost vs. topology scale (ground-truth simulation)",
        headers=[
            "scale",
            "ASes",
            "routers",
            "sessions",
            "prefixes",
            "messages",
            "msgs/prefix",
            "seconds",
        ],
    )
    for factor in factors:
        workload = base.scaled(factor)
        internet = synthesize_internet(workload.config)
        stats_before = internet.network.stats()
        started = time.perf_counter()
        stats = simulate(internet.network)
        elapsed = time.perf_counter() - started
        result.add_row(
            f"x{factor}",
            stats_before["ases"],
            stats_before["routers"],
            stats_before["sessions"],
            stats_before["prefixes"],
            stats.messages,
            round(stats.messages / max(stats.prefixes, 1)),
            f"{elapsed:.2f}s",
        )
        result.metrics[f"seconds_x{factor}"] = elapsed
        result.metrics[f"messages_x{factor}"] = float(stats.messages)
    result.note(
        "paper: C-BGP needs 2-45 min / 0.2-2 GB per prefix at 16.5k routers; "
        "message count per prefix grows roughly linearly with session count"
    )
    return result
