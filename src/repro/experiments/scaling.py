"""Scaling study (Section 4.1's C-BGP cost note).

The paper reports that C-BGP simulates one prefix over ~16,500 routers in
14,500 ASes in 2-45 minutes with 0.2-2 GB of memory.  This experiment
measures our engine's cost as the synthetic Internet grows, reporting
per-prefix message counts and wall-clock time so the (near-linear in
sessions) scaling trend is visible.
"""

from __future__ import annotations

import time

from repro.bgp.engine import simulate
from repro.data.synthesis import synthesize_internet
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import Workload, DEFAULT


def run(
    base: Workload = DEFAULT,
    factors: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> ExperimentResult:
    """Simulate ground truth at several scales and record engine cost."""
    result = ExperimentResult(
        experiment_id="SCAL",
        title="Engine cost vs. topology scale (ground-truth simulation)",
        headers=[
            "scale",
            "ASes",
            "routers",
            "sessions",
            "prefixes",
            "messages",
            "msgs/prefix",
            "seconds",
        ],
    )
    for factor in factors:
        workload = base.scaled(factor)
        internet = synthesize_internet(workload.config)
        stats_before = internet.network.stats()
        started = time.perf_counter()
        stats = simulate(internet.network)
        elapsed = time.perf_counter() - started
        result.add_row(
            f"x{factor}",
            stats_before["ases"],
            stats_before["routers"],
            stats_before["sessions"],
            stats_before["prefixes"],
            stats.messages,
            round(stats.messages / max(stats.prefixes, 1)),
            f"{elapsed:.2f}s",
        )
        result.metrics[f"seconds_x{factor}"] = elapsed
        result.metrics[f"messages_x{factor}"] = float(stats.messages)
    result.note(
        "paper: C-BGP needs 2-45 min / 0.2-2 GB per prefix at 16.5k routers; "
        "message count per prefix grows roughly linearly with session count"
    )
    return result


def run_lint(
    base: Workload = DEFAULT,
    factors: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> ExperimentResult:
    """Measure static-analyzer wall-time as the model grows.

    The point of the analyzer is to be cheap relative to simulation: one
    pass over sessions and clauses (plus Tarjan over the preference
    digraph) versus thousands of simulated messages per prefix.  This
    experiment runs every pass of :func:`repro.analysis.analyze_network`
    over the ground-truth network at several scales so the trend — and
    the gap to :func:`run`'s simulation numbers — is visible.
    """
    from repro.analysis import analyze_network

    result = ExperimentResult(
        experiment_id="LINT",
        title="Static analyzer wall-time vs. model size",
        headers=[
            "scale",
            "ASes",
            "routers",
            "sessions",
            "prefixes",
            "findings",
            "seconds",
            "ms/router",
        ],
    )
    for factor in factors:
        workload = base.scaled(factor)
        internet = synthesize_internet(workload.config)
        size = internet.network.stats()
        started = time.perf_counter()
        report = analyze_network(
            internet.network, observer_asns=set(internet.network.ases)
        )
        elapsed = time.perf_counter() - started
        result.add_row(
            f"x{factor}",
            size["ases"],
            size["routers"],
            size["sessions"],
            size["prefixes"],
            len(report.findings),
            f"{elapsed:.3f}s",
            f"{1000.0 * elapsed / max(size['routers'], 1):.2f}",
        )
        result.metrics[f"seconds_x{factor}"] = elapsed
        result.metrics[f"findings_x{factor}"] = float(len(report.findings))
        result.metrics[f"routers_x{factor}"] = float(size["routers"])
        incremental = _measure_incremental(internet.network)
        for name, value in incremental.items():
            result.metrics[f"{name}_x{factor}"] = value
    # Headline numbers from the largest scale: a single policy install
    # must re-certify only the touched prefix, not the whole model.
    largest = factors[-1]
    for name in ("full_ms", "incremental_ms", "invalidated_fraction",
                 "incremental_equal"):
        result.metrics[name] = result.metrics[f"{name}_x{largest}"]
    result.note(
        "all three passes (safety, policy, topology) over the ground-truth "
        "network; zero safety findings (the substrate is convergence-safe), "
        "but the policy pass correctly reports the 'weird' local-pref "
        "clauses the synthesis layer leaves shadowed behind the catch-all "
        "relationship clause"
    )
    result.note(
        "full_ms/incremental_ms: certificate-store re-certification after "
        "one policy install, from scratch vs. dependency-tracked "
        "(incremental_equal=1 asserts the two reports are bit-identical)"
    )
    return result


def _measure_incremental(network) -> dict[str, float]:
    """Cost of re-certifying after one policy install, full vs. tracked.

    Warms a :class:`~repro.analysis.certify.CertificateStore`, installs
    one refine-style local-pref clause on the lowest-numbered eBGP
    session, then times (a) the store's incremental re-certification and
    (b) a from-scratch certification of the mutated network — and checks
    the two produce bit-identical stores.
    """
    from repro.analysis.certify import CertificateStore
    from repro.bgp.policy import Action, Clause, Match

    store = CertificateStore()
    store.certify(network)

    # Install on a session that already carries an import map: creating
    # a map where none existed changes the session's generic-clause
    # signature and (correctly) invalidates the global certificate,
    # which is not the steady-state refinement case being measured.
    session = min(
        (s for s in network.sessions.values() if s.import_map is not None),
        key=lambda s: s.session_id,
    )
    prefix = sorted(network.prefixes())[0]
    session.import_map.append(
        Clause(Match(prefix=prefix), Action.PERMIT,
               set_local_pref=123, tag="bench-incremental")
    )
    store.invalidate_policy(session.dst.router_id, prefix)

    started = time.perf_counter()
    incremental_report = store.certify(network)
    incremental_ms = 1000.0 * (time.perf_counter() - started)

    fresh = CertificateStore()
    started = time.perf_counter()
    full_report = fresh.certify(network)
    full_ms = 1000.0 * (time.perf_counter() - started)

    equal = (
        store.store_fingerprint() == fresh.store_fingerprint()
        and incremental_report.to_json() == full_report.to_json()
    )
    stats = store.last_stats
    session.import_map.remove_if(
        lambda clause: clause.tag == "bench-incremental"
    )
    return {
        "full_ms": full_ms,
        "incremental_ms": incremental_ms,
        "invalidated_fraction": (
            stats.invalidated_fraction if stats is not None else 1.0
        ),
        "incremental_equal": 1.0 if equal else 0.0,
    }
