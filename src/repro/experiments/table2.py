"""Table 2: single-router-per-AS baselines.

Paper reference values::

    Criteria                    Shortest Path   Customer/Peering Policies
    AS-paths which agree               23.5%            12.5%
    ... disagree                       76.4%            87.5%
      AS-path not available            49.4%            54.5%
      shorter AS-path exists            4.7%             5.7%
      lowest neighbor ID               22.2%            27.3%

The baselines share the initial one-quasi-router-per-AS model; the second
adds local-pref/export-filter policies for relationships inferred with the
paper's valley-free heuristic (siblings and unknown edges treated as
peerings, footnote 2).
"""

from __future__ import annotations

from repro.core.build import build_initial_model
from repro.core.metrics import AgreementCategory, evaluate_agreement
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload
from repro.relationships.gao import enforce_acyclic_hierarchy
from repro.relationships.policies import apply_relationship_policies
from repro.relationships.valleyfree import infer_valley_free_relationships

PAPER_REFERENCE = {
    "shortest": {
        AgreementCategory.AGREE: 0.235,
        AgreementCategory.NOT_AVAILABLE: 0.494,
        AgreementCategory.SHORTER_EXISTS: 0.047,
        AgreementCategory.TIE_BREAK: 0.222,
    },
    "policies": {
        AgreementCategory.AGREE: 0.125,
        AgreementCategory.NOT_AVAILABLE: 0.545,
        AgreementCategory.SHORTER_EXISTS: 0.057,
        AgreementCategory.TIE_BREAK: 0.273,
    },
}


def run(prepared: PreparedWorkload) -> ExperimentResult:
    """Evaluate both single-router baselines on the full (pruned) dataset."""
    dataset = prepared.model_dataset
    graph = prepared.model_graph

    shortest = build_initial_model(dataset, graph.copy())
    shortest.simulate_all()
    shortest_counts = evaluate_agreement(shortest, dataset)

    relationships = infer_valley_free_relationships(dataset, prepared.level1)
    enforce_acyclic_hierarchy(relationships)
    policied = build_initial_model(dataset, graph.copy())
    apply_relationship_policies(policied.network, relationships)
    stats = policied.simulate_all(tolerate_divergence=True)
    policy_counts = evaluate_agreement(policied, dataset)

    result = ExperimentResult(
        experiment_id="TAB2",
        title="Agreement between predicted and observed AS-paths (1 router/AS)",
        headers=[
            "criteria",
            "shortest path",
            "paper",
            "cust/peering policies",
            "paper ",
        ],
    )
    total_s = sum(shortest_counts.values()) or 1
    total_p = sum(policy_counts.values()) or 1

    def row(label: str, category: AgreementCategory) -> None:
        result.add_row(
            label,
            shortest_counts[category] / total_s,
            PAPER_REFERENCE["shortest"].get(category, 0.0),
            policy_counts[category] / total_p,
            PAPER_REFERENCE["policies"].get(category, 0.0),
        )

    row("AS-paths which agree", AgreementCategory.AGREE)
    result.add_row(
        "AS-paths which disagree",
        1 - shortest_counts[AgreementCategory.AGREE] / total_s,
        0.764,
        1 - policy_counts[AgreementCategory.AGREE] / total_p,
        0.875,
    )
    row("  AS-path not available", AgreementCategory.NOT_AVAILABLE)
    row("  shorter AS-path exists", AgreementCategory.SHORTER_EXISTS)
    row("  lowest neighbor ID", AgreementCategory.TIE_BREAK)
    row("  other decision step", AgreementCategory.OTHER)

    result.metrics["cases"] = float(total_s)
    result.metrics["shortest_agree"] = shortest_counts[AgreementCategory.AGREE] / total_s
    result.metrics["policies_agree"] = policy_counts[AgreementCategory.AGREE] / total_p
    result.metrics["policies_diverged_prefixes"] = float(len(stats.diverged))
    result.note(
        "paper: both baselines are poor; the dominant failure is the observed "
        "path never being available at the observation AS"
    )
    return result
