"""Shared (cached) model construction for the experiment modules.

Refining a model is the expensive step several experiments share
(Tables 3-5, Figure 8, the ablations), so the refined model for a
prepared workload is built once and reused.  Experiments that mutate the
model (what-if) must request ``fresh=True``.
"""

from __future__ import annotations

from repro.core.build import build_initial_model
from repro.core.model import ASRoutingModel
from repro.core.refine import RefinementConfig, RefinementResult, Refiner
from repro.experiments.workloads import PreparedWorkload

_CACHE: dict[tuple[int, str], tuple[ASRoutingModel, RefinementResult]] = {}


def initial_model(prepared: PreparedWorkload) -> ASRoutingModel:
    """A fresh single-quasi-router-per-AS model for the workload."""
    return build_initial_model(prepared.model_dataset, prepared.model_graph.copy())


def refined_model(
    prepared: PreparedWorkload,
    config: RefinementConfig = RefinementConfig(),
    fresh: bool = False,
) -> tuple[ASRoutingModel, RefinementResult]:
    """The model refined on the workload's training split (cached)."""
    key = (id(prepared), repr(config))
    if not fresh and key in _CACHE:
        return _CACHE[key]
    model = initial_model(prepared)
    refiner = Refiner(model, prepared.training, config)
    result = refiner.run()
    if not fresh:
        _CACHE[key] = (model, result)
    return model, result


def clear_cache() -> None:
    """Forget all cached refined models."""
    _CACHE.clear()
