"""The serve-path chaos campaign (``BENCH_serve_resilience.json``).

Attacks a real ``repro serve`` process tree the way production would —
hot reloads under sustained query load, a corrupted artifact swapped in
mid-flight, ``kill -9`` of a serve worker, a synthetic overload burst, a
slow client squatting a connection, and a final SIGTERM drain — and
asserts the availability contract from ISSUE 9:

* zero requests dropped across hot reloads (the RCU swap is invisible),
* a corrupted reload leaves the old artifact serving (degraded, loudly),
* a killed worker is replaced within a bounded interval while its
  siblings keep answering,
* overload sheds fast 503s carrying ``Retry-After`` instead of queueing,
  with the p99 of *admitted* requests inside the configured deadline,
* SIGTERM still exits 0 after all of the above.

Everything is subprocess-driven (the campaign talks to the server over
real sockets and signals), artifacts are hand-built (no simulation), and
every fault is deterministic in ``seed``, so the recorded numbers are
reproducible run-to-run.  ``repro chaos --serve`` is the CLI wrapper.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.experiments.report import ExperimentResult
from repro.net.prefix import prefix_for_asn
from repro.resilience.faults import corrupt_artifact_payload
from repro.serve.artifact import PredictionArtifact, build_artifact

QUERY = "/paths?origin=10&observer=1"
"""The sustained-load query; answerable by every campaign artifact."""


@dataclass(frozen=True)
class ServeChaosConfig:
    """A fully-determined serve-chaos campaign."""

    seed: int = 0
    workers: int = 2
    request_timeout: float = 5.0
    reload_timeout: float = 20.0
    """Upper bound on observing a triggered reload in ``/healthz``."""
    kill_recovery_bound: float = 15.0
    """Availability contract: a killed worker must be replaced (a fresh
    pid answering ``/healthz``) within this many seconds."""
    overload_clients: int = 16
    overload_max_inflight: int = 3
    overload_deadline: float = 2.0
    overload_delay_ms: float = 200.0
    slow_client_hold: float = 2.0
    drain_timeout: float = 30.0


# ----------------------------------------------------------------------
# Fixtures: artifacts and server processes
# ----------------------------------------------------------------------


def _build_artifact(path: Path, version: int) -> str:
    """Write campaign artifact ``version`` (distinct checksums); returns
    its checksum.  All versions answer ``QUERY``; later versions carry
    more paths, the difference a reload must surface."""
    paths = {
        (10, 1): {(1, 2, 10), (1, 3, 10)},
        (10, 2): {(2, 10)},
        (11, 1): {(1, 11)},
    }
    for extra in range(2, version + 1):
        paths[(10, 1)] = set(paths[(10, 1)]) | {(1, 2, 3 + extra, 10)}
    artifact = build_artifact(
        origins={10: prefix_for_asn(10), 11: prefix_for_asn(11)},
        observers=[1, 2, 3],
        paths=paths,
        meta={"campaign": "serve-chaos", "version": version},
    )
    artifact.save(path)
    return artifact.checksum


def _spawn_server(artifact: Path, extra_args: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(artifact),
         "--port", "0", *extra_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _read_banner(process: subprocess.Popen, timeout: float = 30.0) -> str:
    """Parse ``host:port`` from the startup banner, bounded in time."""
    lines: list[str] = []

    def read() -> None:
        lines.append(process.stdout.readline())

    reader = threading.Thread(target=read, daemon=True)
    reader.start()
    reader.join(timeout)
    if not lines or "http://" not in (lines[0] or ""):
        raise AssertionError(
            f"server did not announce within {timeout}s "
            f"(got {lines[0]!r} )" if lines else "server produced no banner"
        )
    return lines[0].strip().rsplit("http://", 1)[1]


def _request(
    address: str, path: str, timeout: float = 5.0
) -> tuple[int | None, dict, dict]:
    """GET; returns (status, headers, body) — status None on a drop."""
    url = f"http://{address}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as error:
        body = json.load(error)
        return error.code, dict(error.headers), body
    except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
        return None, {}, {}


class _LoadGenerator:
    """Background thread issuing ``QUERY`` back-to-back; every outcome is
    recorded so "zero dropped requests" is checkable after the fact."""

    def __init__(self, address: str, timeout: float) -> None:
        self.address = address
        self.timeout = timeout
        self.outcomes: list[tuple[int | None, float]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            started = time.perf_counter()
            status, _, _ = _request(
                self.address, QUERY, timeout=self.timeout
            )
            with self._lock:
                self.outcomes.append(
                    (status, time.perf_counter() - started)
                )

    def start(self) -> "_LoadGenerator":
        self._thread.start()
        return self

    def mark(self) -> int:
        with self._lock:
            return len(self.outcomes)

    def since(self, mark: int) -> list[tuple[int | None, float]]:
        with self._lock:
            return list(self.outcomes[mark:])

    def stop(self) -> list[tuple[int | None, float]]:
        self._stop.set()
        self._thread.join(timeout=10)
        with self._lock:
            return list(self.outcomes)


def _await_health(
    address: str,
    predicate,
    timeout: float,
    interval: float = 0.05,
) -> dict | None:
    """Poll ``/healthz`` until ``predicate(body)`` holds; None on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = _request(address, "/healthz", timeout=5.0)
        if status is not None and predicate(body):
            return body
        time.sleep(interval)
    return None


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------


def run(
    config: ServeChaosConfig = ServeChaosConfig(), scratch: Path | None = None
) -> ExperimentResult:
    """Run the full serve-resilience campaign; raises AssertionError the
    moment the availability contract is violated."""
    import tempfile

    if scratch is None:
        with tempfile.TemporaryDirectory() as tmp:
            return run(config, Path(tmp))
    result = ExperimentResult(
        experiment_id="SERVE-RESILIENCE",
        title="Serve-path chaos: reloads, worker kills, overload, drain",
        headers=["phase", "requests", "failures", "outcome"],
    )
    artifact = scratch / "chaos.artifact"
    checksums = {1: _build_artifact(artifact, 1)}

    process = _spawn_server(
        artifact,
        ["--workers", str(config.workers),
         "--request-timeout", str(config.request_timeout)],
    )
    try:
        address = _read_banner(process)
        assert _await_health(address, lambda b: b.get("status") == "ok", 10.0), \
            "server never reported healthy"
        load = _LoadGenerator(address, config.request_timeout).start()

        _phase_hot_reload(config, result, process, address, load,
                          artifact, checksums)
        _phase_corrupted_reload(config, result, process, address, load,
                                artifact, checksums)
        _phase_worker_kill(config, result, address, load)
        _phase_slow_client(config, result, address)

        outcomes = load.stop()
        result.metrics["sustained_requests"] = float(len(outcomes))
        _phase_drain(config, result, process)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    _phase_overload(config, result, artifact)
    result.note(
        f"{config.workers} SO_REUSEPORT workers under the serve "
        "supervisor; all faults injected over real sockets and signals"
    )
    result.note(
        "availability contract: reload_dropped_requests == 0, killed "
        f"worker replaced < {config.kill_recovery_bound}s, overload sheds "
        "503 + Retry-After with admitted p99 inside the deadline"
    )
    return result


def _failures(outcomes: list[tuple[int | None, float]]) -> int:
    return sum(1 for status, _ in outcomes if status != 200)


def _phase_hot_reload(
    config, result, process, address, load, artifact, checksums
) -> None:
    """Recompile under load, SIGHUP, observe the new checksum, drop zero."""
    mark = load.mark()
    checksums[2] = _build_artifact(artifact, 2)
    process.send_signal(signal.SIGHUP)
    swapped = _await_health(
        address,
        lambda b: b.get("artifact", {}).get("checksum") == checksums[2],
        config.reload_timeout,
    )
    assert swapped is not None, "hot reload never surfaced in /healthz"
    # Every worker got the SIGHUP; insist the whole fleet converged (the
    # kernel spreads our polls across workers).
    deadline = time.monotonic() + config.reload_timeout
    streak = 0
    while streak < 2 * config.workers and time.monotonic() < deadline:
        _, _, body = _request(address, "/healthz")
        streak = (
            streak + 1
            if body.get("artifact", {}).get("checksum") == checksums[2]
            else 0
        )
        time.sleep(0.02)
    assert streak >= 2 * config.workers, \
        "not every worker converged on the reloaded artifact"
    outcomes = load.since(mark)
    dropped = _failures(outcomes)
    assert dropped == 0, (
        f"hot reload dropped {dropped} of {len(outcomes)} in-flight "
        f"requests: {[s for s, _ in outcomes if s != 200][:5]}"
    )
    result.add_row("hot-reload", len(outcomes), dropped,
                   f"swapped to {checksums[2][:12]}")
    result.metrics["reload_dropped_requests"] = float(dropped)
    result.metrics["reload_requests"] = float(len(outcomes))


def _phase_corrupted_reload(
    config, result, process, address, load, artifact, checksums
) -> None:
    """Corrupt the artifact, SIGHUP: old answers keep flowing, degraded
    is surfaced, and a subsequent good artifact recovers."""
    mark = load.mark()
    corrupt_artifact_payload(artifact, seed=config.seed)
    process.send_signal(signal.SIGHUP)
    degraded = _await_health(
        address,
        lambda b: b.get("status") == "degraded"
        and b.get("reload", {}).get("failures", 0) >= 1,
        config.reload_timeout,
    )
    assert degraded is not None, \
        "corrupted reload never surfaced degraded status in /healthz"
    assert degraded["artifact"]["checksum"] == checksums[2], \
        "degraded server is not serving the previous artifact"
    assert degraded["reload"]["last_error"], \
        "degraded health report carries no reload error"
    status, _, _ = _request(address, QUERY)
    assert status == 200, "degraded server stopped answering queries"
    # Recovery: a good artifact v3 clears the degraded flag.
    checksums[3] = _build_artifact(artifact, 3)
    process.send_signal(signal.SIGHUP)
    recovered = _await_health(
        address,
        lambda b: b.get("status") == "ok"
        and b.get("artifact", {}).get("checksum") == checksums[3],
        config.reload_timeout,
    )
    assert recovered is not None, \
        "server never recovered from the corrupted reload"
    outcomes = load.since(mark)
    dropped = _failures(outcomes)
    assert dropped == 0, (
        f"corrupted reload dropped {dropped} of {len(outcomes)} requests"
    )
    result.add_row("corrupted-reload", len(outcomes), dropped,
                   "degraded surfaced, old artifact kept serving")
    result.metrics["degraded_observed"] = 1.0
    result.metrics["corrupt_reload_dropped_requests"] = float(dropped)


def _phase_worker_kill(config, result, address, load) -> None:
    """kill -9 one worker; the supervisor must replace it in bound."""
    pids: set[int] = set()
    deadline = time.monotonic() + 10.0
    while len(pids) < config.workers and time.monotonic() < deadline:
        status, _, body = _request(address, "/healthz")
        if status is not None and "pid" in body:
            pids.add(body["pid"])
        time.sleep(0.02)
    assert pids, "could not discover any worker pid via /healthz"
    victim = sorted(pids)[0]
    mark = load.mark()
    killed_at = time.monotonic()
    os.kill(victim, signal.SIGKILL)
    replacement: dict | None = None
    successes_during = 0
    recovery_deadline = killed_at + config.kill_recovery_bound
    while time.monotonic() < recovery_deadline:
        status, _, body = _request(address, "/healthz")
        if status is not None:
            successes_during += 1
            if body.get("pid") not in pids:
                replacement = body
                break
        time.sleep(0.02)
    recovery = time.monotonic() - killed_at
    assert replacement is not None, (
        f"killed worker (pid {victim}) was not replaced within "
        f"{config.kill_recovery_bound}s"
    )
    assert successes_during > 0, \
        "no successful responses while the killed worker was down"
    outcomes = load.since(mark)
    survivors = sum(1 for s, _ in outcomes if s == 200)
    assert survivors > 0, \
        "sustained load saw zero successes across the worker kill"
    result.add_row(
        "worker-kill", len(outcomes), _failures(outcomes),
        f"pid {victim} replaced by {replacement['pid']} in {recovery:.2f}s",
    )
    result.metrics["kill_recovery_seconds"] = recovery
    result.metrics["kill_window_successes"] = float(survivors)
    result.metrics["kill_window_failures"] = float(_failures(outcomes))


def _phase_slow_client(config, result, address) -> None:
    """A half-sent request squats a connection; service is unaffected."""
    host, port = address.rsplit(":", 1)
    stalled = socket.create_connection((host, int(port)), timeout=10)
    try:
        stalled.sendall(b"GET " + QUERY.encode("ascii") + b" HTTP/1.1\r\n")
        probes, failures = 0, 0
        deadline = time.monotonic() + config.slow_client_hold
        while time.monotonic() < deadline:
            status, _, _ = _request(address, QUERY)
            probes += 1
            if status != 200:
                failures += 1
            time.sleep(0.02)
    finally:
        stalled.close()
    assert failures == 0, (
        f"slow client stalled the server: {failures}/{probes} probes failed"
    )
    result.add_row("slow-client", probes, failures,
                   f"stalled socket held {config.slow_client_hold}s, "
                   "service unaffected")
    result.metrics["slow_client_failures"] = float(failures)


def _phase_drain(config, result, process) -> None:
    process.send_signal(signal.SIGTERM)
    code = process.wait(timeout=config.drain_timeout)
    assert code == 0, f"supervisor drained with exit code {code}, wanted 0"
    result.add_row("drain", "-", 0, "SIGTERM -> exit 0")
    result.metrics["drain_exit_code"] = float(code)


def _phase_overload(config, result, artifact) -> None:
    """A burst beyond max-inflight sheds 503 + Retry-After; admitted
    requests stay inside the deadline (a single worker, deterministic)."""
    process = _spawn_server(
        artifact,
        ["--max-inflight", str(config.overload_max_inflight),
         "--deadline", str(config.overload_deadline),
         "--chaos-delay-ms", str(config.overload_delay_ms)],
    )
    try:
        address = _read_banner(process)
        outcomes: list[tuple[int | None, dict, float]] = []
        lock = threading.Lock()
        gate = threading.Barrier(config.overload_clients)

        def client() -> None:
            gate.wait()
            started = time.perf_counter()
            status, headers, _ = _request(address, QUERY, timeout=30.0)
            with lock:
                outcomes.append(
                    (status, headers, time.perf_counter() - started)
                )

        threads = [
            threading.Thread(target=client)
            for _ in range(config.overload_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # The ops plane must answer *during* overload too; re-burst while
        # probing /healthz.
        status, _, _ = _request(address, "/healthz")
        assert status in (200, 503), "healthz unreachable under overload"
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=config.drain_timeout)
        except subprocess.TimeoutExpired:
            process.kill()

    admitted = [(s, h, t) for s, h, t in outcomes if s == 200]
    shed = [(s, h, t) for s, h, t in outcomes if s == 503]
    dropped = [o for o in outcomes if o[0] is None]
    assert not dropped, f"overload dropped {len(dropped)} connections"
    assert shed, (
        f"{config.overload_clients} concurrent clients against "
        f"max-inflight {config.overload_max_inflight} shed nothing"
    )
    assert admitted, "overload shed every request; none admitted"
    missing_retry = [h for _, h, _ in shed if "Retry-After" not in h]
    assert not missing_retry, \
        f"{len(missing_retry)} shed responses lack Retry-After"
    latencies = sorted(t for _, _, t in admitted)
    p99 = latencies[min(len(latencies) - 1,
                        max(0, round(0.99 * len(latencies)) - 1))]
    assert p99 <= config.overload_deadline, (
        f"admitted p99 {p99:.3f}s blew the {config.overload_deadline}s "
        "deadline"
    )
    result.add_row(
        "overload", len(outcomes), len(shed),
        f"{len(shed)} shed with Retry-After, admitted p99 {p99 * 1e3:.0f}ms",
    )
    result.metrics["overload_shed"] = float(len(shed))
    result.metrics["overload_admitted"] = float(len(admitted))
    result.metrics["overload_shed_rate"] = len(shed) / len(outcomes)
    result.metrics["overload_admitted_p99_seconds"] = p99


def write_bench(result: ExperimentResult, path: str | Path) -> Path:
    """Persist the campaign as a ``BENCH_*.json`` (same shape as the
    pytest benchmarks write), stamped with run metadata."""
    from repro.obs.meta import run_metadata

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "metrics": result.metrics,
                "notes": result.notes,
                "meta": run_metadata(),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return target
