"""The chaos pipeline: an end-to-end run over a fault-injected workload.

Exercises every resilience mechanism at once, the way a production run
would meet them: a synthetic Internet is sabotaged with dispute wheels
and session flaps, simulated under the escalating-budget retry loop
(quarantining what still diverges), dumped, the dump corrupted, parsed
leniently, and a model refined from whatever survived.  The outcome is a
:class:`~repro.resilience.health.RunHealth` report naming the quarantined
prefixes, the parse skips, and the paths a stalled refinement is stuck
on.  ``repro chaos`` is a thin CLI wrapper around :func:`run_chaos`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field, replace

from repro.analysis import analyze_network
from repro.core.build import build_initial_model
from repro.core.refine import RefinementConfig, Refiner
from repro.data.dumps import read_table_dump, write_table_dump
from repro.data.observation import collect_dataset, select_observation_points
from repro.data.synthesis import SyntheticConfig, synthesize_internet
from repro.errors import DatasetError, RefinementError, ShutdownRequested
from repro.net.prefix import Prefix
from repro.parallel.protocol import WorkerFaults
from repro.parallel.supervisor import ParallelConfig
from repro.resilience.faults import FaultConfig, apply_faults, corrupt_dump_lines
from repro.resilience.health import RunHealth
from repro.resilience.retry import (
    PrefixOutcome,
    RetryPolicy,
    simulate_network_with_retry,
)
from repro.topology.classify import classify_ases
from repro.topology.clique import infer_level1_clique
from repro.topology.graph import ASGraph
from repro.topology.prune import prune_single_homed_stubs


@dataclass(frozen=True)
class ChaosConfig:
    """A fully-determined chaos run."""

    seed: int = 0
    scale: float = 0.25
    points: int = 12
    refine_iterations: int = 10
    faults: FaultConfig = field(
        default_factory=lambda: FaultConfig(
            dispute_wheels=2,
            corrupt_line_fraction=0.1,
            truncate_line_fraction=0.05,
            session_flaps=2,
        )
    )
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=3, deadline_seconds=20.0)
    )
    lint_gate: bool = False
    """Statically quarantine dispute-wheel prefixes before simulating.

    With the gate on, the safety analyzer runs over the fault-injected
    network and every statically-unsafe prefix gets a zero-attempt
    ``unsafe`` outcome instead of burning the full retry budget in the
    simulate phase; the lint report lands in the health report.
    """
    parallel: ParallelConfig | None = None
    """Run the simulate and refine phases through the supervised worker
    pool.  Combined with ``faults.worker_crash_prefixes`` /
    ``faults.worker_hang_prefixes`` this exercises crash resubmission,
    watchdog kills and poison quarantine end-to-end; a SIGINT/SIGTERM
    mid-phase drains gracefully and the health report says
    ``interrupted`` with exit code 5."""


def run_chaos(config: ChaosConfig = ChaosConfig()) -> RunHealth:
    """Run the fault-injected pipeline end-to-end; never raises on faults.

    Injected failures surface in the returned health report (and its
    ``exit_code``), not as exceptions — that is the point.
    """
    health = RunHealth()

    with health.phase("synthesize"):
        internet = synthesize_internet(
            SyntheticConfig(seed=config.seed).scaled(config.scale)
        )

    with health.phase("inject-faults"):
        report = apply_faults(internet.network, config.faults)

    gated: list[Prefix] = []
    if config.lint_gate:
        with health.phase("lint"):
            lint = analyze_network(internet.network, passes=("safety",))
            health.record_lint(lint)
            gated = sorted(lint.unsafe_prefixes(), key=str)

    retry = config.retry
    if config.faults.message_budget is not None:
        # Budget-exhaustion fault: start every prefix from the sabotaged
        # budget so healthy prefixes must recover through escalation.
        retry = replace(retry, initial_budget=config.faults.message_budget)
    parallel = config.parallel
    if parallel is not None and (report.worker_crash or report.worker_hang):
        parallel = replace(
            parallel,
            faults=WorkerFaults(
                crash_prefixes=tuple(report.worker_crash),
                hang_prefixes=tuple(report.worker_hang),
            ),
        )
    with health.phase("simulate"):
        targets = None
        if gated:
            skip = set(gated)
            targets = [p for p in internet.network.prefixes() if p not in skip]
        try:
            stats = simulate_network_with_retry(
                internet.network, prefixes=targets, policy=retry,
                parallel=parallel,
            )
        except ShutdownRequested as shutdown:
            health.interrupted = True
            if shutdown.stats is not None:
                health.record_simulation(shutdown.stats)
            health.faults = report.to_dict()
            return health
        for prefix in gated:
            stats.outcomes.append(PrefixOutcome.gated(prefix))
    health.record_simulation(stats)

    with health.phase("dump"):
        points = select_observation_points(internet, config.points, seed=config.seed)
        dataset = collect_dataset(internet.network, points)
        buffer = io.StringIO()
        write_table_dump(dataset, buffer)
        lines = corrupt_dump_lines(
            buffer.getvalue().splitlines(), config.faults, report
        )
    health.faults = report.to_dict()

    with health.phase("parse"):
        try:
            parsed = read_table_dump(lines)
        except DatasetError as error:
            health.record_error(error)
            return health
    health.record_parse(parsed)

    with health.phase("refine"):
        try:
            observed = parsed.dataset.cleaned()
            graph = ASGraph.from_dataset(observed)
            if not graph.ases():
                raise DatasetError("no usable routes survived the corruption")
            seeds = [max(graph.ases(), key=graph.degree)]
            level1 = infer_level1_clique(graph, seeds)
            classification = classify_ases(observed, graph, level1)
            pruned = prune_single_homed_stubs(observed, graph, classification)
            model = build_initial_model(pruned.dataset, pruned.graph)
            refiner = Refiner(
                model,
                pruned.dataset,
                RefinementConfig(
                    max_iterations=config.refine_iterations, retry=retry,
                    # The worker faults already fired in the simulate
                    # phase; refinement gets a clean (but still parallel)
                    # pool for its initial full-network simulation.
                    parallel=config.parallel,
                ),
            )
            result = refiner.run()
        except ShutdownRequested:
            health.interrupted = True
            return health
        except (DatasetError, RefinementError) as error:
            health.record_error(error)
            return health
    health.record_refinement(result, refiner.unmatched_paths())
    return health
