"""Profiled workload runners behind ``repro profile``.

Each runner executes one end-to-end workload — the refine pipeline, the
artifact compiler, or feed ingestion — under an installed
:class:`~repro.obs.profile.PhaseProfiler` (and, optionally, a
:class:`~repro.obs.sampling.StackSampler`), wrapping the coarse pipeline
stages in named phases so the engine's finer-grained phases
(``engine.dispatch``, ``engine.decision``, ...) subtract from them.
Attribution is exclusive, so the resulting PROFILE.json's ``coverage``
is a real claim: the fraction of the run's wall-clock that some named
phase owns (the refine workload must clear 90%).

The runners reset the metrics registry first — a profile is a statement
about one run, and stale counters from an earlier command would poison
the deterministic baseline ``repro bench-diff`` gates on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.obs.metrics import get_registry
from repro.obs.profile import (
    PhaseProfiler,
    build_profile_document,
    profiling,
)
from repro.obs.sampling import DEFAULT_INTERVAL, StackSampler

WORKLOAD_REFINE = "refine"
WORKLOAD_COMPILE = "compile-artifact"
WORKLOAD_INGEST = "ingest"
WORKLOADS = (WORKLOAD_REFINE, WORKLOAD_COMPILE, WORKLOAD_INGEST)


@dataclass
class ProfiledRun:
    """One profiled workload: the PROFILE.json document plus raw parts."""

    document: dict
    sampler: StackSampler | None
    result: object


def run_profiled(
    workload: dict,
    fn: Callable[[PhaseProfiler], object],
    trace_memory: bool = False,
    sample: bool = False,
    sample_mode: str = "thread",
    sample_interval: float = DEFAULT_INTERVAL,
    folded_path: str | Path | None = None,
    meta: dict | None = None,
) -> ProfiledRun:
    """Run ``fn`` under a fresh profiler (and optional stack sampler).

    ``fn`` receives the installed profiler and does the actual work;
    the registry is reset first so the document's counters describe
    this run alone.  The document's ``workload`` section is the
    caller-supplied dict (``name`` plus whatever parameters matter for
    reproducing the run).
    """
    registry = get_registry()
    registry.reset()
    sampler = (
        StackSampler(interval=sample_interval, mode=sample_mode)
        if sample
        else None
    )
    started_wall = time.perf_counter()
    started_cpu = time.process_time()
    with profiling(PhaseProfiler(trace_memory=trace_memory)) as profiler:
        if sampler is not None:
            sampler.start()
        try:
            result = fn(profiler)
        finally:
            if sampler is not None:
                sampler.stop()
    wall = time.perf_counter() - started_wall
    cpu = time.process_time() - started_cpu
    sampling_summary = None
    if sampler is not None:
        if folded_path is not None:
            sampler.write_folded(folded_path)
        sampling_summary = sampler.summary(folded_path)
    document = build_profile_document(
        profiler,
        wall_seconds=wall,
        cpu_seconds=cpu,
        workload=workload,
        meta=meta,
        registry=registry,
        sampling=sampling_summary,
    )
    return ProfiledRun(document=document, sampler=sampler, result=result)


# ----------------------------------------------------------------------
# Workload bodies
# ----------------------------------------------------------------------


def refine_workload(
    dump_path: str,
    max_iterations: int = 10,
    train_fraction: float = 0.7,
    split_seed: int = 0,
) -> Callable[[PhaseProfiler], object]:
    """The refine pipeline: parse -> build -> refine -> evaluate.

    Mirrors ``repro refine`` minus the resilience plumbing — a profile
    wants the engine hot loop dominating, not retry bookkeeping.
    """

    def run(profiler: PhaseProfiler) -> dict:
        from repro.cli import _load_pruned
        from repro.core.build import build_initial_model
        from repro.core.predict import evaluate_model
        from repro.core.refine import RefinementConfig, Refiner
        from repro.core.split import split_by_observation_points

        with profiler.phase("parse"):
            _, _, _, _, _, pruned = _load_pruned(dump_path, [])
        with profiler.phase("build"):
            training, validation = split_by_observation_points(
                pruned.dataset, train_fraction, seed=split_seed
            )
            model = build_initial_model(pruned.dataset, pruned.graph)
            refiner = Refiner(
                model,
                training,
                RefinementConfig(max_iterations=max_iterations),
            )
        with profiler.phase("refine"):
            result = refiner.run()
        with profiler.phase("evaluate"):
            report = evaluate_model(result.model, validation)
        return {
            "converged": result.converged,
            "iterations": result.iteration_count,
            "validation_cases": report.total,
        }

    return run


def compile_workload(
    dump_path: str,
    max_iterations: int = 10,
) -> Callable[[PhaseProfiler], object]:
    """Build a refined model from ``dump_path``, then compile an artifact.

    The compile slice rides the ``compile.certify`` / ``compile.simulate``
    / ``compile.collect`` phases :func:`~repro.serve.compile.compile_artifact`
    reports itself; the outer ``compile`` phase owns only the glue.
    """

    def run(profiler: PhaseProfiler) -> dict:
        from repro.cli import _load_pruned
        from repro.core.build import build_initial_model
        from repro.core.refine import RefinementConfig, Refiner
        from repro.serve.compile import compile_artifact

        with profiler.phase("parse"):
            _, _, _, _, _, pruned = _load_pruned(dump_path, [])
        with profiler.phase("build"):
            model = build_initial_model(pruned.dataset, pruned.graph)
            refiner = Refiner(
                model,
                pruned.dataset,
                RefinementConfig(max_iterations=max_iterations),
            )
            result = refiner.run()
        with profiler.phase("compile"):
            artifact, report = compile_artifact(result.model)
        return {
            "prefixes": report.prefixes,
            "pairs": report.pairs,
            "observers": len(artifact.observers),
        }

    return run


def ingest_workload(feed_path: str) -> Callable[[PhaseProfiler], object]:
    """Fault-tolerant ingestion of a feed, profiled as one phase."""

    def run(profiler: PhaseProfiler) -> dict:
        from repro.data.ingest import ingest_table_dump

        with profiler.phase("ingest"):
            result = ingest_table_dump(feed_path)
        report = result.report
        return {
            "accepted": report.accepted,
            "quarantined": report.total_quarantined,
        }

    return run


# ----------------------------------------------------------------------
# PROF: profiling overhead experiment
# ----------------------------------------------------------------------


def run_profile_overhead(base=None, repeats: int = 3):
    """Measure the phase profiler's tax on the engine hot loop.

    Three modes over the same synthetic Internet: ``off`` (the shipping
    NullProfiler default — must stay within a few percent of no hooks),
    ``phases`` (full push/switch/pop attribution), and ``phases+mem``
    (attribution plus tracemalloc peaks, the expensive option).  Message
    and decision counts must be identical across modes: profiling that
    changes what the engine computes is a bug, not overhead.
    """
    from repro.bgp.engine import simulate
    from repro.data.synthesis import synthesize_internet
    from repro.experiments.report import ExperimentResult
    from repro.experiments.workloads import DEFAULT
    from repro.obs.metrics import MetricsRegistry, set_registry

    if base is None:
        base = DEFAULT
    result = ExperimentResult(
        experiment_id="PROF",
        title="Phase-profiler overhead on ground-truth simulation",
        headers=[
            "mode",
            "messages",
            "decisions",
            "best seconds",
            "overhead",
            "coverage",
        ],
    )
    internet = synthesize_internet(base.config)

    def simulate_once() -> tuple[float, int, int]:
        started = time.perf_counter()
        stats = simulate(internet.network)
        return time.perf_counter() - started, stats.messages, stats.decisions

    def best_of(runner) -> tuple[float, int, int]:
        return min(
            (runner() for _ in range(max(1, repeats))),
            key=lambda timing: timing[0],
        )

    previous_registry = set_registry(MetricsRegistry())
    coverages: dict[str, float] = {}
    try:
        off_seconds, messages, decisions = best_of(simulate_once)

        def profiled(trace_memory: bool, label: str):
            def run() -> tuple[float, int, int]:
                with profiling(
                    PhaseProfiler(trace_memory=trace_memory)
                ) as profiler:
                    timing = simulate_once()
                coverages[label] = profiler.coverage(timing[0])
                return timing

            return run

        on_seconds, on_messages, on_decisions = best_of(
            profiled(False, "phases")
        )
        mem_seconds, mem_messages, mem_decisions = best_of(
            profiled(True, "phases+mem")
        )
    finally:
        set_registry(previous_registry)
    for label, counts in (
        ("phases", (on_messages, on_decisions)),
        ("phases+mem", (mem_messages, mem_decisions)),
    ):
        if counts != (messages, decisions):
            raise AssertionError(
                f"profiling mode {label!r} changed simulation behaviour: "
                f"{(messages, decisions)} != {counts}"
            )

    def overhead(seconds: float) -> float:
        return seconds / off_seconds - 1.0 if off_seconds else 0.0

    result.add_row("off (NullProfiler)", messages, decisions,
                   f"{off_seconds:.3f}s", "baseline", "-")
    result.add_row("phases", messages, decisions, f"{on_seconds:.3f}s",
                   f"{overhead(on_seconds):+.1%}",
                   f"{coverages['phases']:.1%}")
    result.add_row("phases+mem", messages, decisions, f"{mem_seconds:.3f}s",
                   f"{overhead(mem_seconds):+.1%}",
                   f"{coverages['phases+mem']:.1%}")
    result.metrics["seconds_off"] = off_seconds
    result.metrics["seconds_phases"] = on_seconds
    result.metrics["seconds_phases_mem"] = mem_seconds
    result.metrics["overhead_fraction"] = overhead(on_seconds)
    result.metrics["coverage"] = coverages["phases"]
    result.metrics["messages"] = float(messages)
    result.metrics["decisions"] = float(decisions)
    result.note(
        "phases mode pays two clock reads per transition in the engine "
        "hot loop; phases+mem adds tracemalloc, which multiplies "
        "allocation cost and is opt-in (--trace-memory). The off mode is "
        "the shipping default: one enabled-flag check per hook point."
    )
    return result
