"""Canonical experiment workloads.

A :class:`Workload` fixes every random choice of the pipeline: the
synthetic Internet, the observation points, and the training/validation
split.  :func:`prepare` runs the shared, expensive prefix work (ground
truth simulation, dump collection, cleaning, classification, pruning,
splits) once per workload and caches the result for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bgp.engine import simulate
from repro.data.observation import (
    ObservationPoint,
    collect_dataset,
    select_observation_points,
)
from repro.data.synthesis import SyntheticConfig, SyntheticInternet, synthesize_internet
from repro.topology.classify import ASClassification, classify_ases
from repro.topology.clique import infer_level1_clique
from repro.topology.dataset import PathDataset
from repro.topology.graph import ASGraph
from repro.topology.prune import PruneResult, prune_single_homed_stubs
from repro.core.split import split_by_observation_points


@dataclass(frozen=True)
class Workload:
    """A fully-determined experiment input."""

    name: str
    config: SyntheticConfig
    n_observation_ases: int
    observation_seed: int = 7
    multi_point_fraction: float = 0.4
    split_seed: int = 11
    training_fraction: float = 0.5

    def scaled(self, factor: float, name: str | None = None) -> "Workload":
        """A workload with the Internet population scaled by ``factor``."""
        return replace(
            self,
            name=name or f"{self.name}-x{factor}",
            config=self.config.scaled(factor),
            n_observation_ases=max(4, round(self.n_observation_ases * factor)),
        )


SMALL = Workload(
    name="small",
    config=SyntheticConfig(seed=1, n_level1=4, n_level2=8, n_other=14, n_stub=30),
    n_observation_ases=20,
    multi_point_fraction=0.5,
)
"""Seconds-scale workload used by tests and quick runs."""

DEFAULT = Workload(
    name="default",
    config=SyntheticConfig(
        seed=42, n_level1=5, n_level2=10, n_other=26, n_stub=62,
        weird_session_fraction=0.12,
    ),
    n_observation_ases=30,
    multi_point_fraction=0.45,
)
"""The workload the EXPERIMENTS.md numbers are reported on.

Sized so the full experiment matrix — including the ablations, which
re-refine the model ten times — completes in minutes on one core; the
refinement problem is already two orders of magnitude beyond the toy
figures of the paper (thousands of observed unique paths).
"""

LARGE = Workload(
    name="large",
    config=SyntheticConfig(
        seed=7, n_level1=6, n_level2=16, n_other=40, n_stub=110,
        weird_session_fraction=0.12,
    ),
    n_observation_ases=45,
    multi_point_fraction=0.45,
)
"""Tens-of-minutes workload (172 ASes) for scaling studies."""


@dataclass
class PreparedWorkload:
    """Everything downstream experiments need, computed once."""

    workload: Workload
    internet: SyntheticInternet
    points: list[ObservationPoint]
    dataset: PathDataset
    graph: ASGraph
    level1: set[int]
    classification: ASClassification
    pruned: PruneResult
    training: PathDataset
    validation: PathDataset
    ground_truth_messages: int = 0

    @property
    def model_dataset(self) -> PathDataset:
        """The cleaned, pruned dataset models are built from."""
        return self.pruned.dataset

    @property
    def model_graph(self) -> ASGraph:
        """The pruned AS graph models are built on."""
        return self.pruned.graph


_CACHE: dict[tuple, PreparedWorkload] = {}


def prepare(workload: Workload = DEFAULT, use_cache: bool = True) -> PreparedWorkload:
    """Run the shared pipeline for ``workload`` (cached by default)."""
    key = (
        workload.name,
        workload.config,
        workload.n_observation_ases,
        workload.observation_seed,
        workload.multi_point_fraction,
        workload.split_seed,
        workload.training_fraction,
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]

    internet = synthesize_internet(workload.config)
    stats = simulate(internet.network)
    points = select_observation_points(
        internet,
        workload.n_observation_ases,
        seed=workload.observation_seed,
        multi_point_fraction=workload.multi_point_fraction,
    )
    dataset = collect_dataset(internet.network, points).cleaned()
    graph = ASGraph.from_dataset(dataset)
    seeds = [asn for asn in internet.level1_asns if asn in graph.ases()][:3]
    level1 = infer_level1_clique(graph, seeds)
    classification = classify_ases(dataset, graph, level1)
    pruned = prune_single_homed_stubs(dataset, graph, classification)
    training, validation = split_by_observation_points(
        pruned.dataset, workload.training_fraction, seed=workload.split_seed
    )
    prepared = PreparedWorkload(
        workload=workload,
        internet=internet,
        points=points,
        dataset=dataset,
        graph=graph,
        level1=level1,
        classification=classification,
        pruned=pruned,
        training=training,
        validation=validation,
        ground_truth_messages=stats.messages,
    )
    if use_cache:
        _CACHE[key] = prepared
    return prepared


def clear_cache() -> None:
    """Forget all prepared workloads (tests use this for isolation)."""
    _CACHE.clear()
