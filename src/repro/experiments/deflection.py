"""EXT1 (extension): control-plane vs data-plane AS paths in the ground truth.

The paper's premise is that intra-AS structure changes inter-domain
routes.  This extension experiment quantifies a related phenomenon our
substrate reproduces: *deflection* — the packet's actual AS-level path
(hop-by-hop, each traversed router consulting its own best route)
deviating from the AS-path the source router selected.  With consistent
full-mesh iBGP + next-hop-self the egress may still differ from the
source's expectation once the packet crosses into the next AS at a
different ingress router.
"""

from __future__ import annotations

import random

from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload
from repro.forwarding.trace import ForwardingStatus, traceroute


def run(
    prepared: PreparedWorkload,
    samples: int = 2000,
    seed: int = 13,
) -> ExperimentResult:
    """Sample (router, prefix) pairs and compare control vs data plane."""
    network = prepared.internet.network
    rng = random.Random(seed)
    routers = sorted(network.routers.values(), key=lambda r: r.router_id)
    prefixes = network.prefixes()

    agree = deflected = unreachable = loops = 0
    examined = 0
    for _ in range(samples):
        router = rng.choice(routers)
        prefix = rng.choice(prefixes)
        best = router.best(prefix)
        if best is None:
            continue
        examined += 1
        expected: list[int] = [router.asn]
        for asn in best.as_path:
            if expected[-1] != asn:
                expected.append(asn)
        trace = traceroute(network, router, prefix)
        if trace.status is ForwardingStatus.LOOP:
            loops += 1
        elif not trace.delivered:
            unreachable += 1
        elif trace.as_path(network) == tuple(expected):
            agree += 1
        else:
            deflected += 1

    result = ExperimentResult(
        experiment_id="EXT1",
        title="Data-plane vs control-plane AS paths (ground truth)",
        headers=["outcome", "count", "fraction"],
    )
    total = max(examined, 1)
    result.add_row("AS paths agree", agree, agree / total)
    result.add_row("deflected", deflected, deflected / total)
    result.add_row("undeliverable", unreachable, unreachable / total)
    result.add_row("forwarding loop", loops, loops / total)
    result.metrics["examined"] = float(examined)
    result.metrics["agreement"] = agree / total
    result.metrics["deflection_rate"] = deflected / total
    result.metrics["loop_rate"] = loops / total
    result.note(
        "extension beyond the paper: consistent iBGP keeps deflections rare "
        "and loops absent; the deflection rate bounds how much of the "
        "remaining prediction error is a data-plane (not model) artifact"
    )
    return result
