"""Table 5 (Sections 4.2/4.7): predicting paths for unobserved prefixes.

The alternative data slicing: the training and validation sets contain
*disjoint origin ASes*, so the validation prefixes received no per-prefix
policies at all during refinement.  Their propagation is shaped only by
the quasi-router topology that refinement created — a strictly harder
prediction task than the observation-point split.
"""

from __future__ import annotations

from repro.core.build import build_initial_model
from repro.core.metrics import MatchKind
from repro.core.predict import evaluate_model
from repro.core.refine import RefinementConfig, Refiner
from repro.core.split import split_by_origin
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload


def run(
    prepared: PreparedWorkload,
    config: RefinementConfig = RefinementConfig(),
) -> ExperimentResult:
    """Refine on half the origins, predict paths for the other half."""
    training, validation = split_by_origin(
        prepared.model_dataset, 0.5, seed=prepared.workload.split_seed
    )
    model = build_initial_model(prepared.model_dataset, prepared.model_graph.copy())
    refiner = Refiner(model, training, config)
    refinement = refiner.run()
    training_report = evaluate_model(model, training)
    validation_report = evaluate_model(model, validation)

    result = ExperimentResult(
        experiment_id="TAB5",
        title="Prediction for unobserved prefixes (origin-AS split)",
        headers=["metric", "training origins", "validation origins"],
    )
    result.add_row(
        "cases (unique paths)", training_report.total, validation_report.total
    )
    result.add_row(
        "RIB-Out match", training_report.rib_out_rate, validation_report.rib_out_rate
    )
    result.add_row(
        "potential RIB-Out match",
        training_report.rate(MatchKind.POTENTIAL_RIB_OUT),
        validation_report.rate(MatchKind.POTENTIAL_RIB_OUT),
    )
    result.add_row(
        "matched down to tie-break",
        training_report.tie_break_or_better_rate,
        validation_report.tie_break_or_better_rate,
    )
    result.add_row(
        "RIB-In match (upper bound)",
        training_report.rib_in_or_better_rate,
        validation_report.rib_in_or_better_rate,
    )
    result.metrics["converged"] = 1.0 if refinement.converged else 0.0
    result.metrics["validation_rib_out"] = validation_report.rib_out_rate
    result.metrics["validation_tie_break_or_better"] = (
        validation_report.tie_break_or_better_rate
    )
    result.note(
        "validation prefixes received no per-prefix policies; accuracy below "
        "the observation-point split is expected (Section 4.7 discusses "
        "re-refining for new prefixes)"
    )
    return result
