"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`observation_points` — prediction accuracy as a function of how
  many vantage points the training set contains (the paper's claim that
  exploiting *many* observation points is what makes the model accurate).
* :func:`policy_mechanisms` — which refinement mechanism earns the
  accuracy: quasi-router duplication, filters, MED ranking, or filter
  deletion.
"""

from __future__ import annotations

import random

from repro.core.build import build_initial_model
from repro.core.predict import evaluate_model
from repro.core.refine import RefinementConfig, Refiner
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload


def observation_points(
    prepared: PreparedWorkload,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    seed: int = 5,
) -> ExperimentResult:
    """Sweep the number of training observation points."""
    result = ExperimentResult(
        experiment_id="ABL1",
        title="Validation accuracy vs. number of training observation points",
        headers=[
            "training points",
            "training paths",
            "converged",
            "val RIB-Out",
            "val tie-break+",
        ],
    )
    all_points = sorted(prepared.training.observation_points())
    rng = random.Random(seed)
    shuffled = list(all_points)
    rng.shuffle(shuffled)
    for fraction in fractions:
        count = max(1, round(len(shuffled) * fraction))
        subset = prepared.training.restrict_points(shuffled[:count])
        model = build_initial_model(prepared.model_dataset, prepared.model_graph.copy())
        refinement = Refiner(model, subset).run()
        report = evaluate_model(model, prepared.validation)
        result.add_row(
            count,
            len(subset.unique_paths()),
            "yes" if refinement.converged else "no",
            report.rib_out_rate,
            report.tie_break_or_better_rate,
        )
        result.metrics[f"val_rib_out_at_{count}_points"] = report.rib_out_rate
    result.note("more vantage points in training should monotonically help")
    return result


MECHANISM_VARIANTS: dict[str, RefinementConfig] = {
    "full (paper)": RefinementConfig(),
    "no duplication": RefinementConfig(allow_duplication=False),
    "no policies": RefinementConfig(allow_policies=False),
    "filters only": RefinementConfig(install_ranking=False),
    "ranking only": RefinementConfig(install_filters=False),
    "no filter deletion": RefinementConfig(filter_deletion=False),
}


def policy_mechanisms(prepared: PreparedWorkload) -> ExperimentResult:
    """Disable each refinement mechanism in turn."""
    result = ExperimentResult(
        experiment_id="ABL2",
        title="Refinement mechanism ablation",
        headers=[
            "variant",
            "converged",
            "iters",
            "train RIB-Out",
            "val RIB-Out",
            "val tie-break+",
            "quasi-routers",
        ],
    )
    for name, config in MECHANISM_VARIANTS.items():
        model = build_initial_model(prepared.model_dataset, prepared.model_graph.copy())
        refinement = Refiner(model, prepared.training, config).run()
        train_report = evaluate_model(model, prepared.training)
        val_report = evaluate_model(model, prepared.validation)
        result.add_row(
            name,
            "yes" if refinement.converged else "no",
            refinement.iteration_count,
            train_report.rib_out_rate,
            val_report.rib_out_rate,
            val_report.tie_break_or_better_rate,
            len(model.network.routers),
        )
        key = name.replace(" ", "_").replace("(", "").replace(")", "")
        result.metrics[f"train_rib_out[{key}]"] = train_report.rib_out_rate
    result.note(
        "the paper's claim: both multiple quasi-routers AND per-prefix "
        "policies are necessary — each single mechanism alone falls short"
    )
    return result
