"""Table 3 (Section 5, training): refinement convergence on the training set.

Paper reference: "We find that we can build an AS-routing model that
matches the training set exactly", with "Perfect RIB-Out matches ...
after a total number of iterations that is a multiple of the maximum
AS-path length" (Section 4.6).
"""

from __future__ import annotations

from repro.core.predict import evaluate_model
from repro.experiments import models
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload


def run(prepared: PreparedWorkload) -> ExperimentResult:
    """Refine on the training split and report per-iteration convergence."""
    model, refinement = models.refined_model(prepared)
    result = ExperimentResult(
        experiment_id="TAB3",
        title="Iterative refinement on the training set",
        headers=[
            "iteration",
            "RIB-Out matched",
            "of paths",
            "match rate",
            "policies+",
            "quasi-routers+",
            "filters-",
        ],
    )
    for it in refinement.iterations:
        result.add_row(
            it.iteration,
            it.paths_matched,
            it.paths_total,
            it.match_rate,
            it.policies_installed,
            it.routers_added,
            it.filters_deleted,
        )

    report = evaluate_model(model, prepared.training)
    max_path_len = max(
        (len(route.path) for route in prepared.training), default=0
    )
    result.metrics["converged"] = 1.0 if refinement.converged else 0.0
    result.metrics["iterations"] = float(refinement.iteration_count)
    result.metrics["max_path_length"] = float(max_path_len)
    result.metrics["final_training_rib_out"] = report.rib_out_rate
    result.metrics["quasi_routers"] = float(len(model.network.routers))
    result.metrics["policy_clauses"] = float(model.policy_clause_count())
    result.note(
        "paper: the refined model matches the training set exactly; "
        "iterations scale with the maximum AS-path length"
    )
    return result
