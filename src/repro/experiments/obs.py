"""OBS: tracing overhead — what does observability cost the engine?

The trace layer promises a near-zero-cost default: with the
:class:`~repro.obs.trace.NullTracer` installed, every hook point is one
attribute check.  This experiment quantifies both sides of that promise
on the ground-truth simulation:

* ``off`` — the default (NullTracer), which must stay within a few
  percent of a build with no hooks at all;
* ``jsonl`` — a :class:`~repro.obs.trace.JsonlTracer` writing every
  decision event to a discarding sink, the full cost of tracing minus
  disk bandwidth.

Each mode re-simulates the same synthetic Internet, so the message and
decision counts are identical and the wall-clock delta is attributable
to the instrumentation alone.
"""

from __future__ import annotations

import time

from repro.bgp.engine import simulate
from repro.data.synthesis import synthesize_internet
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import DEFAULT, Workload
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.trace import JsonlTracer, tracing


class _DiscardingSink:
    """A write-only text sink that keeps nothing (I/O-free tracing cost)."""

    closed = False

    def __init__(self) -> None:
        self.bytes_written = 0

    def write(self, text: str) -> int:
        self.bytes_written += len(text)
        return len(text)

    def flush(self) -> None:
        return None


def run_trace_overhead(
    base: Workload = DEFAULT, repeats: int = 3
) -> ExperimentResult:
    """Measure simulation wall-clock with tracing off vs. JSONL tracing on.

    ``repeats`` full-network simulations per mode; the best (minimum)
    time of each mode is compared, which is the standard way to suppress
    scheduler noise in micro-ish benchmarks.
    """
    result = ExperimentResult(
        experiment_id="OBS",
        title="Tracing overhead on ground-truth simulation",
        headers=[
            "mode",
            "messages",
            "decisions",
            "best seconds",
            "overhead",
            "trace bytes",
        ],
    )
    internet = synthesize_internet(base.config)

    def simulate_once() -> tuple[float, int, int]:
        started = time.perf_counter()
        stats = simulate(internet.network)
        return time.perf_counter() - started, stats.messages, stats.decisions

    def best_of(mode_runner) -> tuple[float, int, int]:
        timings = [mode_runner() for _ in range(max(1, repeats))]
        return min(timings, key=lambda timing: timing[0])

    # Isolate the experiment from the process-global registry so repeated
    # runs don't inflate each other's counters.
    previous_registry = set_registry(MetricsRegistry())
    try:
        off_seconds, messages, decisions = best_of(simulate_once)

        sink = _DiscardingSink()

        def simulate_traced() -> tuple[float, int, int]:
            with tracing(JsonlTracer(sink)):
                return simulate_once()

        on_seconds, traced_messages, traced_decisions = best_of(simulate_traced)
    finally:
        set_registry(previous_registry)
    if (messages, decisions) != (traced_messages, traced_decisions):
        raise AssertionError(
            "tracing changed simulation behaviour: "
            f"{(messages, decisions)} != {(traced_messages, traced_decisions)}"
        )

    overhead = on_seconds / off_seconds - 1.0 if off_seconds else 0.0
    result.add_row("off (NullTracer)", messages, decisions,
                   f"{off_seconds:.3f}s", "baseline", 0)
    result.add_row("jsonl (discarded)", traced_messages, traced_decisions,
                   f"{on_seconds:.3f}s", f"{overhead:+.1%}",
                   sink.bytes_written)
    result.metrics["seconds_off"] = off_seconds
    result.metrics["seconds_jsonl"] = on_seconds
    result.metrics["overhead_fraction"] = overhead
    result.metrics["trace_bytes"] = float(sink.bytes_written)
    result.metrics["messages"] = float(messages)
    result.note(
        "jsonl mode serialises one decision event per decision-process run "
        "to a discarding sink; real runs add disk bandwidth on top. "
        "The off mode is the shipping default: one enabled-flag check per "
        "hook point."
    )
    return result


def registry_snapshot_is_live() -> bool:
    """Sanity helper: True when the global registry accumulates counters."""
    return bool(get_registry())
