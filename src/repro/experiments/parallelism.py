"""Parallel-executor speedup study (``BENCH_parallel.json``).

Per-prefix simulation is embarrassingly parallel (Section 4.2), so the
supervised pool's speedup over the sequential path should approach the
machine's core count minus supervision overhead (IPC, per-result RIB
transfer, worker startup).  This experiment measures the sequential
baseline and several worker counts on the same synthetic Internet,
verifying along the way that every configuration produces identical
outcome classifications — the pool must buy time, never correctness.

The recorded numbers are only meaningful relative to ``cpu_count`` (also
recorded): on a single-core machine every worker count necessarily
measures pure supervision overhead, not speedup.
"""

from __future__ import annotations

import os
import time

from repro.core.model import MODEL_DECISION_CONFIG
from repro.data.synthesis import synthesize_internet
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import DEFAULT, Workload
from repro.parallel import ParallelConfig
from repro.resilience.retry import RetryPolicy, simulate_network_with_retry


def run(
    base: Workload = DEFAULT,
    worker_counts: tuple[int, ...] = (2, 4),
) -> ExperimentResult:
    """Time sequential vs. supervised-pool simulation of one workload."""
    cpu_count = os.cpu_count() or 1
    result = ExperimentResult(
        experiment_id="PAR",
        title="Supervised-pool speedup over sequential per-prefix simulation",
        headers=["workers", "prefixes", "messages", "seconds", "speedup"],
    )
    policy = RetryPolicy()

    def timed(parallel: ParallelConfig | None):
        network = synthesize_internet(base.config).network
        started = time.perf_counter()
        stats = simulate_network_with_retry(
            network, config=MODEL_DECISION_CONFIG, policy=policy,
            parallel=parallel,
        )
        return time.perf_counter() - started, stats

    baseline_seconds, baseline = timed(None)
    outcomes = sorted((str(o.prefix), o.status) for o in baseline.outcomes)
    result.add_row(
        "1 (sequential)", len(baseline.outcomes), baseline.engine.messages,
        f"{baseline_seconds:.2f}s", "1.00x",
    )
    result.metrics["seconds_sequential"] = baseline_seconds
    for workers in worker_counts:
        elapsed, stats = timed(ParallelConfig(workers=workers))
        if sorted((str(o.prefix), o.status) for o in stats.outcomes) != outcomes:
            raise AssertionError(
                f"workers={workers} changed outcome classifications"
            )
        speedup = baseline_seconds / elapsed if elapsed else float("inf")
        result.add_row(
            workers, len(stats.outcomes), stats.engine.messages,
            f"{elapsed:.2f}s", f"{speedup:.2f}x",
        )
        result.metrics[f"seconds_workers_{workers}"] = elapsed
        result.metrics[f"speedup_workers_{workers}"] = speedup
    result.metrics["cpu_count"] = float(cpu_count)
    result.note(
        f"measured on {cpu_count} CPU core(s); speedup is bounded by "
        "min(workers, cores) and on a single-core machine the pool can "
        "only measure supervision overhead"
    )
    result.note(
        "outcome classifications verified identical across all "
        "configurations (the pool trades time, never results)"
    )
    return result
