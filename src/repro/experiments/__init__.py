"""Experiment harness: one module per paper table/figure.

Every experiment consumes a :class:`~repro.experiments.workloads.PreparedWorkload`
(a synthetic Internet + collected dataset + splits, cached per workload) and
returns an :class:`~repro.experiments.report.ExperimentResult` whose
``render()`` prints the same rows/series the paper reports, next to the
paper's own numbers where the supplied text states them.
"""

from repro.experiments.workloads import (
    Workload,
    PreparedWorkload,
    SMALL,
    DEFAULT,
    LARGE,
    prepare,
)
from repro.experiments.report import ExperimentResult, format_table
from repro.experiments import (
    campaigns,
    chaos,
    deflection,
    fig2,
    fig3,
    fig8,
    obs,
    parallelism,
    table1,
    table2,
    table3,
    table4,
    table5,
    ablations,
    scaling,
    serving,
)

__all__ = [
    "Workload",
    "PreparedWorkload",
    "SMALL",
    "DEFAULT",
    "LARGE",
    "prepare",
    "ExperimentResult",
    "format_table",
    "deflection",
    "fig2",
    "fig3",
    "fig8",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "ablations",
    "campaigns",
    "parallelism",
    "chaos",
    "obs",
    "scaling",
    "serving",
]
