"""Table 4 (Section 5, validation): predicting unobserved routes.

Paper reference: "we can match the predictions down to the final BGP tie
break in more than 80% of the test cases" — i.e. RIB-Out plus potential
RIB-Out exceeds 80% on the held-out observation points.  The experiment
also reports the per-prefix coverage counters defined in Section 4.2
(">=50%, 90%, or 100% of their respective unique AS-paths").
"""

from __future__ import annotations

from repro.core.metrics import MatchKind
from repro.core.predict import evaluate_model
from repro.experiments import models
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload


def run(prepared: PreparedWorkload) -> ExperimentResult:
    """Evaluate the refined model on training and validation splits."""
    model, _ = models.refined_model(prepared)
    training_report = evaluate_model(model, prepared.training)
    validation_report = evaluate_model(model, prepared.validation)

    result = ExperimentResult(
        experiment_id="TAB4",
        title="Prediction quality (Section 4.2 metrics)",
        headers=["metric", "training", "validation"],
    )
    result.add_row("cases (unique paths)", training_report.total, validation_report.total)
    result.add_row(
        "RIB-Out match", training_report.rib_out_rate, validation_report.rib_out_rate
    )
    result.add_row(
        "potential RIB-Out match",
        training_report.rate(MatchKind.POTENTIAL_RIB_OUT),
        validation_report.rate(MatchKind.POTENTIAL_RIB_OUT),
    )
    result.add_row(
        "matched down to tie-break",
        training_report.tie_break_or_better_rate,
        validation_report.tie_break_or_better_rate,
    )
    result.add_row(
        "RIB-In match (upper bound)",
        training_report.rib_in_or_better_rate,
        validation_report.rib_in_or_better_rate,
    )
    for label, threshold in ((">=50%", 0.5), (">=90%", 0.9), ("100%", 1.0)):
        result.add_row(
            f"origins with {label} paths matched",
            training_report.prefixes_with_coverage(threshold)
            / max(training_report.origin_count, 1),
            validation_report.prefixes_with_coverage(threshold)
            / max(validation_report.origin_count, 1),
        )

    result.metrics["validation_tie_break_or_better"] = (
        validation_report.tie_break_or_better_rate
    )
    result.metrics["validation_rib_out"] = validation_report.rib_out_rate
    result.note(
        "paper: >80% of validation cases match down to the final BGP tie break; "
        "training matches exactly"
    )
    return result
