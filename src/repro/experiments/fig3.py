"""Figure 3: a concrete example of path diversity.

The paper illustrates route diversity with prefix 81.196.64.0/20 at
AS 5511: five level-1 providers, eight distinct AS-paths, and an AS
(AS 3356) that needs eight routers to propagate all its paths.  This
experiment extracts the analogous worst case from the synthetic dataset:
the (origin AS, transit AS) pair exhibiting the most distinct route
suffixes.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload


def run(prepared: PreparedWorkload) -> ExperimentResult:
    """Find and display the most route-diverse (origin, transit AS) example."""
    suffixes: dict[tuple[int, int], set[tuple[int, ...]]] = defaultdict(set)
    for route in prepared.dataset:
        asns = route.path.asns
        for position, asn in enumerate(asns):
            suffixes[(asn, route.origin_asn)].add(asns[position:])

    (diverse_asn, origin), paths = max(
        suffixes.items(), key=lambda item: (len(item[1]), -item[0][0])
    )
    result = ExperimentResult(
        experiment_id="FIG3",
        title=(
            f"Path-diversity example: routes towards AS {origin} "
            f"as propagated by AS {diverse_asn}"
        ),
        headers=["#", "AS-path suffix at the diverse AS"],
    )
    for index, path in enumerate(sorted(paths, key=lambda p: (len(p), p)), start=1):
        result.add_row(index, " ".join(str(asn) for asn in path))
    result.metrics["distinct_paths"] = float(len(paths))
    result.metrics["routers_needed_lower_bound"] = float(len(paths))
    result.note(
        "paper example: prefix 81.196.64.0/20 at AS 5511 — 8 AS-paths, "
        "AS 3356 needs 8 routers to propagate all of them"
    )
    return result
