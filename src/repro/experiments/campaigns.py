"""Scenario-campaign throughput study (``BENCH_campaign.json``).

Sweeps the depeering scenario space of a refined model through the
campaign engine — sequentially and fanned out across the supervised
pool — and records the throughput (scenarios per minute) and quarantine
rate of each configuration.  The two configurations must produce
bit-identical ranked reports once ``meta`` is set aside; that is
asserted here, not just recorded, because a pool that changed a ranking
would silently invalidate every campaign comparison.
"""

from __future__ import annotations

import time

from repro.campaign import (
    context_from_artifact,
    generate_depeer,
    run_campaign,
    validate_baseline,
)
from repro.experiments import models
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import SMALL, Workload, prepare
from repro.parallel import ParallelConfig
from repro.resilience.retry import RetryPolicy
from repro.serve.compile import compile_artifact


def run(
    base: Workload = SMALL,
    max_scenarios: int = 12,
    worker_counts: tuple[int, ...] = (2,),
) -> ExperimentResult:
    """Time a capped depeer campaign, sequential vs. supervised pool."""
    result = ExperimentResult(
        experiment_id="CAMP",
        title="Depeer-campaign throughput: sequential vs. supervised pool",
        headers=[
            "workers", "scenarios", "completed", "quarantined",
            "seconds", "scenarios/min",
        ],
    )
    prepared = prepare(base)
    model, _ = models.refined_model(prepared, fresh=True)
    policy = RetryPolicy()
    artifact, _ = compile_artifact(model, retry=policy)
    model.network.clear_routing()
    validate_baseline(model, artifact)
    context = context_from_artifact(artifact)
    scenarios = sorted(generate_depeer(model), key=lambda s: s.key)
    capped = scenarios[:max_scenarios]

    def timed(parallel: ParallelConfig | None):
        started = time.perf_counter()
        report = run_campaign(
            model, "depeer", capped, context,
            retry=policy, parallel=parallel,
        )
        return time.perf_counter() - started, report

    def record(label: str, seconds: float, report) -> float:
        counts = report.counts()
        per_minute = (
            counts["scenarios"] * 60.0 / seconds if seconds else float("inf")
        )
        result.add_row(
            label, counts["scenarios"], counts["completed"],
            counts["quarantined"], f"{seconds:.2f}s", f"{per_minute:.1f}",
        )
        return per_minute

    baseline_seconds, baseline = timed(None)
    result.metrics["scenarios_per_minute"] = record(
        "1 (sequential)", baseline_seconds, baseline
    )
    reference = baseline.to_dict(include_meta=False)
    for workers in worker_counts:
        elapsed, report = timed(ParallelConfig(workers=workers))
        if report.to_dict(include_meta=False) != reference:
            raise AssertionError(
                f"workers={workers} changed the ranked campaign report"
            )
        result.metrics[f"scenarios_per_minute_workers_{workers}"] = record(
            str(workers), elapsed, report
        )

    counts = baseline.counts()
    result.metrics["scenarios"] = float(counts["scenarios"])
    result.metrics["scenarios_quarantined"] = float(counts["quarantined"])
    result.metrics["quarantine_rate"] = (
        counts["quarantined"] / counts["scenarios"] if counts["scenarios"]
        else 0.0
    )
    ranked = baseline.ranked()
    result.metrics["top_blast_radius"] = (
        ranked[0].blast_radius if ranked else 0.0
    )
    result.note(
        f"depeer scenario space capped at {max_scenarios} of "
        f"{len(scenarios)} removable sessions (key order)"
    )
    result.note(
        "ranked reports verified bit-identical across all worker counts "
        "(meta excluded); the pool trades time, never rankings"
    )
    return result
