"""Figure 2: histogram of distinct AS-paths per (origin, observer) AS pair.

Paper reference points (Section 3.2): "for more than 30% of the AS-pairs
we see more than one AS-path" and "there are more than 5,000 pairs with
more than 10 different paths" (out of ~3.27M pairs, i.e. a small but
heavy tail).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload
from repro.topology.diversity import distinct_paths_histogram


def run(prepared: PreparedWorkload, max_bucket: int = 10) -> ExperimentResult:
    """Compute the Figure 2 histogram on the workload's cleaned dataset."""
    histogram = distinct_paths_histogram(prepared.dataset)
    total_pairs = sum(histogram.values())
    result = ExperimentResult(
        experiment_id="FIG2",
        title="Histogram of # distinct AS-paths between AS pairs",
        headers=["# distinct AS-paths", "# AS pairs", "fraction"],
    )
    tail = 0
    for count in sorted(histogram):
        if count <= max_bucket:
            result.add_row(count, histogram[count], histogram[count] / total_pairs)
        else:
            tail += histogram[count]
    if tail:
        result.add_row(f">{max_bucket}", tail, tail / total_pairs)

    multipath = sum(n for paths, n in histogram.items() if paths > 1)
    result.metrics["pairs"] = float(total_pairs)
    result.metrics["fraction_multipath"] = multipath / total_pairs if total_pairs else 0.0
    result.metrics["pairs_gt10_paths"] = float(
        sum(n for paths, n in histogram.items() if paths > 10)
    )
    result.note(
        "paper: >30% of AS pairs show more than one distinct AS-path; "
        ">5000 pairs (of 3.27M) show more than 10"
    )
    return result
