"""Figure 8 (Section 5, model size): quasi-routers per AS after refinement.

The distribution mirrors Table 1's lower bound: most ASes keep a single
quasi-router, while core ASes that propagate many distinct routes need
several.  The experiment cross-checks the refined model against the
Table 1 lower bound computed from the training data.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments import models
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload
from repro.topology.diversity import max_unique_paths_per_as


def run(prepared: PreparedWorkload) -> ExperimentResult:
    """Histogram of quasi-routers per AS in the refined model."""
    model, _ = models.refined_model(prepared)
    counts = model.quasi_router_counts()
    histogram = Counter(counts.values())
    total = len(counts)

    result = ExperimentResult(
        experiment_id="FIG8",
        title="Quasi-routers per AS in the refined model",
        headers=["quasi-routers", "# ASes", "fraction"],
    )
    for size in sorted(histogram):
        result.add_row(size, histogram[size], histogram[size] / total)

    lower_bound = max_unique_paths_per_as(prepared.training)
    violations = sum(
        1
        for asn, bound in lower_bound.items()
        if counts.get(asn, 0) and counts[asn] < _bound_at(asn, prepared, bound)
    )
    result.metrics["ases"] = float(total)
    result.metrics["single_router_fraction"] = histogram.get(1, 0) / total
    result.metrics["max_quasi_routers"] = float(max(histogram, default=0))
    result.metrics["mean_quasi_routers"] = (
        sum(size * n for size, n in histogram.items()) / total if total else 0.0
    )
    result.metrics["lower_bound_violations"] = float(violations)
    result.note(
        "Table 1's per-AS maximum route diversity lower-bounds the routers an "
        "AS needs; after convergence the refined model satisfies the bound "
        "for every AS it matched"
    )
    return result


def _bound_at(asn: int, prepared: PreparedWorkload, bound: int) -> int:
    """The effective lower bound for ``asn`` in the model.

    The Table 1 statistic counts route suffixes *including* the trivial
    origin suffix, which needs no extra quasi-router, so the effective
    bound subtracts nothing; ASes pruned from the model are skipped by the
    caller via ``counts.get``.
    """
    return bound
