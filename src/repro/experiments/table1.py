"""Table 1: quantiles of the maximum route diversity received per AS.

Paper reference (Section 3.2): "more than 50% of the ASes receive two
unique AS-paths for at least one destination prefix, 10% more than 5, and
2% more than 10" — the distribution whose upper quantiles Table 1 lists.
The value for an AS lower-bounds the number of quasi-routers it needs.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import PreparedWorkload
from repro.topology.diversity import (
    TABLE1_PERCENTILES,
    max_unique_paths_per_as,
    quantiles,
)

PAPER_REFERENCE = {50.0: 2, 90.0: 5, 98.0: 10}
"""Paper quantiles implied by the Section 3.2 prose."""


def run(prepared: PreparedWorkload) -> ExperimentResult:
    """Compute the Table 1 quantiles on the workload's cleaned dataset."""
    per_as = max_unique_paths_per_as(prepared.dataset)
    measured = quantiles(list(per_as.values()), TABLE1_PERCENTILES)
    result = ExperimentResult(
        experiment_id="TAB1",
        title="Maximum # unique AS-paths received, per-AS distribution quantiles",
        headers=["percentile", "measured", "paper"],
    )
    for point in TABLE1_PERCENTILES:
        paper = PAPER_REFERENCE.get(point, "-")
        result.add_row(f"{point:.0f}", measured[point], paper)
    result.metrics["ases"] = float(len(per_as))
    result.metrics["fraction_ases_ge2"] = (
        sum(1 for v in per_as.values() if v >= 2) / len(per_as) if per_as else 0.0
    )
    result.note(
        "paper: 50% of ASes receive >=2 unique paths for some prefix, "
        "10% more than 5, 2% more than 10 (1300 observation points; "
        "this workload has far fewer, which lowers visible diversity)"
    )
    return result
