"""Plain-text result rendering shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned fixed-width text table."""
    columns = len(headers)
    cells = [[_format_cell(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1%}" if 0 <= value <= 1 else f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentResult:
    """One experiment's output: structured rows plus a rendered report."""

    experiment_id: str
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        """Append one result row."""
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        """Attach a free-form note (paper reference values, caveats)."""
        self.notes.append(text)

    def render(self) -> str:
        """The full text report for this experiment."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.metrics:
            parts.append(
                "\n".join(
                    f"  {key} = {_format_cell(value)}"
                    for key, value in sorted(self.metrics.items())
                )
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
