"""Realizing inferred relationships as BGP policies (Section 3.3).

"We then realized appropriate policies based on the local-pref BGP
attribute and route filters in the simulator" — with footnote 2: "We treat
siblings in the same manner as peering relationships and set the same
local-preference for unknown AS edges as for peerings."

Implementation: on import, a route is tagged with a community recording
the relationship class of the session it arrived over and given the
corresponding local-pref (customer > peer/sibling/unknown > provider).  On
export towards a peer or provider, routes tagged as learned from a peer or
provider are denied (only customer routes and own routes cross such
edges); towards customers and siblings everything is exported.
"""

from __future__ import annotations

from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, Match
from repro.relationships.types import Relationship, RelationshipMap

LOCAL_PREF_CUSTOMER = 100
LOCAL_PREF_PEER = 90
LOCAL_PREF_PROVIDER = 80

TAG_FROM_CUSTOMER = (0xFFFA << 16) | 1
TAG_FROM_PEER = (0xFFFA << 16) | 2
TAG_FROM_PROVIDER = (0xFFFA << 16) | 3

_IMPORT_SETTINGS = {
    # relationship of the *announcing neighbour* from the receiver's view;
    # footnote 2: siblings and unknown edges are treated like peerings.
    Relationship.CUSTOMER: (LOCAL_PREF_CUSTOMER, TAG_FROM_CUSTOMER),
    Relationship.SIBLING: (LOCAL_PREF_PEER, TAG_FROM_PEER),
    Relationship.PEER: (LOCAL_PREF_PEER, TAG_FROM_PEER),
    Relationship.UNKNOWN: (LOCAL_PREF_PEER, TAG_FROM_PEER),
    Relationship.PROVIDER: (LOCAL_PREF_PROVIDER, TAG_FROM_PROVIDER),
}

POLICY_TAG = "relationship"


def apply_relationship_policies(
    network: Network, relationships: RelationshipMap
) -> int:
    """Install relationship policies on every eBGP session of ``network``.

    Returns the number of sessions configured.  Siblings and unclassified
    edges are treated exactly like peerings (footnote 2), which also keeps
    the policy system inside the Gao-Rexford convergence conditions.
    """
    configured = 0
    for session in network.ebgp_sessions():
        receiver_asn = session.dst.asn
        announcer_asn = session.src.asn
        rel_of_announcer = relationships.get(receiver_asn, announcer_asn)
        local_pref, tag = _IMPORT_SETTINGS[rel_of_announcer]
        import_map = session.ensure_import_map()
        import_map.remove_if(lambda clause: clause.tag == POLICY_TAG)
        # strip_communities: the relationship tags must describe *this*
        # session, so tags inherited from the previous AS hop are dropped.
        import_map.append(
            Clause(
                Match(),
                Action.PERMIT,
                set_local_pref=local_pref,
                add_communities=frozenset((tag,)),
                strip_communities=True,
                tag=POLICY_TAG,
            )
        )
        # Export side: the session src announces to dst; restrict what
        # crosses depending on dst's relationship from src's point of view.
        rel_of_receiver = relationships.get(announcer_asn, receiver_asn)
        export_map = session.ensure_export_map()
        export_map.remove_if(lambda clause: clause.tag == POLICY_TAG)
        if rel_of_receiver in (Relationship.PEER, Relationship.PROVIDER,
                               Relationship.UNKNOWN, Relationship.SIBLING):
            for community in (TAG_FROM_PEER, TAG_FROM_PROVIDER):
                export_map.append(
                    Clause(
                        Match(community=community),
                        Action.DENY,
                        tag=POLICY_TAG,
                    )
                )
        configured += 1
    return configured


def clear_relationship_policies(network: Network) -> int:
    """Remove previously-installed relationship policies; returns count removed."""
    removed = 0
    for session in network.ebgp_sessions():
        if session.import_map is not None:
            removed += session.import_map.remove_if(
                lambda clause: clause.tag == POLICY_TAG
            )
        if session.export_map is not None:
            removed += session.export_map.remove_if(
                lambda clause: clause.tag == POLICY_TAG
            )
    return removed
