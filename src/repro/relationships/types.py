"""Relationship types and the per-edge relationship map."""

from __future__ import annotations

import enum
from typing import Iterable, Iterator


class Relationship(enum.Enum):
    """The relationship of an ordered AS pair (a, b), from a's point of view."""

    CUSTOMER = "customer"
    """b is a's customer (a provides transit to b)."""

    PROVIDER = "provider"
    """b is a's provider (b provides transit to a)."""

    PEER = "peer"
    """a and b are settlement-free peers."""

    SIBLING = "sibling"
    """a and b belong to the same organisation and exchange all routes."""

    UNKNOWN = "unknown"
    """The edge could not be classified."""

    def inverse(self) -> "Relationship":
        """The same relationship seen from the other endpoint."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self


class RelationshipMap:
    """A symmetric map from undirected AS edges to relationships.

    Stored canonically: for the edge {a, b} with a < b we record the
    relationship of b *from a's point of view* under key (a, b).
    """

    def __init__(self):
        self._edges: dict[tuple[int, int], Relationship] = {}

    def set(self, a: int, b: int, rel_of_b_from_a: Relationship) -> None:
        """Record that, from ``a``'s point of view, ``b`` is ``rel_of_b_from_a``."""
        if a == b:
            raise ValueError(f"self relationship at AS {a}")
        if a < b:
            self._edges[(a, b)] = rel_of_b_from_a
        else:
            self._edges[(b, a)] = rel_of_b_from_a.inverse()

    def get(self, a: int, b: int) -> Relationship:
        """The relationship of ``b`` from ``a``'s point of view."""
        if a < b:
            return self._edges.get((a, b), Relationship.UNKNOWN)
        return self._edges.get((b, a), Relationship.UNKNOWN).inverse()

    def has(self, a: int, b: int) -> bool:
        """True if the edge {a, b} has been classified (even as UNKNOWN)."""
        key = (a, b) if a < b else (b, a)
        return key in self._edges

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """Iterate canonical (a, b, relationship-of-b-from-a) triples, a < b."""
        for (a, b), rel in self._edges.items():
            yield a, b, rel

    def counts(self) -> dict[Relationship, int]:
        """Number of edges per relationship type (customer/provider merged)."""
        result: dict[Relationship, int] = {
            Relationship.CUSTOMER: 0,
            Relationship.PEER: 0,
            Relationship.SIBLING: 0,
            Relationship.UNKNOWN: 0,
        }
        for _, _, rel in self.edges():
            if rel in (Relationship.CUSTOMER, Relationship.PROVIDER):
                result[Relationship.CUSTOMER] += 1
            else:
                result[rel] += 1
        return result

    def update_unset(self, other: "RelationshipMap") -> int:
        """Copy classifications from ``other`` for edges not yet set here."""
        added = 0
        for a, b, rel in other.edges():
            if not self.has(a, b):
                self.set(a, b, rel)
                added += 1
        return added

    def providers_of(self, asn: int, neighbors: Iterable[int]) -> set[int]:
        """Among ``neighbors``, those that are providers of ``asn``."""
        return {
            n for n in neighbors if self.get(asn, n) is Relationship.PROVIDER
        }

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            "RelationshipMap("
            f"c2p={counts[Relationship.CUSTOMER]}, "
            f"p2p={counts[Relationship.PEER]}, "
            f"sibling={counts[Relationship.SIBLING]}, "
            f"unknown={counts[Relationship.UNKNOWN]})"
        )
