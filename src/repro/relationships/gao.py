"""Gao-style degree-based relationship inference [Gao 2001].

For every observed path the highest-degree AS is assumed to be the "top
provider"; edges on the observer side of the top are customer->provider
(each AS is a customer of the next one towards the top) and edges on the
origin side are provider->customer.  Votes are accumulated over all paths
and edges with strong votes in both directions become siblings.

This is the classic alternative to the paper's seed-clique heuristic and
is included both as a cross-check and because much of the related work the
paper compares against ([16-18]) uses it.
"""

from __future__ import annotations

from collections import defaultdict

from repro.relationships.types import Relationship, RelationshipMap
from repro.topology.dataset import PathDataset
from repro.topology.graph import ASGraph


def infer_gao_relationships(
    dataset: PathDataset,
    graph: ASGraph | None = None,
    sibling_ratio: float = 1.0,
) -> RelationshipMap:
    """Infer relationships by top-provider voting.

    ``sibling_ratio`` controls sibling detection: an edge with transit
    votes in both directions is a sibling when the weaker direction has at
    least ``weaker >= stronger / (1 + sibling_ratio)`` votes... in Gao's
    notation L = 1 corresponds to requiring the minority direction to carry
    at least half the majority's votes.
    """
    if graph is None:
        graph = ASGraph.from_dataset(dataset)

    # provider_votes[(a, b)] counts evidence that b is a's provider.
    provider_votes: dict[tuple[int, int], int] = defaultdict(int)

    for path in sorted(dataset.unique_paths()):
        if len(path) < 2:
            continue
        top_index = max(range(len(path)), key=lambda i: (graph.degree(path[i]), -i))
        # Observer side of the top: climbing towards the top provider, so
        # path[i+1] is path[i]'s provider.
        for i in range(top_index):
            provider_votes[(path[i], path[i + 1])] += 1
        # Origin side: descending, so path[i] is path[i+1]'s provider.
        for i in range(top_index, len(path) - 1):
            provider_votes[(path[i + 1], path[i])] += 1

    relationships = RelationshipMap()
    seen: set[tuple[int, int]] = set()
    for (a, b), votes_ab in sorted(provider_votes.items()):
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        votes_ba = provider_votes.get((b, a), 0)
        low, high = sorted((votes_ab, votes_ba))
        if low > 0 and high <= low * (1 + sibling_ratio):
            relationships.set(a, b, Relationship.SIBLING)
        elif votes_ab >= votes_ba:
            relationships.set(a, b, Relationship.PROVIDER)
        else:
            relationships.set(a, b, Relationship.CUSTOMER)
    return relationships


def enforce_acyclic_hierarchy(relationships: RelationshipMap) -> int:
    """Break customer->provider cycles by demoting edges to PEER.

    Inference errors can produce a cyclic provider hierarchy (A provides
    for B provides for C provides for A), which violates the Gao-Rexford
    convergence conditions and can make the policy simulation diverge.
    Repeatedly find a cycle in the customer->provider digraph and demote
    its lexicographically-smallest edge to a peering.  Returns the number
    of demoted edges.
    """
    import networkx as nx

    demoted = 0
    while True:
        digraph = nx.DiGraph()
        for a, b, rel in relationships.edges():
            if rel is Relationship.PROVIDER:
                digraph.add_edge(a, b)  # a's provider is b: a -> b points up
            elif rel is Relationship.CUSTOMER:
                digraph.add_edge(b, a)
        try:
            cycle = nx.find_cycle(digraph)
        except nx.NetworkXNoCycle:
            return demoted
        edge = min((min(u, v), max(u, v)) for u, v in cycle)
        relationships.set(edge[0], edge[1], Relationship.PEER)
        demoted += 1


def annotate_peers_by_degree(
    relationships: RelationshipMap,
    graph: ASGraph,
    degree_ratio: float = 2.0,
) -> int:
    """Second Gao phase: demote weak provider edges between near-equal-degree
    ASes at the top of paths to PEER.

    An inferred provider edge (a's provider b) becomes a peering when the
    endpoint degrees are within ``degree_ratio`` of each other and neither
    endpoint is observed providing transit between two edges of the pair.
    Returns the number of edges re-classified.
    """
    changed = 0
    for a, b, rel in list(relationships.edges()):
        if rel not in (Relationship.CUSTOMER, Relationship.PROVIDER):
            continue
        deg_a, deg_b = graph.degree(a), graph.degree(b)
        if deg_a == 0 or deg_b == 0:
            continue
        ratio = max(deg_a, deg_b) / min(deg_a, deg_b)
        if ratio <= degree_ratio:
            relationships.set(a, b, Relationship.PEER)
            changed += 1
    return changed
