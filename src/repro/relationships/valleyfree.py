"""Valley-free inference and validation.

An AS-path (written observer-first, origin-last, as everywhere in this
library) is *valley-free* iff, read in that order, its edges form the
pattern ``c2p* peer? p2c*``: walking from the observer towards the origin
one first climbs (each AS is a customer of the next), crosses at most one
peering link at the top, then descends (each AS is a provider of the
next).  Equivalently, in route-announcement order the route climbs from
the origin over customer->provider links, crosses at most one peering, and
descends over provider->customer links [Gao 2001].

:func:`infer_valley_free_relationships` is the paper's heuristic
(Section 3.3): seed all level-1/level-1 edges as PEER, then iteratively
propagate the valley-free constraint along every observed path until a
fixpoint; contradictions mark an edge SIBLING (sibling edges carry any
route, so they never constrain).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.relationships.types import Relationship, RelationshipMap
from repro.topology.dataset import PathDataset


def is_valley_free(path: Sequence[int], relationships: RelationshipMap) -> bool:
    """Validate ``path`` (observer-first) against ``relationships``.

    SIBLING and UNKNOWN edges are treated as wildcards that keep the
    current phase, following the paper's footnote 2 (siblings and unknown
    edges are handled like peerings when realizing policies, but for
    validation they must not create false violations).
    """
    # Phases while scanning observer -> origin: 0 = climbing (c2p),
    # 1 = crossed the single peak peering, 2 = descending (p2c).
    phase = 0
    for left, right in zip(path, path[1:]):
        rel = relationships.get(left, right)
        if rel in (Relationship.SIBLING, Relationship.UNKNOWN):
            continue
        if rel is Relationship.PROVIDER:
            # right is left's provider: climbing edge; only valid at start.
            if phase != 0:
                return False
        elif rel is Relationship.PEER:
            if phase != 0:
                return False
            phase = 1
        elif rel is Relationship.CUSTOMER:
            # right is left's customer: descending edge.
            phase = 2
    return True


def infer_valley_free_relationships(
    dataset: PathDataset,
    level1: Iterable[int],
    max_rounds: int = 10,
) -> RelationshipMap:
    """Infer relationships from observed paths via valley-free propagation.

    Rules applied per path (observer-first order) until no edge changes:

    * every level-1/level-1 edge is PEER (the seed);
    * once an edge is PEER or CUSTOMER (descending), every edge *after* it
      (towards the origin) must be CUSTOMER;
    * symmetrically, every edge *before* a PROVIDER or PEER edge (towards
      the observer) must be PROVIDER (the observer side climbs);
    * assigning a conflicting direction to an already-classified edge turns
      it into SIBLING, which then stops constraining.
    """
    relationships = RelationshipMap()
    level1_set = set(level1)
    for a in level1_set:
        for b in level1_set:
            if a < b:
                relationships.set(a, b, Relationship.PEER)

    paths = sorted(dataset.unique_paths())

    def classify(a: int, b: int, rel: Relationship) -> bool:
        """Try to set edge (a, b); returns True if the map changed."""
        current = relationships.get(a, b)
        if current is rel or current is Relationship.SIBLING:
            return False
        if current is Relationship.UNKNOWN and not relationships.has(a, b):
            relationships.set(a, b, rel)
            return True
        if current is Relationship.PEER and rel in (
            Relationship.CUSTOMER,
            Relationship.PROVIDER,
        ):
            # Peering edges are kept; a transit claim across a known peering
            # would break the seed, so record the conflict as sibling only
            # when the peering was itself inferred (not a level-1 seed).
            if a in level1_set and b in level1_set:
                return False
            relationships.set(a, b, Relationship.SIBLING)
            return True
        if current in (Relationship.CUSTOMER, Relationship.PROVIDER) and rel in (
            Relationship.CUSTOMER,
            Relationship.PROVIDER,
            Relationship.PEER,
        ):
            relationships.set(a, b, Relationship.SIBLING)
            return True
        return False

    for _ in range(max_rounds):
        changed = False
        for path in paths:
            edges = [
                (path[i], path[i + 1])
                for i in range(len(path) - 1)
                if path[i] != path[i + 1]
            ]
            # Find the first descending marker (PEER or CUSTOMER edge).
            descend_from = None
            for index, (a, b) in enumerate(edges):
                rel = relationships.get(a, b)
                if rel in (Relationship.PEER, Relationship.CUSTOMER):
                    descend_from = index
                    break
            if descend_from is not None:
                for a, b in edges[descend_from + 1 :]:
                    changed |= classify(a, b, Relationship.CUSTOMER)
            # Find the last climbing marker (PEER or PROVIDER edge).
            climb_until = None
            for index in range(len(edges) - 1, -1, -1):
                a, b = edges[index]
                rel = relationships.get(a, b)
                if rel in (Relationship.PEER, Relationship.PROVIDER):
                    climb_until = index
                    break
            if climb_until is not None:
                for a, b in edges[:climb_until]:
                    changed |= classify(a, b, Relationship.PROVIDER)
        if not changed:
            break
    return relationships
