"""AS business-relationship inference and policy realization.

The paper's *model* is deliberately agnostic about relationships, but its
Table 2 baseline ("Customer/Peering Policies") needs them: this package
implements the valley-free inference heuristic sketched in Section 3.3
("We start by declaring all links between the level-1 ASes as peering and
then iteratively infer customer-provider relationships"), a classic
Gao-style degree-based inference for comparison, valley-free path
validation, and the translation of inferred relationships into local-pref
values and export filters (footnote 2 policies).
"""

from repro.relationships.types import Relationship, RelationshipMap
from repro.relationships.gao import infer_gao_relationships
from repro.relationships.valleyfree import (
    infer_valley_free_relationships,
    is_valley_free,
)
from repro.relationships.policies import apply_relationship_policies

__all__ = [
    "Relationship",
    "RelationshipMap",
    "infer_gao_relationships",
    "infer_valley_free_relationships",
    "is_valley_free",
    "apply_relationship_policies",
]
