"""Parse the C-BGP-style dialect written by :mod:`repro.cbgp.export`.

The parser rebuilds a :class:`~repro.bgp.Network`: nodes, IGP links, BGP
routers, per-direction peer filters and network originations.  Router ids
are recovered from the dotted-quad node addresses (high 16 bits = ASN).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, TextIO

from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, Match
from repro.bgp.router import Router, router_id_asn, router_id_index
from repro.errors import ParseError
from repro.net.ip import ip_from_string
from repro.net.prefix import Prefix

_RULE_HEAD = re.compile(
    r"^bgp router (\S+) peer (\S+) filter (in|out) add-rule$"
)


def parse_script(source: TextIO | Iterable[str]) -> Network:
    """Parse a script produced by :func:`repro.cbgp.export.export_network`."""
    network = Network(name="parsed")
    routers_by_ip: dict[int, Router] = {}
    pending_rule: _PendingRule | None = None

    for raw in source:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if pending_rule is not None:
            if line == "exit":
                pending_rule.install()
                pending_rule = None
            elif line.startswith("match "):
                pending_rule.match_text = line[len("match ") :].strip().strip('"')
            elif line.startswith("action "):
                pending_rule.action_text = line[len("action ") :].strip().strip('"')
            elif line.startswith("tag "):
                pending_rule.tag_text = line[len("tag ") :].strip().strip('"')
            elif line.startswith("iter "):
                pending_rule.iteration = int(line[len("iter ") :].strip())
            else:
                raise ParseError(f"unexpected line inside add-rule: {line!r}")
            continue

        if line.startswith("net add node "):
            ip = ip_from_string(line.split()[3])
            _ensure_router(network, routers_by_ip, ip)
        elif line.startswith("net add link "):
            _, _, _, ip_a, ip_b, cost = line.split()
            a = _ensure_router(network, routers_by_ip, ip_from_string(ip_a))
            b = _ensure_router(network, routers_by_ip, ip_from_string(ip_b))
            if a.asn != b.asn:
                raise ParseError(f"IGP link across ASes: {line!r}")
            network.ases[a.asn].igp.add_link(a.router_id, b.router_id, float(cost))
        elif line.startswith("bgp add router "):
            _, _, _, asn_text, ip_text = line.split()
            router = _ensure_router(network, routers_by_ip, ip_from_string(ip_text))
            if router.asn != int(asn_text):
                raise ParseError(
                    f"ASN mismatch for {ip_text}: declared {asn_text}, "
                    f"encoded {router.asn}"
                )
        elif " add peer " in line:
            head, _, tail = line.partition(" add peer ")
            owner_ip = head.split()[2]
            _, peer_ip = tail.split()
            dst = _ensure_router(network, routers_by_ip, ip_from_string(owner_ip))
            src = _ensure_router(network, routers_by_ip, ip_from_string(peer_ip))
            if network.get_session(src, dst) is None:
                network.add_session(src, dst)
        elif " add network " in line:
            head, _, prefix_text = line.partition(" add network ")
            owner_ip = head.split()[2]
            router = _ensure_router(network, routers_by_ip, ip_from_string(owner_ip))
            network.originate(router, Prefix(prefix_text.strip()))
        else:
            rule = _RULE_HEAD.match(line)
            if rule:
                pending_rule = _PendingRule(
                    network, routers_by_ip, rule.group(1), rule.group(2), rule.group(3)
                )
            else:
                raise ParseError(f"unrecognised line: {line!r}")
    if pending_rule is not None:
        raise ParseError("unterminated add-rule block")
    return network


def parse_file(path: str | Path) -> Network:
    """Parse a C-BGP-style config file from disk into a :class:`Network`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_script(handle)


def _ensure_router(
    network: Network, routers_by_ip: dict[int, Router], router_id: int
) -> Router:
    """Return (creating if needed) the router with the encoded id."""
    router = routers_by_ip.get(router_id)
    if router is not None:
        return router
    asn = router_id_asn(router_id)
    index = router_id_index(router_id)
    node = network.add_as(asn)
    while len(node.routers) < index:
        router = network.add_router(asn)
        routers_by_ip[router.router_id] = router
    return routers_by_ip[router_id]


class _PendingRule:
    """An add-rule block being accumulated."""

    def __init__(self, network, routers_by_ip, owner_ip, peer_ip, direction):
        self.network = network
        self.routers_by_ip = routers_by_ip
        self.owner_ip = owner_ip
        self.peer_ip = peer_ip
        self.direction = direction
        self.match_text = "any"
        self.action_text = "accept"
        self.tag_text = ""
        self.iteration: int | None = None

    def install(self) -> None:
        """Attach the parsed clause to the right session route-map."""
        owner = _ensure_router(
            self.network, self.routers_by_ip, ip_from_string(self.owner_ip)
        )
        peer = _ensure_router(
            self.network, self.routers_by_ip, ip_from_string(self.peer_ip)
        )
        if self.direction == "in":
            session = self.network.get_session(peer, owner)
            if session is None:
                session = self.network.add_session(peer, owner)
            route_map = session.ensure_import_map()
        else:
            session = self.network.get_session(owner, peer)
            if session is None:
                session = self.network.add_session(owner, peer)
            route_map = session.ensure_export_map()
        route_map.append(
            Clause(
                match=_parse_match(self.match_text),
                tag=self.tag_text or None,
                iteration=self.iteration,
                **_parse_action(self.action_text),
            )
        )


def _parse_match(text: str) -> Match:
    """Parse a match expression back into a :class:`Match`."""
    if text == "any":
        return Match()
    kwargs: dict = {}
    for term in text.split(" & "):
        term = term.strip()
        if term.startswith("prefix is "):
            kwargs["prefix"] = Prefix(term[len("prefix is ") :])
        elif term.startswith("path-length < "):
            kwargs["path_len_lt"] = int(term[len("path-length < ") :])
        elif term.startswith("path-length > "):
            kwargs["path_len_gt"] = int(term[len("path-length > ") :])
        elif term.startswith("neighbor-as is "):
            kwargs["from_asn"] = int(term[len("neighbor-as is ") :])
        elif term.startswith("neighbor is "):
            kwargs["from_router"] = ip_from_string(term[len("neighbor is ") :])
        elif term.startswith('path "'):
            inner = term[len('path "') : -1]
            kwargs["path_contains"] = int(inner.strip(". *"))
        elif term.startswith("path-regex <"):
            kwargs["path_regex"] = term[len("path-regex <") : -1]
        elif term.startswith("community is "):
            kwargs["community"] = int(term[len("community is ") :])
        else:
            raise ParseError(f"unrecognised match term: {term!r}")
    return Match(**kwargs)


def _parse_action(text: str) -> dict:
    """Parse an action expression into Clause keyword arguments."""
    if text == "deny":
        return {"action": Action.DENY}
    kwargs: dict = {"action": Action.PERMIT}
    if text == "accept":
        return kwargs
    communities: set[int] = set()
    for part in text.split(", "):
        part = part.strip()
        if part.startswith("local-pref "):
            kwargs["set_local_pref"] = int(part[len("local-pref ") :])
        elif part.startswith("metric "):
            kwargs["set_med"] = int(part[len("metric ") :])
        elif part.startswith("as-path prepend "):
            kwargs["prepend"] = int(part[len("as-path prepend ") :])
        elif part == "community strip":
            kwargs["strip_communities"] = True
        elif part.startswith("community add "):
            communities.add(int(part[len("community add ") :]))
        else:
            raise ParseError(f"unrecognised action: {part!r}")
    if communities:
        kwargs["add_communities"] = frozenset(communities)
    return kwargs
