"""Serialise a network or model to a C-BGP-style script.

The dialect is a practical subset of C-BGP's CLI:

* ``net add node <ip>`` / ``net add link <ip> <ip> <igp-cost>``
* ``bgp add router <asn> <ip>``
* ``bgp router <ip> add peer <asn> <ip>`` (+ ``filter in|out`` blocks)
* ``bgp router <ip> add network <prefix>``

Filter rules are emitted as ``add-rule`` blocks with ``match``/``action``
lines.  :mod:`repro.cbgp.parse` reads exactly this dialect back.
"""

from __future__ import annotations

from typing import TextIO

from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, RouteMap
from repro.bgp.router import format_router_id
from repro.bgp.session import Session


def export_network(network: Network, out: TextIO) -> int:
    """Write ``network`` as a C-BGP-style script; returns the line count."""
    writer = _Writer(out)
    writer.comment(f"c-bgp style export of {network.name}")
    writer.comment(
        "{ases} ASes, {routers} routers, {sessions} sessions".format(
            **network.stats()
        )
    )
    for asn in sorted(network.ases):
        node = network.ases[asn]
        writer.comment(f"--- AS{asn}")
        for router in node.routers:
            writer.line(f"net add node {format_router_id(router.router_id)}")
            writer.line(f"bgp add router {asn} {format_router_id(router.router_id)}")
        emitted: set[tuple[int, int]] = set()
        for router in node.routers:
            for target, cost in node.igp.neighbors(router.router_id).items():
                key = (min(router.router_id, target), max(router.router_id, target))
                if key in emitted:
                    continue
                emitted.add(key)
                writer.line(
                    "net add link {} {} {}".format(
                        format_router_id(key[0]), format_router_id(key[1]), int(cost)
                    )
                )
    for session in sorted(network.sessions.values(), key=lambda s: s.session_id):
        _export_session(writer, session)
    for prefix in network.prefixes():
        for router_id in sorted(network.originators(prefix)):
            writer.line(
                f"bgp router {format_router_id(router_id)} add network {prefix}"
            )
    return writer.count


def export_model(model, out: TextIO) -> int:
    """Write an :class:`~repro.core.model.ASRoutingModel`'s network."""
    return export_network(model.network, out)


class _Writer:
    """Line writer with a running count."""

    def __init__(self, out: TextIO):
        self.out = out
        self.count = 0

    def line(self, text: str) -> None:
        self.out.write(text + "\n")
        self.count += 1

    def comment(self, text: str) -> None:
        self.line(f"# {text}")


def _export_session(writer: _Writer, session: Session) -> None:
    """Emit one directed session and its policies.

    C-BGP configures peers bidirectionally; we emit per-direction ``peer``
    statements (receiver side declares the peer) so each direction's
    filters stay attached to the right endpoint.
    """
    dst_ip = format_router_id(session.dst.router_id)
    src_ip = format_router_id(session.src.router_id)
    writer.line(f"bgp router {dst_ip} add peer {session.src.asn} {src_ip}")
    if session.import_map is not None and len(session.import_map):
        _export_route_map(writer, session.import_map, dst_ip, src_ip, "in")
    if session.export_map is not None and len(session.export_map):
        _export_route_map(writer, session.export_map, src_ip, dst_ip, "out")


def _export_route_map(
    writer: _Writer, route_map: RouteMap, owner_ip: str, peer_ip: str, direction: str
) -> None:
    """Emit the clauses of one route-map as C-BGP filter rules."""
    for clause in route_map.clauses():
        prelude = f'bgp router {owner_ip} peer {peer_ip} filter {direction}'
        writer.line(f"{prelude} add-rule")
        writer.line(f'  match "{_match_expr(clause)}"')
        writer.line(f"  action {_action_expr(clause)}")
        if clause.tag:
            # First-class so it round-trips: the refiner identifies its own
            # clauses by tag when clearing/deduplicating policies, so a
            # reloaded (e.g. checkpointed) model must keep them.
            writer.line(f'  tag "{clause.tag}"')
        if clause.iteration is not None:
            # Provenance: which refinement iteration installed the clause.
            # Round-trips so `repro explain` works on saved/checkpointed
            # models, not only freshly-refined ones.
            writer.line(f"  iter {clause.iteration}")
        writer.line("  exit")


def _match_expr(clause: Clause) -> str:
    """The C-BGP match expression for a clause."""
    match = clause.match
    terms = []
    if match.prefix is not None:
        terms.append(f"prefix is {match.prefix}")
    if match.path_len_lt is not None:
        terms.append(f"path-length < {match.path_len_lt}")
    if match.path_len_gt is not None:
        terms.append(f"path-length > {match.path_len_gt}")
    if match.from_asn is not None:
        terms.append(f"neighbor-as is {match.from_asn}")
    if match.from_router is not None:
        terms.append(f"neighbor is {format_router_id(match.from_router)}")
    if match.path_contains is not None:
        terms.append(f'path ".* {match.path_contains} .*"')
    if match.path_regex is not None:
        terms.append(f"path-regex <{match.path_regex}>")
    if match.community is not None:
        terms.append(f"community is {match.community}")
    return " & ".join(terms) if terms else "any"


def _action_expr(clause: Clause) -> str:
    """The C-BGP action expression for a clause."""
    if clause.action is Action.DENY:
        return '"deny"'
    actions = []
    if clause.set_local_pref is not None:
        actions.append(f"local-pref {clause.set_local_pref}")
    if clause.set_med is not None:
        actions.append(f"metric {clause.set_med}")
    if clause.prepend:
        actions.append(f"as-path prepend {clause.prepend}")
    if clause.strip_communities:
        actions.append("community strip")
    for community in sorted(clause.add_communities):
        actions.append(f"community add {community}")
    if not actions:
        return '"accept"'
    return '"' + ", ".join(actions) + '"'
