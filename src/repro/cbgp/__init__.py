"""C-BGP-style configuration scripts.

The paper feeds its models to the C-BGP simulator [30].  This package
serialises a :class:`~repro.bgp.Network` into a C-BGP-flavoured script
(``net add node``, ``bgp add router``, ``bgp router ... add peer``,
filter rules) and parses the same dialect back, so models built here can
be inspected, diffed, version-controlled, and — modulo dialect details —
replayed against the real C-BGP.
"""

from repro.cbgp.export import export_network, export_model
from repro.cbgp.parse import parse_script

__all__ = ["export_network", "export_model", "parse_script"]
