"""Pruning single-homed stub ASes with path transfer (Section 3.1).

"Single-homed ASes that do not provide transit only add limited
information about the AS-topology as long as any path information gathered
from prefixes originated at such stub-ASes is transferred to a prefix
originated at its AS neighbor."

Pruning therefore (a) truncates paths that *end* in a single-homed stub so
the upstream neighbour becomes the origin, (b) drops observations whose
observation AS *is* a pruned stub, and (c) removes the pruned ASes from
the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.aspath import ASPath
from repro.topology.classify import ASClassification, Role
from repro.topology.dataset import ObservedRoute, PathDataset
from repro.topology.graph import ASGraph


@dataclass
class PruneResult:
    """Outcome of stub pruning."""

    dataset: PathDataset
    graph: ASGraph
    pruned_asns: set[int]
    transferred_routes: int
    dropped_routes: int


def prune_single_homed_stubs(
    dataset: PathDataset,
    graph: ASGraph,
    classification: ASClassification,
) -> PruneResult:
    """Remove single-homed stub ASes, transferring their path information."""
    doomed = classification.role_members(Role.STUB_SINGLE_HOMED)
    # Never prune an AS that hosts an observation point for a route we keep:
    # the observation AS must stay addressable in the model.  (Observation
    # points inside single-homed stubs see paths through their single
    # provider; those observations are dropped, matching the paper's node
    # counts.)
    transferred = 0
    dropped = 0
    result = PathDataset()

    for route in dataset:
        if route.observer_asn in doomed:
            dropped += 1
            continue
        path = route.path
        if path.origin_asn in doomed:
            if len(path) < 2:
                dropped += 1
                continue
            path = ASPath(path.asns[:-1])
            transferred += 1
        if any(asn in doomed for asn in path):
            # A supposedly single-homed stub in the *middle* of a path would
            # contradict the classification; drop defensively.
            dropped += 1
            continue
        result.add(
            ObservedRoute(route.point_id, route.observer_asn, route.prefix, path)
        )

    pruned_graph = graph.copy()
    for asn in doomed:
        pruned_graph.remove_as(asn)

    return PruneResult(
        dataset=result,
        graph=pruned_graph,
        pruned_asns=set(doomed),
        transferred_routes=transferred,
        dropped_routes=dropped,
    )


def restrict_to_largest_component(graph: ASGraph) -> tuple[ASGraph, set[int]]:
    """Keep only the largest connected component of ``graph``.

    Real ingested AS graphs (CAIDA as-rel files, noisy table dumps) are
    not connected: quarantine-surviving fragments and stale edges leave
    small islands that would crash clique inference and bias the
    classification.  Returns the restricted graph and the set of ASNs
    that were dropped; an empty graph passes through unchanged.
    """
    remaining = graph.ases()
    best: set[int] = set()
    while remaining and len(remaining) > len(best):
        seed = next(iter(remaining))
        component = {seed}
        frontier = [seed]
        while frontier:
            asn = frontier.pop()
            for neighbor in graph.neighbors(asn):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        remaining -= component
        if len(component) > len(best):
            best = component
    if not best:
        return graph.copy(), set()
    dropped = graph.ases() - best
    return graph.subgraph(best), dropped
