"""Level-1 (tier-1) provider inference.

Section 3.1: "We identify level-1 providers by starting with a small list
of providers that are known to be tier-1.  An AS is added to the list of
level-1 providers if the resulting AS-subgraph between level-1 providers
is complete, that is, we derive the AS-subgraph to be the largest clique
of ASes including our seed ASes."
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TopologyError
from repro.topology.graph import ASGraph


def infer_level1_clique(
    graph: ASGraph, seeds: Iterable[int]
) -> set[int]:
    """Grow the seed set into a maximal clique of the AS graph.

    Candidates adjacent to *every* current member are added greedily in
    order of decreasing degree (ties broken by ASN for determinism), which
    approximates "the largest clique including our seed ASes".  Seeds that
    are not in the graph are rejected; seeds that do not form a clique
    raise :class:`TopologyError` because the paper's definition requires
    the level-1 subgraph to be complete.
    """
    members = set(seeds)
    if not members:
        raise TopologyError("level-1 inference requires at least one seed AS")
    missing = [asn for asn in members if asn not in graph]
    if missing:
        raise TopologyError(f"seed ASes not in graph: {sorted(missing)}")
    if not graph.is_clique(members):
        raise TopologyError("seed ASes do not form a clique")

    candidates = _common_neighbors(graph, members)
    while candidates:
        best = max(candidates, key=lambda asn: (graph.degree(asn), -asn))
        members.add(best)
        candidates = {
            asn for asn in candidates if asn != best and graph.has_edge(asn, best)
        }
    return members


def _common_neighbors(graph: ASGraph, members: set[int]) -> set[int]:
    """ASes adjacent to every member (and not members themselves)."""
    iterator = iter(members)
    common = graph.neighbors(next(iterator))
    for asn in iterator:
        common &= graph.neighbors(asn)
        if not common:
            break
    return common - members
