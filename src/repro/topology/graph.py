"""The AS-level adjacency graph extracted from observed AS-paths.

"If two ASes are next to each other on a path we assume that they have an
agreement to exchange data and are therefore neighbors in the AS-topology
graph" (Section 3.1).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.errors import TopologyError
from repro.topology.dataset import PathDataset


class ASGraph:
    """An undirected AS adjacency graph."""

    def __init__(self):
        self._adjacency: dict[int, set[int]] = {}

    @classmethod
    def from_dataset(cls, dataset: PathDataset) -> "ASGraph":
        """Build the graph from every adjacency on every observed path."""
        graph = cls()
        for route in dataset:
            previous = None
            for asn in route.path:
                graph.add_as(asn)
                if previous is not None and previous != asn:
                    graph.add_edge(previous, asn)
                previous = asn
        return graph

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "ASGraph":
        """Build the graph from explicit undirected edges."""
        graph = cls()
        for a, b in edges:
            graph.add_edge(a, b)
        return graph

    def add_as(self, asn: int) -> None:
        """Add an isolated AS; idempotent."""
        self._adjacency.setdefault(asn, set())

    def add_edge(self, a: int, b: int) -> None:
        """Add an undirected edge; idempotent."""
        if a == b:
            raise TopologyError(f"self-loop at AS {a}")
        self._adjacency.setdefault(a, set()).add(b)
        self._adjacency.setdefault(b, set()).add(a)

    def remove_as(self, asn: int) -> None:
        """Remove an AS and all its edges."""
        neighbors = self._adjacency.pop(asn, set())
        for neighbor in neighbors:
            self._adjacency[neighbor].discard(asn)

    def remove_edge(self, a: int, b: int) -> None:
        """Remove an undirected edge if present."""
        self._adjacency.get(a, set()).discard(b)
        self._adjacency.get(b, set()).discard(a)

    def has_edge(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` are adjacent."""
        return b in self._adjacency.get(a, ())

    def neighbors(self, asn: int) -> set[int]:
        """The neighbour set of ``asn`` (empty if unknown)."""
        return set(self._adjacency.get(asn, ()))

    def degree(self, asn: int) -> int:
        """Number of neighbours of ``asn``."""
        return len(self._adjacency.get(asn, ()))

    def ases(self) -> set[int]:
        """All AS numbers in the graph."""
        return set(self._adjacency)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges as (min, max) pairs."""
        for a, neighbors in self._adjacency.items():
            for b in neighbors:
                if a < b:
                    yield (a, b)

    def num_ases(self) -> int:
        """Number of ASes."""
        return len(self._adjacency)

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def subgraph(self, asns: Iterable[int]) -> "ASGraph":
        """The induced subgraph on ``asns``."""
        wanted = set(asns)
        result = ASGraph()
        for asn in wanted:
            if asn in self._adjacency:
                result.add_as(asn)
        for a, b in self.edges():
            if a in wanted and b in wanted:
                result.add_edge(a, b)
        return result

    def is_clique(self, asns: Iterable[int]) -> bool:
        """True if every pair among ``asns`` is adjacent."""
        members = list(set(asns))
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if not self.has_edge(a, b):
                    return False
        return True

    def to_networkx(self) -> "nx.Graph":
        """Export to a networkx graph (for clique algorithms, plotting)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        graph.add_edges_from(self.edges())
        return graph

    def copy(self) -> "ASGraph":
        """An independent copy of this graph."""
        result = ASGraph()
        for asn, neighbors in self._adjacency.items():
            result._adjacency[asn] = set(neighbors)
        return result

    def __contains__(self, asn: object) -> bool:
        return asn in self._adjacency

    def __repr__(self) -> str:
        return f"ASGraph(ases={self.num_ases()}, edges={self.num_edges()})"
