"""Observed-route datasets.

An :class:`ObservedRoute` is one line of a RIB dump: an observation point
saw one AS-path for one prefix.  A :class:`PathDataset` is a cleaned,
indexed collection of such observations — the object the whole pipeline
(Section 3 analysis, model refinement, evaluation) operates on.

Conventions
-----------
* The stored AS-path *includes* the observation AS as its first element
  (that is what a monitor peering with a router inside the AS receives),
  and the origin AS as its last element.
* Cleaning (``PathDataset.cleaned``) removes AS-path prepending and drops
  paths with loops, as in Section 3.1.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import DatasetError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


@dataclass(frozen=True)
class ObservedRoute:
    """One observed (observation point, prefix, AS-path) triple."""

    point_id: str
    observer_asn: int
    prefix: Prefix
    path: ASPath

    def __post_init__(self):
        if len(self.path) == 0:
            raise DatasetError("observed route with empty AS-path")
        if self.path.head_asn != self.observer_asn:
            raise DatasetError(
                f"path {self.path} does not start at observer AS {self.observer_asn}"
            )

    @property
    def origin_asn(self) -> int:
        """The AS that originated the prefix."""
        return self.path.origin_asn


class PathDataset:
    """An indexed collection of observed routes."""

    def __init__(self, routes: Iterable[ObservedRoute] = ()):
        self._routes: list[ObservedRoute] = []
        self._points: dict[str, int] = {}
        for route in routes:
            self.add(route)

    def add(self, route: ObservedRoute) -> None:
        """Append one observation."""
        self._routes.append(route)
        self._points[route.point_id] = route.observer_asn

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[ObservedRoute]:
        return iter(self._routes)

    def routes(self) -> list[ObservedRoute]:
        """All observations in insertion order."""
        return list(self._routes)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def observation_points(self) -> dict[str, int]:
        """Map from observation-point id to its observer ASN."""
        return dict(self._points)

    def observer_asns(self) -> set[int]:
        """ASes hosting at least one observation point."""
        return set(self._points.values())

    def origin_asns(self) -> set[int]:
        """ASes originating at least one observed prefix."""
        return {route.origin_asn for route in self._routes}

    def prefixes(self) -> set[Prefix]:
        """All observed prefixes."""
        return {route.prefix for route in self._routes}

    def all_asns(self) -> set[int]:
        """Every AS appearing on any observed path."""
        asns: set[int] = set()
        for route in self._routes:
            asns.update(route.path.asns)
        return asns

    def unique_paths(self) -> set[tuple[int, ...]]:
        """The set of distinct AS-paths across all observations."""
        return {route.path.asns for route in self._routes}

    def paths_by_pair(self) -> dict[tuple[int, int], set[tuple[int, ...]]]:
        """Distinct AS-paths per (origin AS, observer AS) pair (Figure 2)."""
        pairs: dict[tuple[int, int], set[tuple[int, ...]]] = defaultdict(set)
        for route in self._routes:
            pairs[(route.origin_asn, route.observer_asn)].add(route.path.asns)
        return dict(pairs)

    def unique_paths_by_origin(self) -> dict[int, set[tuple[int, ...]]]:
        """Distinct observed AS-paths grouped by originating AS.

        This is the view the refinement heuristic consumes: the model
        originates one canonical prefix per AS (Section 4.1), so paths for
        all prefixes of an origin AS collapse into one constraint set.
        """
        grouped: dict[int, set[tuple[int, ...]]] = defaultdict(set)
        for route in self._routes:
            grouped[route.origin_asn].add(route.path.asns)
        return dict(grouped)

    def unique_paths_by_prefix(self) -> dict[Prefix, set[tuple[int, ...]]]:
        """Distinct observed AS-paths grouped by prefix."""
        grouped: dict[Prefix, set[tuple[int, ...]]] = defaultdict(set)
        for route in self._routes:
            grouped[route.prefix].add(route.path.asns)
        return dict(grouped)

    def adjacencies(self) -> set[tuple[int, int]]:
        """Undirected AS-level edges implied by the observed paths."""
        edges: set[tuple[int, int]] = set()
        for route in self._routes:
            for a, b in route.path.edges():
                edges.add((min(a, b), max(a, b)))
        return edges

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def cleaned(self) -> "PathDataset":
        """Remove prepending, drop looped paths and exact duplicates."""
        result = PathDataset()
        seen: set[tuple[str, Prefix, tuple[int, ...]]] = set()
        for route in self._routes:
            path = route.path.without_prepending()
            if path.has_loop():
                continue
            key = (route.point_id, route.prefix, path.asns)
            if key in seen:
                continue
            seen.add(key)
            result.add(
                ObservedRoute(route.point_id, route.observer_asn, route.prefix, path)
            )
        return result

    def filter_routes(
        self, predicate: Callable[[ObservedRoute], bool]
    ) -> "PathDataset":
        """Dataset restricted to routes satisfying ``predicate``."""
        return PathDataset(route for route in self._routes if predicate(route))

    def restrict_points(self, point_ids: Iterable[str]) -> "PathDataset":
        """Dataset restricted to the given observation points."""
        wanted = set(point_ids)
        return self.filter_routes(lambda route: route.point_id in wanted)

    def restrict_origins(self, origin_asns: Iterable[int]) -> "PathDataset":
        """Dataset restricted to prefixes originated by the given ASes."""
        wanted = set(origin_asns)
        return self.filter_routes(lambda route: route.origin_asn in wanted)

    def map_paths(
        self, transform: Callable[[ObservedRoute], ASPath | None]
    ) -> "PathDataset":
        """Apply ``transform`` to every route's path; None drops the route."""
        result = PathDataset()
        for route in self._routes:
            new_path = transform(route)
            if new_path is None or len(new_path) == 0:
                continue
            result.add(
                ObservedRoute(
                    route.point_id, route.observer_asn, route.prefix, new_path
                )
            )
        return result

    def summary(self) -> dict[str, int]:
        """Headline counts in the style of Section 3.1."""
        return {
            "routes": len(self._routes),
            "observation_points": len(self._points),
            "observer_ases": len(self.observer_asns()),
            "origin_ases": len(self.origin_asns()),
            "prefixes": len(self.prefixes()),
            "unique_paths": len(self.unique_paths()),
            "as_pairs": len(self.paths_by_pair()),
            "as_edges": len(self.adjacencies()),
            "ases": len(self.all_asns()),
        }

    def __repr__(self) -> str:
        counts = self.summary()
        return (
            f"PathDataset(routes={counts['routes']}, "
            f"points={counts['observation_points']}, "
            f"prefixes={counts['prefixes']}, unique_paths={counts['unique_paths']})"
        )
