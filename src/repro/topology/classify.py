"""AS classification (Section 3.1).

ASes are classified along two axes:

* **level**: ``level1`` (inferred tier-1 clique), ``level2`` (direct
  neighbours of a level-1 AS), ``other``;
* **role**: ``transit`` (appears at least once in the middle of an
  AS-path) vs. stub, with stubs split into single-homed (one observed
  upstream) and multi-homed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.topology.dataset import PathDataset
from repro.topology.graph import ASGraph


class Level(enum.Enum):
    """Position of an AS in the provider hierarchy."""

    LEVEL1 = "level1"
    LEVEL2 = "level2"
    OTHER = "other"


class Role(enum.Enum):
    """Whether an AS provides transit, and if not, how it is homed."""

    TRANSIT = "transit"
    STUB_SINGLE_HOMED = "stub-single-homed"
    STUB_MULTI_HOMED = "stub-multi-homed"


@dataclass
class ASClassification:
    """Per-AS level and role assignments plus headline counts."""

    levels: dict[int, Level] = field(default_factory=dict)
    roles: dict[int, Role] = field(default_factory=dict)

    def level_members(self, level: Level) -> set[int]:
        """ASes assigned to ``level``."""
        return {asn for asn, value in self.levels.items() if value is level}

    def role_members(self, role: Role) -> set[int]:
        """ASes assigned to ``role``."""
        return {asn for asn, value in self.roles.items() if value is role}

    def transit_asns(self) -> set[int]:
        """ASes providing transit for some prefix."""
        return self.role_members(Role.TRANSIT)

    def single_homed_stubs(self) -> set[int]:
        """Stub ASes with exactly one observed neighbour."""
        return self.role_members(Role.STUB_SINGLE_HOMED)

    def multi_homed_stubs(self) -> set[int]:
        """Stub ASes with more than one observed neighbour."""
        return self.role_members(Role.STUB_MULTI_HOMED)

    def summary(self) -> dict[str, int]:
        """Counts matching the enumeration in Section 3.1."""
        return {
            "ases": len(self.levels),
            "level1": len(self.level_members(Level.LEVEL1)),
            "level2": len(self.level_members(Level.LEVEL2)),
            "other": len(self.level_members(Level.OTHER)),
            "transit": len(self.transit_asns()),
            "stub_single_homed": len(self.single_homed_stubs()),
            "stub_multi_homed": len(self.multi_homed_stubs()),
        }


def classify_ases(
    dataset: PathDataset,
    graph: ASGraph,
    level1: Iterable[int],
) -> ASClassification:
    """Classify every AS of ``graph`` given the inferred level-1 set.

    Transit ASes are those appearing in the middle of at least one observed
    AS-path; the observation AS at the head of a path does not count as
    "middle" (it terminates the path), nor does the origin at the tail.
    """
    classification = ASClassification()
    level1_set = set(level1)

    transit: set[int] = set()
    for route in dataset:
        asns = route.path.asns
        transit.update(asns[1:-1])

    for asn in graph.ases():
        if asn in level1_set:
            classification.levels[asn] = Level.LEVEL1
        elif any(neighbor in level1_set for neighbor in graph.neighbors(asn)):
            classification.levels[asn] = Level.LEVEL2
        else:
            classification.levels[asn] = Level.OTHER

        if asn in transit:
            classification.roles[asn] = Role.TRANSIT
        elif graph.degree(asn) <= 1:
            classification.roles[asn] = Role.STUB_SINGLE_HOMED
        else:
            classification.roles[asn] = Role.STUB_MULTI_HOMED

    return classification
