"""Route-diversity statistics (Section 3.2, Figure 2, Table 1).

Three measurements:

* :func:`distinct_paths_histogram` — for every (origin AS, observation AS)
  pair, how many distinct AS-paths were observed (Figure 2);
* :func:`max_unique_paths_per_as` — for every AS, the maximum over
  prefixes of the number of distinct route suffixes the AS demonstrably
  received; the quantiles of this distribution are Table 1 and lower-bound
  the number of quasi-routers the AS needs;
* :func:`prefixes_per_path_histogram` — how many prefixes are propagated
  along each AS-path (the log-log-linear observation in Section 3.2).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.net.prefix import Prefix
from repro.topology.dataset import PathDataset


def distinct_paths_histogram(dataset: PathDataset) -> Counter:
    """Histogram: #distinct AS-paths per (origin, observer) pair -> #pairs."""
    counts = Counter()
    for paths in dataset.paths_by_pair().values():
        counts[len(paths)] += 1
    return counts


def max_unique_paths_per_as(dataset: PathDataset) -> dict[int, int]:
    """For each AS, the max over prefixes of distinct received route suffixes.

    For every observed path containing AS ``a`` at position ``i`` the
    suffix ``path[i:]`` is a route that some router of ``a`` selected and
    propagated.  The number of distinct suffixes per (AS, prefix) is a
    lower bound on the routers needed inside the AS (Section 3.2); we take
    the maximum over prefixes.  Origin-only appearances (suffix of length
    1) are counted too: the AS trivially needs one router.
    """
    suffixes: dict[tuple[int, Prefix], set[tuple[int, ...]]] = defaultdict(set)
    for route in dataset:
        asns = route.path.asns
        for position, asn in enumerate(asns):
            suffixes[(asn, route.prefix)].add(asns[position:])
    result: dict[int, int] = {}
    for (asn, _prefix), paths in suffixes.items():
        count = len(paths)
        if count > result.get(asn, 0):
            result[asn] = count
    return result


def prefixes_per_path_histogram(dataset: PathDataset) -> Counter:
    """Histogram: #prefixes propagated along an AS-path -> #paths."""
    prefixes_by_path: dict[tuple[int, ...], set[Prefix]] = defaultdict(set)
    for route in dataset:
        prefixes_by_path[route.path.asns].add(route.prefix)
    counts = Counter()
    for prefixes in prefixes_by_path.values():
        counts[len(prefixes)] += 1
    return counts


def quantiles(values: list[int], points: tuple[float, ...]) -> dict[float, int]:
    """Empirical quantiles of ``values`` at the given percentile points.

    Uses the "lower" interpolation so results are attained values, matching
    how Table 1 reports integer path counts.
    """
    if not values:
        return {point: 0 for point in points}
    ordered = sorted(values)
    result = {}
    for point in points:
        index = min(len(ordered) - 1, int(point / 100.0 * len(ordered)))
        result[point] = ordered[index]
    return result


TABLE1_PERCENTILES = (50.0, 75.0, 90.0, 95.0, 98.0, 99.0, 100.0)


@dataclass
class DiversityReport:
    """All Section 3.2 statistics for one dataset."""

    pair_histogram: Counter = field(default_factory=Counter)
    max_paths_per_as: dict[int, int] = field(default_factory=dict)
    path_popularity: Counter = field(default_factory=Counter)

    @property
    def fraction_pairs_multipath(self) -> float:
        """Fraction of (origin, observer) pairs with more than one path."""
        total = sum(self.pair_histogram.values())
        if total == 0:
            return 0.0
        multi = sum(
            count for paths, count in self.pair_histogram.items() if paths > 1
        )
        return multi / total

    @property
    def pairs_with_many_paths(self) -> int:
        """Number of pairs with more than 10 distinct paths."""
        return sum(
            count for paths, count in self.pair_histogram.items() if paths > 10
        )

    def table1(self) -> dict[float, int]:
        """Table 1: quantiles of the per-AS maximum route diversity."""
        return quantiles(list(self.max_paths_per_as.values()), TABLE1_PERCENTILES)

    @property
    def fraction_single_prefix_paths(self) -> float:
        """Fraction of AS-paths used by exactly one prefix (Section 3.2: <50%)."""
        total = sum(self.path_popularity.values())
        if total == 0:
            return 0.0
        return self.path_popularity.get(1, 0) / total


def route_diversity_report(dataset: PathDataset) -> DiversityReport:
    """Compute every Section 3.2 statistic for ``dataset``."""
    return DiversityReport(
        pair_histogram=distinct_paths_histogram(dataset),
        max_paths_per_as=max_unique_paths_per_as(dataset),
        path_popularity=prefixes_per_path_histogram(dataset),
    )
