"""AS-topology extraction and analysis from observed BGP AS-paths.

This package implements Section 3 of the paper: building the AS-level
graph from RIB dumps, inferring the level-1 (tier-1) clique, classifying
ASes (transit vs. stub, single- vs. multi-homed), pruning single-homed
stub ASes with path transfer, and quantifying route diversity (Figure 2,
Table 1).
"""

from repro.topology.dataset import ObservedRoute, PathDataset
from repro.topology.graph import ASGraph
from repro.topology.clique import infer_level1_clique
from repro.topology.classify import ASClassification, classify_ases
from repro.topology.prune import (
    prune_single_homed_stubs,
    restrict_to_largest_component,
)
from repro.topology.diversity import (
    DiversityReport,
    distinct_paths_histogram,
    max_unique_paths_per_as,
    prefixes_per_path_histogram,
    route_diversity_report,
)

__all__ = [
    "ObservedRoute",
    "PathDataset",
    "ASGraph",
    "infer_level1_clique",
    "ASClassification",
    "classify_ases",
    "prune_single_homed_stubs",
    "restrict_to_largest_component",
    "DiversityReport",
    "distinct_paths_histogram",
    "max_unique_paths_per_as",
    "prefixes_per_path_histogram",
    "route_diversity_report",
]
