"""Unit tests for repro.net.asn."""

import pytest

from repro.errors import ParseError
from repro.net.asn import AS_TRANS, format_asdot, is_private_asn, parse_asn


class TestParseAsn:
    def test_parses_asplain(self):
        assert parse_asn("3356") == 3356

    def test_parses_asdot(self):
        assert parse_asn("1.10") == 65536 + 10

    def test_parses_as_prefix(self):
        assert parse_asn("AS701") == 701
        assert parse_asn("as701") == 701

    def test_parses_four_byte(self):
        assert parse_asn("4200000000") == 4200000000

    @pytest.mark.parametrize("bad", ["", "abc", "1.2.3", "70000.1", "1.70000",
                                     "4294967296"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_asn(bad)


class TestFormatAsdot:
    def test_two_byte_stays_plain(self):
        assert format_asdot(3356) == "3356"

    def test_four_byte_uses_dot(self):
        assert format_asdot(65536 + 10) == "1.10"

    def test_round_trip(self):
        for asn in (1, 65535, 65536, 4200000000):
            assert parse_asn(format_asdot(asn)) == asn

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_asdot(-1)
        with pytest.raises(ValueError):
            format_asdot(1 << 32)


class TestPrivateRanges:
    def test_private_16bit_range(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(64511)

    def test_private_32bit_range(self):
        assert is_private_asn(4200000000)
        assert not is_private_asn(4199999999)

    def test_as_trans_is_not_private(self):
        assert not is_private_asn(AS_TRANS)
