"""Shared fixtures: small deterministic networks and a mini end-to-end pipeline."""

from __future__ import annotations

import pytest

from repro.bgp import Network, simulate
from repro.data import (
    SyntheticConfig,
    collect_dataset,
    select_observation_points,
    synthesize_internet,
)
from repro.net.prefix import Prefix
from repro.topology import (
    ASGraph,
    classify_ases,
    infer_level1_clique,
    prune_single_homed_stubs,
)


@pytest.fixture
def diamond():
    """AS1 observes a prefix from AS4 over two equal-length branches.

          AS2
         /    \\
      AS1      AS4 (originates 10.0.0.0/24)
         \\    /
          AS3
    """
    net = Network("diamond")
    routers = {asn: net.add_router(asn) for asn in (1, 2, 3, 4)}
    net.connect(routers[1], routers[2])
    net.connect(routers[1], routers[3])
    net.connect(routers[2], routers[4])
    net.connect(routers[3], routers[4])
    prefix = Prefix("10.0.0.0/24")
    net.originate(routers[4], prefix)
    return net, routers, prefix


@pytest.fixture
def line():
    """AS1 - AS2 - AS3 chain plus a direct AS1 - AS3 shortcut."""
    net = Network("line")
    routers = {asn: net.add_router(asn) for asn in (1, 2, 3)}
    net.connect(routers[1], routers[2])
    net.connect(routers[2], routers[3])
    net.connect(routers[1], routers[3])
    prefix = Prefix("10.0.0.0/24")
    net.originate(routers[3], prefix)
    return net, routers, prefix


@pytest.fixture
def multi_router_as():
    """AS10 with two iBGP-meshed border routers towards two origins' paths.

    AS20 and AS30 both provide a route to AS40's prefix; router ``a`` of
    AS10 peers with AS20, router ``b`` with AS30, IGP cost 5 between them.
    """
    net = Network("multi-router")
    a = net.add_router(10)
    b = net.add_router(10)
    net.ases[10].igp.add_link(a.router_id, b.router_id, 5)
    net.ibgp_full_mesh(10)
    o1 = net.add_router(20)
    o2 = net.add_router(30)
    src = net.add_router(40)
    net.connect(a, o1)
    net.connect(b, o2)
    net.connect(o1, src)
    net.connect(o2, src)
    prefix = Prefix("10.1.0.0/24")
    net.originate(src, prefix)
    return net, {"a": a, "b": b, "o1": o1, "o2": o2, "src": src}, prefix


MINI_CONFIG = SyntheticConfig(
    seed=5, n_level1=4, n_level2=6, n_other=10, n_stub=22
)


@pytest.fixture(scope="session")
def mini_internet():
    """A small simulated ground-truth Internet (session-scoped, read-only)."""
    internet = synthesize_internet(MINI_CONFIG)
    simulate(internet.network)
    return internet


@pytest.fixture(scope="session")
def mini_dataset(mini_internet):
    """Cleaned observation dataset collected from the mini Internet."""
    points = select_observation_points(
        mini_internet, 16, seed=2, multi_point_fraction=0.5
    )
    return collect_dataset(mini_internet.network, points).cleaned()


@pytest.fixture(scope="session")
def mini_pipeline(mini_internet, mini_dataset):
    """Graph, level-1 clique, classification, pruning for the mini Internet."""
    graph = ASGraph.from_dataset(mini_dataset)
    level1 = infer_level1_clique(graph, mini_internet.level1_asns[:2])
    classification = classify_ases(mini_dataset, graph, level1)
    pruned = prune_single_homed_stubs(mini_dataset, graph, classification)
    return {
        "graph": graph,
        "level1": level1,
        "classification": classification,
        "pruned": pruned,
    }
