"""Tests for the iterative refinement heuristic (Section 4.6)."""

import pytest

from repro.core.build import build_initial_model
from repro.core.metrics import MatchKind, classify_route_match
from repro.core.refine import (
    FILTER_TAG,
    RANK_TAG,
    RefinementConfig,
    Refiner,
)
from repro.errors import RefinementError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.topology.dataset import ObservedRoute, PathDataset

P = Prefix("10.0.0.0/24")


def dataset_from_paths(*paths):
    ds = PathDataset()
    for index, path in enumerate(paths):
        ds.add(ObservedRoute(f"p{index}", path[0], P, ASPath(path)))
    return ds


def refine(*paths, config=RefinementConfig(), extra_paths=()):
    """Build an initial model over paths+extra_paths, train on paths."""
    full = dataset_from_paths(*paths, *extra_paths)
    training = dataset_from_paths(*paths)
    model = build_initial_model(full)
    result = Refiner(model, training, config).run()
    return model, result


class TestTrivialCases:
    def test_already_matching_model_converges_immediately(self):
        model, result = refine((1, 2, 3))
        assert result.converged
        assert result.iteration_count == 1
        assert result.iterations[0].policies_installed == 0
        assert len(model.network.routers) == 3

    def test_origin_only_path(self):
        model, result = refine((3,))
        assert result.converged

    def test_unknown_origin_rejected(self):
        model = build_initial_model(dataset_from_paths((1, 2)))
        bad_training = dataset_from_paths((1, 2, 9))
        with pytest.raises(RefinementError):
            Refiner(model, bad_training)


class TestTieBreakCorrection:
    """Figure 5(a)/(b): the observed path loses only the final tie-break."""

    def test_ranking_fixes_wrong_tie_break(self):
        # diamond 1-{2,3}-4; natural winner at AS1 is via AS2 (lower id);
        # training observes the AS3 branch instead.
        model, result = refine((1, 3, 4), extra_paths=((1, 2, 4),))
        assert result.converged
        assert classify_route_match(model, 1, (1, 3, 4)) is MatchKind.RIB_OUT
        # one quasi-router suffices
        assert len(model.quasi_routers(1)) == 1

    def test_rank_clauses_tagged(self):
        model, result = refine((1, 3, 4), extra_paths=((1, 2, 4),))
        router = model.quasi_routers(1)[0]
        tags = {
            clause.tag
            for session in router.sessions_in
            if session.import_map is not None
            for clause in session.import_map.clauses()
        }
        assert RANK_TAG in tags


class TestFilterInstallation:
    """The observed path is longer than the shortest available one."""

    def test_filter_makes_longer_path_win(self):
        # AS1 sees (1,2,4) naturally; training wants the longer (1,3,2,4).
        model, result = refine((1, 3, 2, 4), extra_paths=((1, 2, 4),))
        assert result.converged
        assert classify_route_match(model, 1, (1, 3, 2, 4)) is MatchKind.RIB_OUT

    def test_filter_clauses_tagged_and_scoped(self):
        model, result = refine((1, 3, 2, 4), extra_paths=((1, 2, 4),))
        prefix = model.canonical_prefix(4)
        filters = [
            clause
            for session in model.network.sessions.values()
            if session.export_map is not None
            for clause in session.export_map.clauses()
            if clause.tag == FILTER_TAG
        ]
        assert filters
        assert all(clause.match.prefix == prefix for clause in filters)


class TestDuplication:
    """Figure 5(c): two observed paths at one AS need two quasi-routers."""

    def test_two_paths_two_quasi_routers(self):
        model, result = refine((1, 2, 4), (1, 3, 4))
        assert result.converged
        assert len(model.quasi_routers(1)) == 2
        assert classify_route_match(model, 1, (1, 2, 4)) is MatchKind.RIB_OUT
        assert classify_route_match(model, 1, (1, 3, 4)) is MatchKind.RIB_OUT

    def test_shared_suffix_shares_quasi_router(self):
        # paths (5,3,2,1) and (6,3,2,1) need only ONE quasi-router at AS3
        model, result = refine((5, 3, 2, 1), (6, 3, 2, 1))
        assert result.converged
        assert len(model.quasi_routers(3)) == 1

    def test_clone_inherits_neighbors(self):
        model, result = refine((1, 2, 4), (1, 3, 4))
        clone = model.quasi_routers(1)[1]
        neighbor_asns = {s.src.asn for s in clone.sessions_in}
        assert neighbor_asns == {2, 3}

    def test_three_way_diversity(self):
        model, result = refine((1, 2, 5), (1, 3, 5), (1, 4, 5))
        assert result.converged
        assert len(model.quasi_routers(1)) == 3
        for branch in (2, 3, 4):
            assert (
                classify_route_match(model, 1, (1, branch, 5)) is MatchKind.RIB_OUT
            )


class TestSameNeighborAmbiguity:
    """Two same-length paths arrive from the *same* neighbour AS."""

    def test_per_router_ranking_separates_them(self):
        # AS1 observes (1,2,3,5) and (1,2,4,5): both via neighbour AS2.
        model, result = refine((1, 2, 3, 5), (1, 2, 4, 5))
        assert result.converged
        assert classify_route_match(model, 1, (1, 2, 3, 5)) is MatchKind.RIB_OUT
        assert classify_route_match(model, 1, (1, 2, 4, 5)) is MatchKind.RIB_OUT
        # AS2 needs two quasi-routers to propagate both
        assert len(model.quasi_routers(2)) == 2


class TestMechanismAblation:
    def test_no_duplication_cannot_match_diverse_paths(self):
        config = RefinementConfig(allow_duplication=False)
        model, result = refine((1, 2, 4), (1, 3, 4), config=config)
        assert not result.converged
        assert len(model.quasi_routers(1)) == 1

    def test_no_policies_cannot_fix_tie_break(self):
        config = RefinementConfig(allow_policies=False)
        model, result = refine((1, 3, 4), extra_paths=((1, 2, 4),), config=config)
        assert not result.converged

    def test_run_respects_max_iterations(self):
        config = RefinementConfig(max_iterations=1)
        model, result = refine((1, 3, 2, 4), extra_paths=((1, 2, 4),), config=config)
        assert result.iteration_count == 1


class TestEndToEnd:
    def test_training_reaches_exact_match_on_mini_internet(
        self, mini_pipeline
    ):
        from repro.core.split import split_by_observation_points

        pruned = mini_pipeline["pruned"]
        training, _ = split_by_observation_points(pruned.dataset, 0.5, seed=3)
        model = build_initial_model(pruned.dataset, pruned.graph.copy())
        result = Refiner(model, training).run()
        assert result.converged, "training must match exactly (paper Section 5)"
        assert result.final_match_rate == 1.0

    def test_iterations_bounded_by_path_length_multiple(self, mini_pipeline):
        from repro.core.split import split_by_observation_points

        pruned = mini_pipeline["pruned"]
        training, _ = split_by_observation_points(pruned.dataset, 0.5, seed=3)
        model = build_initial_model(pruned.dataset, pruned.graph.copy())
        result = Refiner(model, training).run()
        max_len = max(len(r.path) for r in training)
        assert result.iteration_count <= 4 * max_len

    def test_refined_model_satisfies_diversity_lower_bound(self, mini_pipeline):
        from repro.core.split import split_by_observation_points

        pruned = mini_pipeline["pruned"]
        training, _ = split_by_observation_points(pruned.dataset, 0.5, seed=3)
        model = build_initial_model(pruned.dataset, pruned.graph.copy())
        result = Refiner(model, training).run()
        assert result.converged
        counts = model.quasi_router_counts()
        # Only ASes that must *propagate* k distinct suffixes need k routers;
        # check the bound for ASes appearing mid-path in training.
        for route in training:
            asns = route.path.asns
            for position in range(len(asns)):
                assert counts.get(asns[position], 1) >= 1


class TestFilterDeletion:
    """Figure 7: a filter installed for one path blocks a later, shorter
    suffix from propagating; the refiner must delete it and recover."""

    PATHS = ((2, 4, 8, 10, 9), (5, 2, 3, 7, 9))
    EXTRA = ((5, 2, 3, 6, 9),)
    # Topology (origin 9): 2-4-8-10-9, 2-3, 3-{6,7}, {6,7}-9, 5-2.
    # Iteration 1 fixes two spots: at AS2 the observed (4,8,10,9) is longer
    # than the available (3,6,9)/(3,7,9), installing deny[len<4] filters on
    # AS2's inbound sessions; and at AS3 the observed (7,9) loses the
    # tie-break against (6,9), so the second path's walk stops there.
    # By iteration 2 the suffix (3,7,9) is selected at AS3 but can no
    # longer *reach* AS2 — the len<4 filter blocks it.  That is Figure 7:
    # the filter set for the first path must be deleted for the second
    # path to propagate (a quasi-router duplication then serves both).

    def test_converges_with_filter_deletion(self):
        model, result = refine(*self.PATHS, extra_paths=self.EXTRA)
        assert result.converged
        deleted = sum(it.filters_deleted for it in result.iterations)
        assert deleted >= 1
        assert (
            classify_route_match(model, 2, (2, 4, 8, 10, 9)) is MatchKind.RIB_OUT
        )
        assert (
            classify_route_match(model, 5, (5, 2, 3, 7, 9)) is MatchKind.RIB_OUT
        )

    def test_without_deletion_cannot_converge(self):
        config = RefinementConfig(filter_deletion=False)
        model, result = refine(*self.PATHS, extra_paths=self.EXTRA, config=config)
        assert not result.converged
