"""Tests for the static safety pass: dispute-digraph wheel detection."""

import io

import pytest

from repro.analysis import analyze_network, analyze_safety, collect_preference_edges
from repro.analysis.safety import (
    RULE_DISPUTE_WHEEL,
    RULE_MED_CYCLE,
    RULE_MUTUAL_PREFERENCE,
    strongly_connected_components,
    unsafe_prefixes,
)
from repro.bgp.engine import simulate, simulate_prefix
from repro.bgp.network import Network
from repro.bgp.policy import Action, Clause, Match
from repro.cbgp.export import export_network
from repro.cbgp.parse import parse_script
from repro.core.build import build_initial_model
from repro.core.refine import Refiner, RefinementConfig
from repro.data.synthesis import SyntheticConfig, synthesize_internet
from repro.errors import ConvergenceError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix, prefix_for_asn
from repro.resilience.faults import FaultConfig, apply_faults, inject_dispute_wheel
from repro.resilience.health import EXIT_DIVERGED, RunHealth
from repro.resilience.retry import ResilienceStats, RetryPolicy
from repro.topology.dataset import ObservedRoute, PathDataset


def gadget_network(extra_spokes: int = 0):
    """Hub originating a prefix, three wheel spokes, optional bystanders."""
    net = Network("gadget")
    spokes = {asn: net.add_router(asn) for asn in (1, 2, 3)}
    hub = net.add_router(4)
    prefix = Prefix("10.0.0.0/24")
    net.originate(hub, prefix)
    for router in spokes.values():
        net.connect(router, hub)
    for a, b in ((1, 2), (2, 3), (3, 1)):
        net.connect(spokes[a], spokes[b])
    for index in range(extra_spokes):
        bystander = net.add_router(100 + index)
        net.connect(bystander, hub)
    return net, prefix


class TestTarjan:
    def test_acyclic_graph_has_singleton_components(self):
        graph = {1: {2}, 2: {3}, 3: set()}
        components = strongly_connected_components(graph)
        assert sorted(map(sorted, components)) == [[1], [2], [3]]

    def test_cycle_is_one_component(self):
        graph = {1: {2}, 2: {3}, 3: {1}, 4: {1}}
        components = {tuple(sorted(c)) for c in strongly_connected_components(graph)}
        assert (1, 2, 3) in components
        assert (4,) in components

    def test_two_disjoint_cycles(self):
        graph = {1: {2}, 2: {1}, 3: {4}, 4: {3}}
        components = {tuple(sorted(c)) for c in strongly_connected_components(graph)}
        assert components == {(1, 2), (3, 4)}

    def test_edges_to_unknown_nodes_ignored(self):
        graph = {1: {2, 99}, 2: {1}}
        components = {tuple(sorted(c)) for c in strongly_connected_components(graph)}
        assert components == {(1, 2)}

    def test_deep_chain_does_not_recurse(self):
        n = 5000
        graph = {i: {i + 1} for i in range(n)}
        graph[n] = {0}
        components = strongly_connected_components(graph)
        assert max(len(c) for c in components) == n + 1


class TestWheelDetection:
    def test_clean_gadget_has_no_findings(self):
        net, _ = gadget_network()
        assert analyze_safety(net) == []
        assert unsafe_prefixes(net) == []

    def test_injected_wheel_is_flagged_as_error(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        findings = analyze_safety(net)
        wheels = [f for f in findings if f.rule == RULE_DISPUTE_WHEEL]
        assert len(wheels) == 1
        assert wheels[0].prefix == prefix
        assert set(wheels[0].asns) == {1, 2, 3}
        assert wheels[0].clauses  # names the participating clauses
        assert unsafe_prefixes(net) == [prefix]

    def test_static_verdict_matches_simulation_divergence(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        assert unsafe_prefixes(net) == [prefix]
        with pytest.raises(ConvergenceError):
            simulate_prefix(net, prefix, max_messages=5000)

    def test_wheel_survives_config_round_trip(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        buffer = io.StringIO()
        export_network(net, buffer)
        reparsed = parse_script(io.StringIO(buffer.getvalue()))
        assert unsafe_prefixes(reparsed) == [prefix]

    def test_preference_edges_describe_the_wheel(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        edges = [e for e in collect_preference_edges(net) if e.kind == "local-pref"]
        assert {(e.asn, e.neighbor_asn) for e in edges} == {(1, 2), (2, 3), (3, 1)}
        assert all(e.prefix == prefix for e in edges)

    def test_shadowed_wheel_clause_creates_no_edge(self):
        net, prefix = gadget_network()
        inject_dispute_wheel(net, prefix, (1, 2, 3))
        # A deny-everything clause prepended in front of each wheel clause
        # makes the local-pref raise unreachable: the digraph must be empty.
        for session in net.ebgp_sessions():
            if session.import_map is not None and len(session.import_map):
                session.import_map.prepend(Clause(Match(), Action.DENY))
        assert analyze_safety(net) == []

    def test_disagree_gadget_is_warning_not_error(self):
        net = Network("disagree")
        a = net.add_router(1)
        b = net.add_router(2)
        hub = net.add_router(3)
        prefix = Prefix("10.0.0.0/24")
        net.originate(hub, prefix)
        net.connect(a, hub)
        net.connect(b, hub)
        net.connect(a, b)
        for src, dst in ((b, a), (a, b)):
            session = net.get_session(src, dst)
            session.ensure_import_map().append(
                Clause(Match(prefix=prefix), set_local_pref=200)
            )
        findings = analyze_safety(net)
        assert [f.rule for f in findings] == [RULE_MUTUAL_PREFERENCE]
        assert findings[0].severity.name == "WARNING"
        assert unsafe_prefixes(net) == []

    def test_med_preference_cycle_is_warning(self):
        net = Network("medcycle")
        routers = {asn: net.add_router(asn) for asn in (1, 2, 3)}
        hub = net.add_router(4)
        prefix = Prefix("10.0.0.0/24")
        net.originate(hub, prefix)
        for router in routers.values():
            net.connect(router, hub)
        for a, b in ((1, 2), (2, 3), (3, 1)):
            net.connect(routers[a], routers[b])
        # Each spoke MED-ranks the next spoke's session strictly best.
        for asn, preferred in ((1, 2), (2, 3), (3, 1)):
            owner = routers[asn]
            for session in owner.sessions_in:
                med = 0 if session.src.asn == preferred else 50
                session.ensure_import_map().append(
                    Clause(Match(prefix=prefix), set_med=med)
                )
        findings = analyze_safety(net)
        assert [f.rule for f in findings] == [RULE_MED_CYCLE]
        assert findings[0].severity.name == "WARNING"
        assert unsafe_prefixes(net) == []

    def test_global_local_pref_cycle_scopes_to_every_prefix(self):
        net, prefix = gadget_network()
        other = Prefix("11.0.0.0/24")
        net.originate(net.routers[min(net.routers)], other)
        for asn, preferred in ((1, 2), (2, 3), (3, 1)):
            for router in net.as_routers(asn):
                for session in router.sessions_in:
                    if session.src.asn == preferred:
                        session.ensure_import_map().append(
                            Clause(Match(), set_local_pref=300)
                        )
        assert set(unsafe_prefixes(net)) == set(net.prefixes())


class TestNoFalsePositives:
    def test_gao_rexford_synthetic_internet_is_clean(self):
        internet = synthesize_internet(SyntheticConfig(seed=11).scaled(0.12))
        assert analyze_safety(internet.network) == []

    def test_refined_training_model_is_clean(self):
        routes = []
        for observer in (8, 9):
            routes.append(
                ObservedRoute("p%d" % observer, observer,
                              prefix_for_asn(4), ASPath((observer, 1, 4)))
            )
            routes.append(
                ObservedRoute("p%d" % observer, observer,
                              prefix_for_asn(4), ASPath((observer, 2, 4)))
            )
        routes.append(
            ObservedRoute("p8", 8, prefix_for_asn(4), ASPath((8, 1, 2, 4)))
        )
        dataset = PathDataset(routes)
        model = build_initial_model(dataset)
        result = Refiner(model, dataset).run()
        assert result.converged
        # the refiner installed MED rankings and deny filters...
        assert result.model.policy_clause_count() > 0
        # ...and none of them register as a safety problem
        assert analyze_safety(result.model.network) == []
        report = analyze_network(result.model.network, dataset=dataset)
        assert report.errors == []


class TestInjectedWheelSweep:
    def test_every_injected_wheel_found_and_divergence_is_subset(self):
        internet = synthesize_internet(SyntheticConfig(seed=7).scaled(0.15))
        report = apply_faults(
            internet.network, FaultConfig(seed=7, dispute_wheels=3)
        )
        assert report.wheels, "fault injection found no usable triangles"
        injected = {Prefix(text) for text, _ in report.wheels}
        flagged = set(unsafe_prefixes(internet.network))
        # 100% of injected wheels detected statically, nothing else flagged
        assert flagged == injected
        # cross-validate: whatever actually diverges is within the flagged set
        stats = simulate(internet.network, on_divergence="quarantine")
        assert set(stats.diverged) <= flagged


class TestLintGateVsQuarantine:
    def _training(self):
        routes = []
        for path in ((9, 1, 4), (9, 2, 4), (9, 3, 4),
                     (9, 1, 2, 4), (9, 2, 3, 4), (9, 3, 1, 4)):
            routes.append(
                ObservedRoute("p9", 9, prefix_for_asn(4), ASPath(path))
            )
        return PathDataset(routes)

    def _refined(self, lint_gate: bool):
        dataset = self._training()
        model = build_initial_model(dataset)
        wheel_prefix = model.canonical_prefix(4)
        inject_dispute_wheel(model.network, wheel_prefix, (1, 2, 3))
        refiner = Refiner(
            model,
            dataset,
            RefinementConfig(
                retry=RetryPolicy(max_attempts=3, initial_budget=2000,
                                  budget_cap=8000),
                lint_gate=lint_gate,
            ),
        )
        refiner.run()
        return wheel_prefix, ResilienceStats(outcomes=refiner.outcomes)

    def test_gate_spends_strictly_fewer_attempts(self):
        wheel, plain = self._refined(lint_gate=False)
        _, gated = self._refined(lint_gate=True)
        assert wheel in plain.diverged
        assert plain.unsafe == []
        assert gated.unsafe == [wheel]
        assert gated.diverged == []
        # the gated outcome spent nothing on the wheel prefix
        gated_outcome = next(o for o in gated.outcomes if o.prefix == wheel)
        assert gated_outcome.attempts == 0
        assert gated_outcome.messages == 0
        assert gated.attempts < plain.attempts

    def test_run_health_shows_the_saving(self):
        _, plain = self._refined(lint_gate=False)
        wheel, gated = self._refined(lint_gate=True)
        health_plain, health_gated = RunHealth(), RunHealth()
        health_plain.record_simulation(plain)
        health_gated.record_simulation(gated)
        plain_sim = health_plain.to_dict()["simulation"]
        gated_sim = health_gated.to_dict()["simulation"]
        assert gated_sim["attempts"] < plain_sim["attempts"]
        assert gated_sim["unsafe"] == [str(wheel)]
        assert plain_sim["unsafe"] == []
        # both degrade the model, so both map to the diverged exit code
        assert health_plain.exit_code == EXIT_DIVERGED
        assert health_gated.exit_code == EXIT_DIVERGED
