"""Property test: the supervised pool is observationally identical to the
sequential path on healthy inputs — same RIBs, same outcome classification,
same message counts — for arbitrary synthetic topologies."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.build import build_initial_model
from repro.core.model import MODEL_DECISION_CONFIG
from repro.core.refine import RefinementConfig, Refiner
from repro.data.observation import collect_dataset, select_observation_points
from repro.data.synthesis import SyntheticConfig, synthesize_internet
from repro.parallel import ParallelConfig
from repro.resilience.retry import RetryPolicy, simulate_network_with_retry
from repro.topology.graph import ASGraph

pytestmark = pytest.mark.timeout(300)

TINY = dict(n_level1=3, n_level2=4, n_other=6, n_stub=10)


def loc_rib_fingerprint(network):
    """Every router's best route per prefix, as comparable attributes."""
    table = {}
    for router_id in sorted(network.routers):
        router = network.routers[router_id]
        for prefix in sorted(router.loc_rib):
            route = router.loc_rib[prefix]
            table[(router_id, str(prefix))] = (
                route.as_path,
                route.next_hop,
                route.local_pref,
                route.med,
            )
    return table


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parallel_simulation_equals_sequential(seed):
    config = SyntheticConfig(seed=seed, **TINY)
    sequential = synthesize_internet(config).network
    parallel = synthesize_internet(config).network

    policy = RetryPolicy()
    seq_stats = simulate_network_with_retry(
        sequential, config=MODEL_DECISION_CONFIG, policy=policy
    )
    par_stats = simulate_network_with_retry(
        parallel, config=MODEL_DECISION_CONFIG, policy=policy,
        parallel=ParallelConfig(workers=4),
    )

    assert loc_rib_fingerprint(parallel) == loc_rib_fingerprint(sequential)
    seq_sorted = sorted(seq_stats.outcomes, key=lambda o: o.prefix)
    assert [
        (str(o.prefix), o.status, o.attempts) for o in seq_sorted
    ] == [(str(o.prefix), o.status, o.attempts) for o in par_stats.outcomes]
    assert par_stats.engine.messages == seq_stats.engine.messages
    assert par_stats.engine.per_prefix_messages == (
        seq_stats.engine.per_prefix_messages
    )


def test_parallel_refinement_equals_sequential():
    internet = synthesize_internet(SyntheticConfig(seed=11, **TINY))
    points = select_observation_points(internet, 6, seed=11)
    dataset = collect_dataset(internet.network, points).cleaned()

    def refine(parallel):
        graph = ASGraph.from_dataset(dataset)
        model = build_initial_model(dataset, graph)
        refiner = Refiner(
            model,
            dataset,
            RefinementConfig(
                max_iterations=6, retry=RetryPolicy(), parallel=parallel
            ),
        )
        return refiner, refiner.run()

    seq_refiner, seq_result = refine(None)
    par_refiner, par_result = refine(ParallelConfig(workers=2))

    assert par_result.converged == seq_result.converged
    assert par_result.iteration_count == seq_result.iteration_count
    assert par_result.final_match_rate == seq_result.final_match_rate
    assert loc_rib_fingerprint(par_result.model.network) == loc_rib_fingerprint(
        seq_result.model.network
    )
    assert sorted(
        (str(o.prefix), o.status) for o in seq_refiner.outcomes
    ) == sorted((str(o.prefix), o.status) for o in par_refiner.outcomes)
